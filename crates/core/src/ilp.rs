//! ILP-based LRA placement (§5.2, Fig. 5).
//!
//! The formulation follows the paper with the corrections documented in
//! DESIGN.md §5: the violation component enters the objective negatively,
//! the big-M activation uses a proper subject-presence indicator per
//! (constraint, node set), and Eq. 8's normalization guards `max(c, 1)`.
//!
//! Two engineering devices keep the CPLEX-free solve tractable without
//! changing the optimum's structure:
//!
//! 1. **Node equivalence classes** — nodes with identical free resources,
//!    tag multisets, and group memberships are interchangeable, so only
//!    `min(|class|, T_total)` representatives of each class enter the
//!    model (a placement on a representative expands to any class member).
//! 2. **Constraint relevance filtering** — constraints whose subject and
//!    target tags cannot match any newly requested container are dropped:
//!    their violation status is a constant the placement cannot change.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use medea_cluster::{ClusterState, NodeId, Tag};
use medea_constraints::{PlacementConstraint, TagConstraint};
use medea_obs::MetricsRegistry;
use medea_solver::{Basis, Cmp, Milp, Problem, VarId, VarKind};

use crate::obs_bridge::SolverMetricsBridge;

use crate::objective::ObjectiveWeights;
use crate::request::{LraPlacement, LraRequest, PlacementOutcome};

/// Configuration of the ILP scheduler.
#[derive(Debug, Clone)]
pub struct IlpConfig {
    /// Objective weights (Eq. 1).
    pub weights: ObjectiveWeights,
    /// Wall-clock budget per solve; the best incumbent is used on timeout.
    pub time_limit: Duration,
    /// Branch-and-bound node limit per solve.
    pub node_limit: usize,
    /// Maximum candidate nodes in the model (equivalence-class capped).
    pub max_candidates: usize,
    /// Relative optimality gap at which the solve may stop early.
    pub gap: f64,
    /// Ablation toggle: add symmetry-breaking rows for identical
    /// containers (on by default; see DESIGN.md §5).
    pub symmetry_breaking: bool,
    /// Ablation toggle: seed branch and bound with the greedy heuristic's
    /// placement (on by default; makes the solve anytime).
    pub mip_start: bool,
    /// Optional metrics registry: when set, each solve reports solver
    /// events (`solver.*` counters via [`SolverMetricsBridge`]), its
    /// wall-clock time (`core.ilp_solve_us`), and heuristic fallbacks
    /// (`core.heuristic_fallback_total`).
    pub metrics: Option<Arc<MetricsRegistry>>,
    /// Cross-round warm-start cache: the optimal root basis of each solve
    /// is remembered keyed by the problem's constraint skeleton, and the
    /// next solve with the same skeleton starts the root LP from it
    /// instead of a cold two-phase start. A scheduler that places
    /// similarly shaped batches round after round (the common steady
    /// state) pays the full simplex cost only on the first round. Set to
    /// `None` to disable. Cloning the config shares the cache.
    pub warm_cache: Option<Arc<IlpBasisCache>>,
}

/// Single-slot cache mapping a constraint-skeleton hash to the basis that
/// solved it last (see [`IlpConfig::warm_cache`]).
///
/// A basis snapshot is purely structural (which columns are basic, where
/// the nonbasics rest), so replaying it against a problem with the same
/// skeleton but different coefficients is safe: the solver refactorizes
/// from the new numbers and dual-simplex-repairs any resulting
/// infeasibility, falling back to a cold start if the snapshot turns out
/// useless.
#[derive(Default)]
pub struct IlpBasisCache {
    slot: Mutex<Option<(u64, Basis)>>,
}

impl IlpBasisCache {
    /// Takes the stored basis if it was produced under skeleton `key`.
    /// A mismatched entry is left in place (an alternating pair of
    /// schedulers sharing one cache should not evict each other).
    fn take_if(&self, key: u64) -> Option<Basis> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        match slot.take() {
            Some((k, basis)) if k == key => Some(basis),
            other => {
                *slot = other;
                None
            }
        }
    }

    fn store(&self, key: u64, basis: Basis) {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        *slot = Some((key, basis));
    }
}

impl fmt::Debug for IlpBasisCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let occupied = self
            .slot
            .lock()
            .map(|s| s.is_some())
            .unwrap_or_else(|e| e.into_inner().is_some());
        f.debug_struct("IlpBasisCache")
            .field("occupied", &occupied)
            .finish()
    }
}

impl Default for IlpConfig {
    fn default() -> Self {
        IlpConfig {
            weights: ObjectiveWeights::default(),
            time_limit: Duration::from_secs(2),
            node_limit: 2_000,
            max_candidates: 32,
            gap: 0.02,
            symmetry_breaking: true,
            mip_start: true,
            metrics: None,
            warm_cache: Some(Arc::new(IlpBasisCache::default())),
        }
    }
}

/// Outcome quality of one ILP batch solve, reported alongside the
/// placements so callers (the scheduler's circuit breaker) can react to
/// sustained solver degradation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IlpSolveStatus {
    /// The MILP produced a usable incumbent within its limits.
    Solved,
    /// The solve fell back to the heuristic placement: a validation
    /// error, or the deadline/node limit was hit before any incumbent.
    Degraded,
}

/// Internal description of one new container in the model.
struct NewContainer {
    /// Index of the owning request in `requests`.
    req_idx: usize,
    /// Index of the container within its request.
    cont_idx: usize,
    /// Effective tags (request tags + automatic `appid:`).
    tags: Vec<medea_cluster::Tag>,
    /// Demand.
    resources: medea_cluster::Resources,
}

/// Places a batch of LRAs by solving the Fig. 5 ILP.
///
/// `deployed_constraints` are the active constraints of already-deployed
/// LRAs and the cluster operator (from the constraint manager); the new
/// requests' own constraints are taken from the requests themselves.
pub fn place_with_ilp(
    state: &ClusterState,
    requests: &[LraRequest],
    deployed_constraints: &[PlacementConstraint],
    cfg: &IlpConfig,
) -> Vec<PlacementOutcome> {
    place_with_ilp_status(state, requests, deployed_constraints, cfg).0
}

/// Like [`place_with_ilp`], additionally reporting whether the solve
/// degraded to the heuristic (for the scheduler's circuit breaker).
pub fn place_with_ilp_status(
    state: &ClusterState,
    requests: &[LraRequest],
    deployed_constraints: &[PlacementConstraint],
    cfg: &IlpConfig,
) -> (Vec<PlacementOutcome>, IlpSolveStatus) {
    place_with_ilp_status_on(state, requests, deployed_constraints, cfg, None)
}

/// Like [`place_with_ilp_status`], but restricted to an allowed node list
/// (a shard's nodes); `None` means all nodes. The restriction is applied
/// where candidates are *selected* — the heuristic MIP start and all
/// three candidate-selection priorities — so the whole model, not just a
/// post-filter, lives inside the shard. Constraint evaluation still sees
/// the full state, keeping `γ` counts over groups globally correct.
///
/// Per-shard solvers should also hold per-shard [`IlpBasisCache`]s (one
/// shard's basis never matches another shard's skeleton, and a shared
/// single-slot cache would thrash).
pub fn place_with_ilp_status_on(
    state: &ClusterState,
    requests: &[LraRequest],
    deployed_constraints: &[PlacementConstraint],
    cfg: &IlpConfig,
    allowed: Option<&[NodeId]>,
) -> (Vec<PlacementOutcome>, IlpSolveStatus) {
    if requests.is_empty() {
        return (Vec::new(), IlpSolveStatus::Solved);
    }

    // Flatten new containers with their effective tags.
    let mut new_containers: Vec<NewContainer> = Vec::new();
    for (ri, r) in requests.iter().enumerate() {
        for (ci, c) in r.containers.iter().enumerate() {
            let mut tags = c.tags.clone();
            let auto = medea_cluster::Tag::app_id(r.app);
            if !tags.contains(&auto) {
                tags.push(auto);
            }
            new_containers.push(NewContainer {
                req_idx: ri,
                cont_idx: ci,
                tags,
                resources: c.resources,
            });
        }
    }
    let t_total = new_containers.len();
    if t_total == 0 {
        return (
            requests
                .iter()
                .map(|r| {
                    PlacementOutcome::Placed(LraPlacement {
                        app: r.app,
                        nodes: Vec::new(),
                    })
                })
                .collect(),
            IlpSolveStatus::Solved,
        );
    }

    // Active constraints: deployed + the new requests', relevance-filtered
    // and deduplicated (several HBase instances all submit the same
    // inter-application cardinality constraint, which would otherwise
    // multiply the model's rows).
    let mut active: Vec<PlacementConstraint> = Vec::new();
    for c in deployed_constraints
        .iter()
        .chain(requests.iter().flat_map(|r| r.constraints.iter()))
    {
        let relevant = new_containers.iter().any(|nc| {
            c.subject.matches_tags(&nc.tags)
                || c.expr.leaves().any(|l| l.target.matches_tags(&nc.tags))
        });
        if relevant && !active.contains(c) {
            active.push(c.clone());
        }
    }

    // MIP start: run the node-candidates heuristic on the full state; its
    // chosen nodes anchor the candidate set (so the model's search space
    // provably contains the heuristic solution), and its placement becomes
    // the initial incumbent — making the solve anytime: with any deadline
    // the result is heuristic-or-better.
    let heuristic =
        crate::heuristics::HeuristicScheduler::new(crate::heuristics::Ordering::NodeCandidates)
            .place_on(state, requests, deployed_constraints, allowed);
    let heuristic_nodes: Vec<NodeId> = {
        let mut v: Vec<NodeId> = heuristic
            .iter()
            .filter_map(|o| o.placement())
            .flat_map(|p| p.nodes.iter().copied())
            .collect();
        v.sort();
        v.dedup();
        v
    };

    // Make sure the candidate budget can at least hold the heuristic's
    // node set (a fully spread placement uses one node per container).
    let max_candidates = cfg.max_candidates.max((t_total + 4).min(96));
    let candidates = select_candidates(
        state,
        &new_containers,
        &active,
        &heuristic_nodes,
        max_candidates,
        t_total,
        allowed,
    );
    if candidates.is_empty() {
        // No usable node can host even the smallest container: the batch
        // is unplaceable regardless of algorithm — not a solver failure.
        return (
            requests
                .iter()
                .map(|r| PlacementOutcome::Unplaced { app: r.app })
                .collect(),
            IlpSolveStatus::Solved,
        );
    }

    let model = build_model(state, requests, &new_containers, &candidates, &active, cfg);

    let start = assignment_from_outcomes(requests, &heuristic, &candidates);

    let mut milp = Milp::new(&model.problem)
        .time_limit(cfg.time_limit)
        .node_limit(cfg.node_limit)
        .gap(cfg.gap);
    if cfg.mip_start {
        if let Some((assignment, placed)) = start {
            let point = initial_point(
                &model,
                state,
                &candidates,
                &new_containers,
                &assignment,
                &placed,
                cfg,
            );
            milp = milp.with_incumbent(point);
        }
    }
    let bridge = cfg.metrics.as_deref().map(SolverMetricsBridge::new);
    if let Some(bridge) = &bridge {
        milp = milp.with_instrumentation(bridge);
    }
    // Cross-round warm start: reuse the previous round's optimal basis
    // when the constraint skeleton is unchanged (same rows over the same
    // variables — only capacities/demands/weights moved).
    let skeleton = model.problem.skeleton_hash();
    if let Some(basis) = cfg
        .warm_cache
        .as_deref()
        .and_then(|cache| cache.take_if(skeleton))
    {
        if let Some(m) = cfg.metrics.as_deref() {
            m.counter("core.ilp_warm_start_hits_total").inc();
        }
        milp = milp.with_warm_basis(basis);
    }
    let t_solve = Instant::now();
    let solution = milp.solve();
    if let Some(m) = cfg.metrics.as_deref() {
        m.histogram("core.ilp_solve_us")
            .record_duration(t_solve.elapsed());
    }

    // Anytime degradation: if the MILP produced nothing usable (an error
    // or a limit hit before any incumbent), fall back to the heuristic
    // placement that anchored the candidate set rather than rejecting the
    // whole batch — the two-scheduler design prefers a heuristic-quality
    // placement now over no placement at all.
    let fallback = |reason: &str| {
        if let Some(m) = cfg.metrics.as_deref() {
            m.counter("core.heuristic_fallback_total").inc();
        }
        if std::env::var_os("MEDEA_SOLVER_DEBUG").is_some() {
            eprintln!("ilp: falling back to heuristic placement ({reason})");
        }
        (heuristic.clone(), IlpSolveStatus::Degraded)
    };
    let sol = match &solution {
        Err(_) => return fallback("problem validation error"),
        Ok(sol) if !sol.has_solution() => return fallback("no incumbent within limits"),
        Ok(sol) => sol,
    };
    if let (Some(cache), Some(basis)) = (cfg.warm_cache.as_deref(), &sol.root_basis) {
        cache.store(skeleton, basis.clone());
    }

    // Extract placements.
    let mut outcomes = Vec::with_capacity(requests.len());
    for (ri, r) in requests.iter().enumerate() {
        let placed = sol.value(model.s_vars[ri]).round() as i64 == 1;
        if !placed {
            outcomes.push(PlacementOutcome::Unplaced { app: r.app });
            continue;
        }
        let mut nodes = vec![NodeId(u32::MAX); r.containers.len()];
        let mut complete = true;
        for (gci, nc) in new_containers.iter().enumerate() {
            if nc.req_idx != ri {
                continue;
            }
            let mut found = None;
            for (ni, &cand) in candidates.iter().enumerate() {
                if sol.value(model.x_vars[gci][ni]).round() as i64 == 1 {
                    found = Some(cand);
                    break;
                }
            }
            match found {
                Some(n) => nodes[nc.cont_idx] = n,
                None => complete = false,
            }
        }
        if complete {
            outcomes.push(PlacementOutcome::Placed(LraPlacement { app: r.app, nodes }));
        } else {
            outcomes.push(PlacementOutcome::Unplaced { app: r.app });
        }
    }
    (outcomes, IlpSolveStatus::Solved)
}

/// Converts heuristic placement outcomes into the per-container candidate
/// assignment (`assignment[gci] = Some(candidate index)`) and per-request
/// placed flags. Returns `None` if the heuristic placed nothing or used a
/// node outside the candidate set.
fn assignment_from_outcomes(
    requests: &[LraRequest],
    outcomes: &[PlacementOutcome],
    candidates: &[NodeId],
) -> Option<(Vec<Option<usize>>, Vec<bool>)> {
    let mut assignment: Vec<Option<usize>> = Vec::new();
    let mut placed_flags = Vec::with_capacity(requests.len());
    let mut any_placed = false;
    for (ri, r) in requests.iter().enumerate() {
        match outcomes[ri].placement() {
            Some(pl) => {
                any_placed = true;
                placed_flags.push(true);
                // Candidate index per container.
                let mut cand_idx: Vec<usize> = Vec::with_capacity(pl.nodes.len());
                for &node in &pl.nodes {
                    let ni = candidates.iter().position(|&c| c == node)?;
                    cand_idx.push(ni);
                }
                // Canonicalize: identical containers are interchangeable,
                // and the model's symmetry-breaking rows require their
                // candidate indices to be non-decreasing — sort each
                // maximal run of identical containers.
                let mut run_start = 0;
                for ci in 1..=r.containers.len() {
                    let run_ends = ci == r.containers.len()
                        || r.containers[ci].resources != r.containers[run_start].resources
                        || r.containers[ci].tags != r.containers[run_start].tags;
                    if run_ends {
                        cand_idx[run_start..ci].sort_unstable();
                        run_start = ci;
                    }
                }
                assignment.extend(cand_idx.into_iter().map(Some));
            }
            None => {
                placed_flags.push(false);
                assignment.extend(std::iter::repeat_n(None, r.containers.len()));
            }
        }
    }
    if any_placed {
        Some((assignment, placed_flags))
    } else {
        None
    }
}

/// Constructs a complete feasible point of the model from a heuristic
/// placement: `X`/`S` from the assignment, `z` from residual free memory,
/// `b` from subject presence, `y` as the least-violated conjunct, and the
/// violation variables as the exact shortfall/excess of each leaf.
fn initial_point(
    model: &Model,
    state: &ClusterState,
    candidates: &[NodeId],
    new_containers: &[NewContainer],
    assignment: &[Option<usize>],
    placed: &[bool],
    cfg: &IlpConfig,
) -> Vec<f64> {
    let mut v = vec![0.0; model.problem.num_vars()];
    // X and S.
    for (gci, a) in assignment.iter().enumerate() {
        if let Some(ni) = a {
            v[model.x_vars[gci][*ni].index()] = 1.0;
        }
    }
    for (ri, &ok) in placed.iter().enumerate() {
        v[model.s_vars[ri].index()] = if ok { 1.0 } else { 0.0 };
    }
    // z: free memory after placement >= rmin.
    let rmin = cfg.weights.rmin.memory_mb as f64;
    for (ni, &cand) in candidates.iter().enumerate() {
        let free = state.free(cand).map(|f| f.memory_mb as f64).unwrap_or(0.0);
        let used: f64 = assignment
            .iter()
            .enumerate()
            .filter(|(_, a)| **a == Some(ni))
            .map(|(gci, _)| new_containers[gci].resources.memory_mb as f64)
            .sum();
        v[model.z_vars[ni].index()] = if used + rmin <= free { 1.0 } else { 0.0 };
    }
    // Constraint blocks.
    for block in &model.blocks {
        let new_subject_in_set = block
            .new_subjects
            .iter()
            .any(|&gci| assignment[gci].is_some_and(|ni| block.cand_in_set.contains(&ni)));
        let active = block.existing_subjects > 0 || new_subject_in_set;
        v[block.b.index()] = if active { 1.0 } else { 0.0 };
        if !active {
            continue; // Rows are slack; viol and y stay 0.
        }
        // Pick the conjunct with the smallest total violation.
        let mut best_d = 0;
        let mut best_viol = f64::INFINITY;
        let viol_of = |leaf: &LeafInfo| -> (f64, f64) {
            let count = leaf.existing_targets
                + leaf
                    .new_targets
                    .iter()
                    .filter(|&&gci| {
                        assignment[gci].is_some_and(|ni| block.cand_in_set.contains(&ni))
                    })
                    .count() as f64;
            let need = leaf.cmin as f64 + leaf.self_m;
            let shortfall = if leaf.cmin > 0 {
                (need - count).max(0.0)
            } else {
                0.0
            };
            let excess = match leaf.cmax {
                Some(cmax) => (count - cmax as f64 - leaf.self_m).max(0.0),
                None => 0.0,
            };
            (shortfall, excess)
        };
        for (d, conjunct) in block.conjuncts.iter().enumerate() {
            let total: f64 = conjunct
                .iter()
                .map(|l| {
                    let (s, e) = viol_of(l);
                    s + e
                })
                .sum();
            if total < best_viol {
                best_viol = total;
                best_d = d;
            }
        }
        for (d, conjunct) in block.conjuncts.iter().enumerate() {
            if let Some(y) = block.y_vars[d] {
                v[y.index()] = if d == best_d { 1.0 } else { 0.0 };
            }
            if d != best_d && block.y_vars[d].is_some() {
                continue; // Inactive conjunct: rows slack, viols 0.
            }
            for leaf in conjunct {
                let (shortfall, excess) = viol_of(leaf);
                if let Some(vmin) = leaf.vmin {
                    v[vmin.index()] = shortfall;
                }
                if let Some(vmax) = leaf.vmax {
                    v[vmax.index()] = excess;
                }
            }
        }
    }
    v
}

/// Selects candidate nodes by equivalence class (see module docs).
///
/// Three priorities shape the candidate set:
/// 1. the nodes chosen by the greedy heuristic (guaranteeing the model's
///    search space contains the MIP-start solution);
/// 2. nodes already hosting containers that match a target leaf of an
///    active constraint (affinity targets live there — they must be in
///    the model or affinity can never be satisfied);
/// 3. the *freest* equivalence classes, round-robin across classes for
///    diversity (so consecutive scheduling cycles do not keep re-packing
///    the same nodes).
#[allow(clippy::too_many_arguments)]
fn select_candidates(
    state: &ClusterState,
    new_containers: &[NewContainer],
    active: &[PlacementConstraint],
    heuristic_nodes: &[NodeId],
    max_candidates: usize,
    t_total: usize,
    allowed: Option<&[NodeId]>,
) -> Vec<NodeId> {
    let min_demand = new_containers
        .iter()
        .map(|c| c.resources)
        .fold(None::<medea_cluster::Resources>, |acc, r| {
            Some(match acc {
                None => r,
                Some(a) => a.min(&r),
            })
        })
        .unwrap_or(medea_cluster::Resources::ZERO);

    // The shard restriction filters *here*, inside usability, rather than
    // post-hoc on the result: priorities 2 and 3 would otherwise fill the
    // budget with out-of-shard nodes that a post-filter then discards,
    // leaving the model with far fewer candidates than budgeted.
    let allowed_set: Option<std::collections::HashSet<NodeId>> =
        allowed.map(|a| a.iter().copied().collect());
    let usable = |n: NodeId| {
        allowed_set.as_ref().is_none_or(|a| a.contains(&n))
            && state.is_available(n)
            && state
                .free(n)
                .map(|f| min_demand.fits_in(&f))
                .unwrap_or(false)
    };

    // Priority 1: nodes the greedy heuristic chose.
    let mut out: Vec<NodeId> = heuristic_nodes
        .iter()
        .copied()
        .filter(|&n| usable(n))
        .collect();
    out.truncate(max_candidates);

    // Priority 2: nodes hosting affinity targets of active constraints.
    let target_budget = (out.len() + max_candidates / 4).min(max_candidates);
    'outer: for c in active {
        for leaf in c.expr.leaves() {
            // Only minimum-cardinality (affinity-like) leaves require the
            // target's current hosts to be in the model.
            if leaf.cardinality.min == 0 {
                continue;
            }
            // The tag index narrows the scan to nodes carrying every target
            // tag (ascending, the same order as a full node walk); the
            // cardinality check still verifies a single container matches
            // the whole conjunction.
            for n in state.nodes_with_all_tags(leaf.target.tags()) {
                if out.len() >= target_budget {
                    break 'outer;
                }
                if usable(n)
                    && !out.contains(&n)
                    && leaf.target.cardinality_on_node(state, n, None) > 0
                {
                    out.push(n);
                }
            }
        }
    }

    // Priority 3: equivalence classes ordered by free memory (descending).
    // The class key is structural (free resources, sorted tag multiset,
    // group memberships) rather than a formatted string — no per-node
    // format!/join allocations on large clusters.
    type ClassKey = (u64, u32, Vec<(Tag, u32)>, Vec<Vec<usize>>);
    let mut classes: HashMap<ClassKey, Vec<NodeId>> = HashMap::new();
    let group_ids: Vec<_> = state.groups().group_ids().cloned().collect();
    for n in state.node_ids() {
        if !usable(n) || out.contains(&n) {
            continue;
        }
        let free = state.free(n).unwrap_or(medea_cluster::Resources::ZERO);
        let mut tags: Vec<(Tag, u32)> = state
            .node_tags(n)
            .map(|m| m.iter().map(|(t, c)| (t.clone(), c)).collect())
            .unwrap_or_default();
        tags.sort();
        let memberships: Vec<Vec<usize>> = group_ids
            .iter()
            .map(|g| {
                state
                    .groups()
                    .sets_containing_ref(g, n)
                    .map(|s| s.to_vec())
                    .unwrap_or_default()
            })
            .collect();
        classes
            .entry((free.memory_mb, free.vcores, tags, memberships))
            .or_default()
            .push(n);
    }
    let mut per_class: Vec<Vec<NodeId>> = classes
        .into_values()
        .filter_map(|mut v| {
            v.sort();
            v.truncate(t_total);
            (!v.is_empty()).then_some(v)
        })
        .collect();
    // Freest classes first; node id breaks ties deterministically.
    per_class.sort_by_key(|v| {
        let n = v.first().copied().unwrap_or(NodeId(u32::MAX));
        let free = state.free(n).unwrap_or(medea_cluster::Resources::ZERO);
        (std::cmp::Reverse(free.memory_mb), n)
    });
    let mut i = 0;
    while out.len() < max_candidates {
        let mut any = false;
        for class in &per_class {
            if let Some(&n) = class.get(i) {
                any = true;
                if !out.contains(&n) {
                    out.push(n);
                    if out.len() >= max_candidates {
                        break;
                    }
                }
            }
        }
        if !any {
            break;
        }
        i += 1;
    }
    out.sort();
    out
}

/// Handles to the model's variables for extraction.
struct Model {
    problem: Problem,
    /// `x_vars[global container idx][candidate idx]`.
    x_vars: Vec<Vec<VarId>>,
    /// `s_vars[request idx]` (Eq. 4 all-or-nothing indicators).
    s_vars: Vec<VarId>,
    /// Fragmentation indicators per candidate.
    z_vars: Vec<VarId>,
    /// Constraint blocks per (constraint, node set), for incumbent
    /// construction.
    blocks: Vec<SetBlock>,
}

/// Metadata of one (constraint, node set) block of rows.
struct SetBlock {
    b: VarId,
    existing_subjects: usize,
    new_subjects: Vec<usize>,
    cand_in_set: Vec<usize>,
    y_vars: Vec<Option<VarId>>,
    /// `conjuncts[d]` = leaves of DNF conjunct `d`.
    conjuncts: Vec<Vec<LeafInfo>>,
}

/// Metadata of one leaf's rows inside a block.
struct LeafInfo {
    vmin: Option<VarId>,
    vmax: Option<VarId>,
    existing_targets: f64,
    self_m: f64,
    cmin: u32,
    cmax: Option<u32>,
    /// Global container indices matching the target expression.
    new_targets: Vec<usize>,
}

/// Builds the Fig. 5 ILP over the candidate nodes.
fn build_model(
    state: &ClusterState,
    requests: &[LraRequest],
    new_containers: &[NewContainer],
    candidates: &[NodeId],
    active: &[PlacementConstraint],
    cfg: &IlpConfig,
) -> Model {
    let k = requests.len();
    let n_cand = candidates.len();
    let m_norm = active.len().max(1);
    let w = &cfg.weights;

    let mut p = Problem::maximize();

    // X_ijn.
    let x_vars: Vec<Vec<VarId>> = new_containers
        .iter()
        .enumerate()
        .map(|(gci, _)| {
            (0..n_cand)
                .map(|ni| p.add_binary(0.0, format!("x_{gci}_{ni}")))
                .collect()
        })
        .collect();

    // S_i with objective weight w1 / k (Eq. 1 first component).
    let s_vars: Vec<VarId> = (0..k)
        .map(|ri| p.add_binary(w.w1 / k as f64, format!("s_{ri}")))
        .collect();

    // z_n with objective weight w3 / N (Eq. 1 third component).
    let z_vars: Vec<VarId> = (0..n_cand)
        .map(|ni| p.add_binary(w.w3 / n_cand as f64, format!("z_{ni}")))
        .collect();

    // Eq. 2: each container placed at most once.
    for x_row in &x_vars {
        p.add_constraint(x_row.iter().map(|&v| (v, 1.0)), Cmp::Le, 1.0);
    }

    // Eq. 3: capacity per candidate (memory and vcores rows).
    for (ni, &cand) in candidates.iter().enumerate() {
        let free = state.free(cand).unwrap_or(medea_cluster::Resources::ZERO);
        let mem_terms: Vec<_> = new_containers
            .iter()
            .enumerate()
            .map(|(gci, nc)| (x_vars[gci][ni], nc.resources.memory_mb as f64))
            .collect();
        p.add_constraint(mem_terms, Cmp::Le, free.memory_mb as f64);
        let cpu_terms: Vec<_> = new_containers
            .iter()
            .enumerate()
            .map(|(gci, nc)| (x_vars[gci][ni], nc.resources.vcores as f64))
            .collect();
        p.add_constraint(cpu_terms, Cmp::Le, free.vcores as f64);
    }

    // Eq. 4: all-or-nothing per LRA.
    for (ri, r) in requests.iter().enumerate() {
        let t_i = r.containers.len() as f64;
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for (gci, nc) in new_containers.iter().enumerate() {
            if nc.req_idx == ri {
                for &xv in &x_vars[gci] {
                    terms.push((xv, 1.0));
                }
            }
        }
        terms.push((s_vars[ri], -t_i));
        p.add_constraint(terms, Cmp::Eq, 0.0);
    }

    // Symmetry breaking (not in the paper; CPLEX handles symmetric models
    // internally): identical containers of the same LRA are assigned
    // non-decreasing candidate indices, which prunes the factorially many
    // equivalent placements from branch and bound without excluding any
    // distinct solution.
    for ri in 0..(if cfg.symmetry_breaking { k } else { 0 }) {
        let group: Vec<usize> = new_containers
            .iter()
            .enumerate()
            .filter(|(_, nc)| nc.req_idx == ri)
            .map(|(gci, _)| gci)
            .collect();
        for pair in group.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let identical = new_containers[a].resources == new_containers[b].resources
                && new_containers[a].tags == new_containers[b].tags;
            if !identical {
                continue;
            }
            let mut terms: Vec<(VarId, f64)> = Vec::with_capacity(2 * n_cand);
            for (ni, (&xa, &xb)) in x_vars[a].iter().zip(x_vars[b].iter()).enumerate() {
                terms.push((xa, (ni + 1) as f64));
                terms.push((xb, -((ni + 1) as f64)));
            }
            p.add_constraint(terms, Cmp::Le, 0.0);
        }
    }

    // Eq. 5: fragmentation indicators. z_n = 1 requires that after the
    // placement the node keeps >= rmin free:
    //     sum(mem_ij X_ijn) + rmin * z_n <= free_n.
    let rmin = w.rmin.memory_mb as f64;
    for (ni, &cand) in candidates.iter().enumerate() {
        let free = state.free(cand).unwrap_or(medea_cluster::Resources::ZERO);
        let mut terms: Vec<(VarId, f64)> = new_containers
            .iter()
            .enumerate()
            .map(|(gci, nc)| (x_vars[gci][ni], nc.resources.memory_mb as f64))
            .collect();
        terms.push((z_vars[ni], rmin));
        p.add_constraint(terms, Cmp::Le, free.memory_mb as f64);
    }

    // Eqs. 6-8: one indicator per (constraint, node set), with the
    // corrected big-M activation (DESIGN.md §5).
    let mut blocks: Vec<SetBlock> = Vec::new();
    for constraint in active {
        let Ok(num_sets) = state.groups().num_sets(&constraint.group) else {
            continue;
        };
        // New subjects / targets-per-leaf membership, precomputed.
        let new_subjects: Vec<usize> = new_containers
            .iter()
            .enumerate()
            .filter(|(_, nc)| constraint.subject.matches_tags(&nc.tags))
            .map(|(gci, _)| gci)
            .collect();

        for set_idx in 0..num_sets {
            let Ok(members) = state.groups().set_members(&constraint.group, set_idx) else {
                continue;
            };
            let cand_in_set: Vec<usize> = candidates
                .iter()
                .enumerate()
                .filter(|(_, c)| members.contains(c))
                .map(|(ni, _)| ni)
                .collect();
            if cand_in_set.is_empty() {
                continue;
            }
            // Existing subjects already inside the set.
            let existing_subjects = members
                .iter()
                .flat_map(|&n| state.containers_on(n).unwrap_or(&[]).iter())
                .filter(|&&c| {
                    state
                        .allocation(c)
                        .map(|a| constraint.subject.matches_allocation(a))
                        .unwrap_or(false)
                })
                .count();
            if new_subjects.is_empty() && existing_subjects == 0 {
                continue;
            }

            // b: subject-presence indicator for this set.
            let b = if existing_subjects > 0 {
                p.add_var(VarKind::Binary, 1.0, 1.0, 0.0, format!("b_{set_idx}"))
            } else {
                p.add_binary(0.0, format!("b_{set_idx}"))
            };
            // Link: sum of new-subject placements in the set <= |subjects| b.
            if !new_subjects.is_empty() {
                let mut terms: Vec<(VarId, f64)> = Vec::new();
                for &gci in &new_subjects {
                    for &ni in &cand_in_set {
                        terms.push((x_vars[gci][ni], 1.0));
                    }
                }
                terms.push((b, -(new_subjects.len() as f64)));
                p.add_constraint(terms, Cmp::Le, 0.0);
            }

            // DNF: indicator y_d per conjunct; sum(y_d) >= b.
            let multi = constraint.expr.conjuncts.len() > 1;
            let y_vars: Vec<Option<VarId>> = constraint
                .expr
                .conjuncts
                .iter()
                .enumerate()
                .map(|(d, _)| {
                    if multi {
                        Some(p.add_binary(0.0, format!("y_{set_idx}_{d}")))
                    } else {
                        None
                    }
                })
                .collect();
            if multi {
                let mut terms: Vec<(VarId, f64)> =
                    y_vars.iter().filter_map(|y| y.map(|v| (v, 1.0))).collect();
                terms.push((b, -1.0));
                p.add_constraint(terms, Cmp::Ge, 0.0);
            }

            let mut conjunct_infos = Vec::with_capacity(constraint.expr.conjuncts.len());
            for (d, conjunct) in constraint.expr.conjuncts.iter().enumerate() {
                let mut leaf_infos = Vec::with_capacity(conjunct.len());
                for (li, leaf) in conjunct.iter().enumerate() {
                    leaf_infos.push(add_leaf_rows(
                        &mut p,
                        state,
                        constraint,
                        leaf,
                        &members,
                        &cand_in_set,
                        new_containers,
                        &new_subjects,
                        &x_vars,
                        b,
                        y_vars[d],
                        w.w2 / m_norm as f64,
                        &format!("{set_idx}_{d}_{li}"),
                    ));
                }
                conjunct_infos.push(leaf_infos);
            }
            blocks.push(SetBlock {
                b,
                existing_subjects,
                new_subjects: new_subjects.clone(),
                cand_in_set,
                y_vars,
                conjuncts: conjunct_infos,
            });
        }
    }

    Model {
        problem: p,
        x_vars,
        s_vars,
        z_vars,
        blocks,
    }
}

/// Adds the Eq. 6 (min) and Eq. 7 (max) rows for one leaf tag constraint
/// on one node set, with violation variables charged per Eq. 8.
#[allow(clippy::too_many_arguments)]
fn add_leaf_rows(
    p: &mut Problem,
    state: &ClusterState,
    constraint: &PlacementConstraint,
    leaf: &TagConstraint,
    members: &[NodeId],
    cand_in_set: &[usize],
    new_containers: &[NewContainer],
    new_subjects: &[usize],
    x_vars: &[Vec<VarId>],
    b: VarId,
    y: Option<VarId>,
    w2_norm: f64,
    name: &str,
) -> LeafInfo {
    // Existing matching targets inside the set.
    let existing_targets = leaf.target.cardinality_on_set(state, members, None) as f64;
    // New containers matching the target leaf.
    let new_targets: Vec<usize> = new_containers
        .iter()
        .enumerate()
        .filter(|(_, nc)| leaf.target.matches_tags(&nc.tags))
        .map(|(gci, _)| gci)
        .collect();
    // Self-exclusion adjustment: 1 when some subject container also
    // matches the target (its own tag occurrence must not satisfy/violate
    // its own constraint) — computed from actual container tags.
    let self_m = {
        let new_self = new_subjects
            .iter()
            .any(|&gci| leaf.target.matches_tags(&new_containers[gci].tags));
        let existing_self = members.iter().any(|&n| {
            state.containers_on(n).unwrap_or(&[]).iter().any(|&c| {
                state
                    .allocation(c)
                    .map(|a| {
                        constraint.subject.matches_allocation(a)
                            && leaf.target.matches_allocation(a)
                    })
                    .unwrap_or(false)
            })
        });
        (new_self || existing_self) as u32 as f64
    };

    let total_possible = existing_targets + new_targets.len() as f64;
    let big_m = total_possible + leaf.cardinality.min as f64 + 1.0;
    let weight = constraint.weight;

    let mut info = LeafInfo {
        vmin: None,
        vmax: None,
        existing_targets,
        self_m,
        cmin: leaf.cardinality.min,
        cmax: leaf.cardinality.max,
        new_targets: new_targets.clone(),
    };

    // Minimum-cardinality row (Eq. 6): required only when cmin > 0.
    if leaf.cardinality.min > 0 {
        let cmin = leaf.cardinality.min as f64;
        // The worst shortfall is cmin + self_m (self-exclusion raises the
        // requirement), so the violation variable must reach that far.
        let vmin = p.add_var(
            VarKind::Continuous,
            0.0,
            cmin + self_m,
            -w2_norm * weight / cmin,
            format!("vmin_{name}"),
        );
        // existing + sum(X_t) + vmin + M(1-b) [+ M(1-y)] >= (cmin + self) b
        // => sum(X_t) + vmin - (cmin + self + M) b [- M y] >= -existing - M [- M]
        let mut terms: Vec<(VarId, f64)> = new_targets
            .iter()
            .flat_map(|&gci| {
                cand_in_set
                    .iter()
                    .map(move |&ni| (x_vars[gci][ni], 1.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        terms.push((vmin, 1.0));
        let mut rhs = -existing_targets;
        terms.push((b, -(cmin + self_m) - big_m));
        rhs -= big_m;
        if let Some(yv) = y {
            terms.push((yv, -big_m));
            rhs -= big_m;
        }
        // Note the b coefficient folds the activation: when b = 0 the row
        // is slack by M; when b = 1 it requires the count to reach cmin
        // (+ self adjustment) or charge vmin.
        p.add_constraint(terms, Cmp::Ge, rhs);
        info.vmin = Some(vmin);
    }

    // Maximum-cardinality row (Eq. 7): required only when cmax is finite.
    if let Some(cmax) = leaf.cardinality.max {
        let cmax = cmax as f64;
        let vmax = p.add_var(
            VarKind::Continuous,
            0.0,
            f64::INFINITY,
            -w2_norm * weight / cmax.max(1.0),
            format!("vmax_{name}"),
        );
        // existing + sum(X_t) <= cmax + self + vmax + M(1-b) [+ M(1-y)]
        // => sum(X_t) + M b [+ M y] - vmax <= cmax + self - existing + M [+ M]
        let mut terms: Vec<(VarId, f64)> = new_targets
            .iter()
            .flat_map(|&gci| {
                cand_in_set
                    .iter()
                    .map(move |&ni| (x_vars[gci][ni], 1.0))
                    .collect::<Vec<_>>()
            })
            .collect();
        terms.push((vmax, -1.0));
        let mut rhs = cmax + self_m - existing_targets;
        terms.push((b, big_m));
        rhs += big_m;
        if let Some(yv) = y {
            terms.push((yv, big_m));
            rhs += big_m;
        }
        p.add_constraint(terms, Cmp::Le, rhs);
        info.vmax = Some(vmax);
    }
    info
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{
        ApplicationId, ClusterState, ContainerRequest, ExecutionKind, NodeGroupId, Resources, Tag,
    };
    use medea_constraints::Cardinality;

    fn cluster(n: usize, racks: usize) -> ClusterState {
        ClusterState::homogeneous(n, Resources::new(16 * 1024, 16), racks)
    }

    fn commit(state: &mut ClusterState, req: &LraRequest, outcome: &PlacementOutcome) {
        if let Some(pl) = outcome.placement() {
            for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                state
                    .allocate(req.app, n, c, ExecutionKind::LongRunning)
                    .unwrap();
            }
        }
    }

    #[test]
    fn places_all_containers_respecting_capacity() {
        let state = cluster(4, 2);
        let req = LraRequest::uniform(
            ApplicationId(1),
            6,
            Resources::new(8 * 1024, 4),
            vec![Tag::new("a")],
            vec![],
        );
        let out = place_with_ilp(
            &state,
            std::slice::from_ref(&req),
            &[],
            &IlpConfig::default(),
        );
        let pl = out[0].placement().expect("should place");
        assert_eq!(pl.nodes.len(), 6);
        // 6 x 8 GB on 4 x 16 GB nodes: at most 2 per node.
        let mut per_node: HashMap<NodeId, usize> = HashMap::new();
        for &n in &pl.nodes {
            *per_node.entry(n).or_default() += 1;
        }
        assert!(per_node.values().all(|&c| c <= 2));
    }

    #[test]
    fn all_or_nothing_when_cluster_too_small() {
        let state = cluster(2, 1);
        // 5 x 16 GB cannot fit in 2 x 16 GB: the LRA must be unplaced.
        let req = LraRequest::uniform(
            ApplicationId(1),
            5,
            Resources::new(16 * 1024, 1),
            vec![],
            vec![],
        );
        let out = place_with_ilp(&state, &[req], &[], &IlpConfig::default());
        assert!(matches!(out[0], PlacementOutcome::Unplaced { .. }));
    }

    #[test]
    fn node_anti_affinity_spreads_containers() {
        let state = cluster(6, 2);
        let caa = PlacementConstraint::anti_affinity("w", "w", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            4,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![caa],
        );
        let out = place_with_ilp(&state, &[req], &[], &IlpConfig::default());
        let pl = out[0].placement().expect("should place");
        let mut nodes = pl.nodes.clone();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 4, "anti-affinity must use distinct nodes");
    }

    #[test]
    fn node_affinity_collocates_with_target() {
        let mut state = cluster(6, 2);
        // Existing memcached on node 3.
        state
            .allocate(
                ApplicationId(9),
                NodeId(3),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("mem")]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let caf = PlacementConstraint::affinity("storm", "mem", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("storm")],
            vec![caf],
        );
        let out = place_with_ilp(&state, &[req], &[], &IlpConfig::default());
        let pl = out[0].placement().expect("should place");
        assert!(pl.nodes.iter().all(|&n| n == NodeId(3)));
    }

    #[test]
    fn cardinality_cap_respected() {
        let state = cluster(8, 2);
        // At most 2 workers per node.
        let card = PlacementConstraint::new("w", "w", Cardinality::at_most(1), NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            6,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![card],
        );
        let out = place_with_ilp(&state, &[req], &[], &IlpConfig::default());
        let pl = out[0].placement().expect("should place");
        let mut per_node: HashMap<NodeId, usize> = HashMap::new();
        for &n in &pl.nodes {
            *per_node.entry(n).or_default() += 1;
        }
        // at_most(1) counts *other* w containers: up to 2 per node.
        assert!(per_node.values().all(|&c| c <= 2), "{per_node:?}");
    }

    #[test]
    fn rack_affinity_keeps_app_in_one_rack() {
        let state = cluster(8, 4);
        let app = ApplicationId(4);
        let intra = PlacementConstraint::affinity(
            medea_constraints::TagExpr::and([Tag::new("tf"), Tag::app_id(app)]),
            medea_constraints::TagExpr::and([Tag::new("tf"), Tag::app_id(app)]),
            NodeGroupId::rack(),
        );
        let req = LraRequest::uniform(
            app,
            4,
            Resources::new(1024, 1),
            vec![Tag::new("tf")],
            vec![intra],
        );
        let out = place_with_ilp(
            &state,
            std::slice::from_ref(&req),
            &[],
            &IlpConfig::default(),
        );
        let pl = out[0].placement().expect("should place");
        let state2 = {
            let mut s = cluster(8, 4);
            commit(&mut s, &req, &out[0]);
            s
        };
        // All four containers in the same rack.
        let racks: std::collections::HashSet<usize> = pl
            .nodes
            .iter()
            .map(|&n| {
                state2
                    .groups()
                    .sets_containing(&NodeGroupId::rack(), n)
                    .unwrap()[0]
            })
            .collect();
        assert_eq!(racks.len(), 1, "rack affinity must hold: {racks:?}");
    }

    #[test]
    fn deployed_constraints_respected() {
        let mut state = cluster(4, 2);
        // Deployed latency-critical service on node 0 with anti-affinity
        // against "batchy" containers.
        state
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("svc")]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let deployed = PlacementConstraint::anti_affinity("svc", "batchy", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(2),
            3,
            Resources::new(1024, 1),
            vec![Tag::new("batchy")],
            vec![],
        );
        let out = place_with_ilp(&state, &[req], &[deployed], &IlpConfig::default());
        let pl = out[0].placement().expect("should place");
        assert!(
            pl.nodes.iter().all(|&n| n != NodeId(0)),
            "must avoid the svc node: {:?}",
            pl.nodes
        );
    }

    #[test]
    fn two_lras_with_inter_app_anti_affinity() {
        let state = cluster(6, 3);
        let a = PlacementConstraint::anti_affinity("alpha", "beta", NodeGroupId::node());
        let r1 = LraRequest::uniform(
            ApplicationId(1),
            3,
            Resources::new(2048, 1),
            vec![Tag::new("alpha")],
            vec![a],
        );
        let r2 = LraRequest::uniform(
            ApplicationId(2),
            3,
            Resources::new(2048, 1),
            vec![Tag::new("beta")],
            vec![],
        );
        let out = place_with_ilp(&state, &[r1, r2], &[], &IlpConfig::default());
        let p1 = out[0].placement().expect("r1 placed");
        let p2 = out[1].placement().expect("r2 placed");
        for n1 in &p1.nodes {
            assert!(
                !p2.nodes.contains(n1),
                "alpha and beta must not share nodes"
            );
        }
    }

    #[test]
    fn prefers_placing_more_lras() {
        // Cluster fits both LRAs only if packed well.
        let state = cluster(2, 1);
        let r1 = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(8 * 1024, 4),
            vec![Tag::new("a")],
            vec![],
        );
        let r2 = LraRequest::uniform(
            ApplicationId(2),
            2,
            Resources::new(8 * 1024, 4),
            vec![Tag::new("b")],
            vec![],
        );
        let out = place_with_ilp(&state, &[r1, r2], &[], &IlpConfig::default());
        assert!(out[0].placement().is_some());
        assert!(out[1].placement().is_some());
    }

    #[test]
    fn soft_constraints_yield_to_feasibility() {
        // Anti-affinity over 2 nodes for 4 containers: impossible to
        // satisfy fully, but soft constraints must not block placement.
        let state = cluster(2, 1);
        let caa = PlacementConstraint::anti_affinity("w", "w", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            4,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![caa],
        );
        let out = place_with_ilp(&state, &[req], &[], &IlpConfig::default());
        let pl = out[0].placement().expect("soft constraints must not block");
        assert_eq!(pl.nodes.len(), 4);
    }

    #[test]
    fn empty_request_list() {
        let state = cluster(2, 1);
        assert!(place_with_ilp(&state, &[], &[], &IlpConfig::default()).is_empty());
    }

    #[test]
    fn compound_dnf_constraint_solved_via_y_indicators() {
        let mut state = cluster(6, 2);
        // Only a "cache" exists (no "db"): the DNF (affinity to db) OR
        // (affinity to cache) must be satisfied through its second
        // conjunct.
        state
            .allocate(
                ApplicationId(9),
                NodeId(4),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("cache")]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let expr = medea_constraints::TagConstraintExpr::any([
            vec![medea_constraints::TagConstraint::new(
                "db",
                Cardinality::affinity(),
            )],
            vec![medea_constraints::TagConstraint::new(
                "cache",
                Cardinality::affinity(),
            )],
        ]);
        let compound = PlacementConstraint::compound("w", expr, NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![compound.clone()],
        );
        let out = place_with_ilp(
            &state,
            std::slice::from_ref(&req),
            &[],
            &IlpConfig::default(),
        );
        let pl = out[0].placement().expect("placeable");
        assert!(
            pl.nodes.iter().all(|&n| n == NodeId(4)),
            "DNF should steer both containers to the cache node: {:?}",
            pl.nodes
        );
        commit(&mut state, &req, &out[0]);
        let stats = medea_constraints::violation_stats(&state, [&compound]);
        assert_eq!(stats.containers_violating, 0);
    }

    #[test]
    fn disabling_mip_start_still_solves_small_models() {
        let state = cluster(4, 2);
        let cfg = IlpConfig {
            mip_start: false,
            symmetry_breaking: false,
            ..IlpConfig::default()
        };
        let req = LraRequest::uniform(
            ApplicationId(1),
            3,
            Resources::new(1024, 1),
            vec![Tag::new("x")],
            vec![PlacementConstraint::anti_affinity(
                "x",
                "x",
                NodeGroupId::node(),
            )],
        );
        let out = place_with_ilp(&state, &[req], &[], &cfg);
        let pl = out[0]
            .placement()
            .expect("small model solves without start");
        let mut nodes = pl.nodes.clone();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 3);
    }

    #[test]
    fn hard_constraints_dominate_soft_ones() {
        let mut state = cluster(2, 1);
        // A noisy container on node 0; a *hard* anti-affinity against it
        // competes with a soft affinity toward it. Hard must win.
        state
            .allocate(
                ApplicationId(9),
                NodeId(0),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("noisy")]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let hard = PlacementConstraint::anti_affinity("w", "noisy", NodeGroupId::node()).hard();
        let soft = PlacementConstraint::affinity("w", "noisy", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![hard, soft],
        );
        let out = place_with_ilp(&state, &[req], &[], &IlpConfig::default());
        let pl = out[0].placement().expect("placeable");
        assert_eq!(pl.nodes[0], NodeId(1), "hard anti-affinity must dominate");
    }

    #[test]
    fn cross_round_cache_warm_starts_matching_skeletons() {
        let registry = medea_obs::MetricsRegistry::new();
        let cfg = IlpConfig {
            metrics: Some(registry.clone()),
            ..IlpConfig::default()
        };
        let state = cluster(6, 2);
        let request = |app: u64| {
            LraRequest::uniform(
                ApplicationId(app),
                3,
                Resources::new(1024, 1),
                vec![Tag::new("svc")],
                vec![PlacementConstraint::anti_affinity(
                    "svc",
                    "svc",
                    NodeGroupId::node(),
                )],
            )
        };

        // Round 1: cold — the cache is empty.
        let r1 = request(1);
        let out = place_with_ilp(&state, std::slice::from_ref(&r1), &[], &cfg);
        assert!(out[0].placement().is_some());
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.ilp_warm_start_hits_total"), None);

        // Round 2: an identical batch shape (same constraint skeleton, the
        // cluster untouched) must hit the cache and produce the same
        // quality of placement.
        let r2 = request(2);
        let out = place_with_ilp(&state, std::slice::from_ref(&r2), &[], &cfg);
        let pl = out[0].placement().expect("warm round must still place");
        let mut nodes = pl.nodes.clone();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 3, "anti-affinity still honored when warm");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.ilp_warm_start_hits_total"), Some(1));
        assert!(
            snap.counter("solver.warm_starts_total").unwrap_or(0) >= 1,
            "root LP should report a warm start"
        );
    }

    #[test]
    fn disabled_cache_never_warm_starts() {
        let registry = medea_obs::MetricsRegistry::new();
        let cfg = IlpConfig {
            metrics: Some(registry.clone()),
            warm_cache: None,
            ..IlpConfig::default()
        };
        let state = cluster(4, 2);
        for app in 1u64..=2 {
            let req = LraRequest::uniform(
                ApplicationId(app),
                2,
                Resources::new(1024, 1),
                vec![Tag::new("x")],
                vec![],
            );
            let out = place_with_ilp(&state, &[req], &[], &cfg);
            assert!(out[0].placement().is_some());
        }
        let snap = registry.snapshot();
        assert_eq!(snap.counter("core.ilp_warm_start_hits_total"), None);
    }
}
