//! Scheduler capability matrix (paper Table 1): support for requirements
//! R1–R4 across existing schedulers and Medea.
//!
//! The rows for external systems (Borg, Mesos, ...) reproduce the paper's
//! literature assessment; the rows for the algorithms implemented in this
//! crate (`Medea`, `J-Kube`, `YARN`) are derived from the code via
//! [`implemented_capabilities`], so the table stays honest about what this
//! reproduction actually does.

use std::fmt;

use crate::lra::LraAlgorithm;

/// Support level of a capability (Table 1 legend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Support {
    /// Full, explicit support (✓).
    Full,
    /// Implicit support through static machine attributes (✧).
    Implicit,
    /// Partially supported (✽).
    Partial,
    /// Not supported (–).
    None,
}

impl fmt::Display for Support {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Support::Full => "yes",
            Support::Implicit => "impl",
            Support::Partial => "part",
            Support::None => "-",
        };
        f.write_str(s)
    }
}

/// One row of Table 1.
#[derive(Debug, Clone)]
pub struct CapabilityRow {
    /// System name.
    pub system: &'static str,
    /// R1: affinity constraints between containers.
    pub affinity: Support,
    /// R1: anti-affinity constraints.
    pub anti_affinity: Support,
    /// R1: cardinality constraints.
    pub cardinality: Support,
    /// R1: intra-application constraints.
    pub intra: Support,
    /// R1: inter-application constraints.
    pub inter: Support,
    /// R2: high-level (cluster-agnostic) constraints.
    pub high_level: Support,
    /// R3: global optimization objectives.
    pub global_objectives: Support,
    /// R4: low-latency container allocation.
    pub low_latency: Support,
}

/// The paper's Table 1, verbatim.
pub fn paper_table1() -> Vec<CapabilityRow> {
    use Support::*;
    vec![
        CapabilityRow {
            system: "YARN",
            affinity: Implicit,
            anti_affinity: None,
            cardinality: None,
            intra: Implicit,
            inter: None,
            high_level: None,
            global_objectives: None,
            low_latency: Full,
        },
        CapabilityRow {
            system: "Slider",
            affinity: Implicit,
            anti_affinity: Implicit,
            cardinality: None,
            intra: Implicit,
            inter: None,
            high_level: None,
            global_objectives: None,
            low_latency: None,
        },
        CapabilityRow {
            system: "Borg",
            affinity: Implicit,
            anti_affinity: Implicit,
            cardinality: None,
            intra: Implicit,
            inter: Implicit,
            high_level: None,
            global_objectives: Partial,
            low_latency: Full,
        },
        CapabilityRow {
            system: "Kubernetes",
            affinity: Full,
            anti_affinity: Full,
            cardinality: None,
            intra: Full,
            inter: Full,
            high_level: Full,
            global_objectives: Partial,
            low_latency: Full,
        },
        CapabilityRow {
            system: "Mesos",
            affinity: Implicit,
            anti_affinity: None,
            cardinality: None,
            intra: Implicit,
            inter: None,
            high_level: None,
            global_objectives: None,
            low_latency: None,
        },
        CapabilityRow {
            system: "Marathon",
            affinity: Full,
            anti_affinity: Full,
            cardinality: Full,
            intra: Full,
            inter: None,
            high_level: None,
            global_objectives: None,
            low_latency: None,
        },
        CapabilityRow {
            system: "Aurora",
            affinity: Implicit,
            anti_affinity: Full,
            cardinality: Full,
            intra: Full,
            inter: None,
            high_level: None,
            global_objectives: None,
            low_latency: None,
        },
        CapabilityRow {
            system: "TetriSched",
            affinity: Implicit,
            anti_affinity: Implicit,
            cardinality: Implicit,
            intra: Full,
            inter: None,
            high_level: None,
            global_objectives: Partial,
            low_latency: Full,
        },
        CapabilityRow {
            system: "Medea",
            affinity: Full,
            anti_affinity: Full,
            cardinality: Full,
            intra: Full,
            inter: Full,
            high_level: Full,
            global_objectives: Full,
            low_latency: Full,
        },
    ]
}

/// Capabilities of the algorithms implemented in this crate, derived from
/// their actual behaviour.
pub fn implemented_capabilities(alg: LraAlgorithm) -> CapabilityRow {
    use Support::*;
    match alg {
        LraAlgorithm::Ilp | LraAlgorithm::NodeCandidates | LraAlgorithm::TagPopularity => {
            CapabilityRow {
                system: match alg {
                    LraAlgorithm::Ilp => "Medea (ILP)",
                    LraAlgorithm::NodeCandidates => "Medea (NC)",
                    _ => "Medea (TP)",
                },
                affinity: Full,
                anti_affinity: Full,
                cardinality: Full,
                intra: Full,
                inter: Full,
                high_level: Full,
                // Only the ILP *optimizes* global objectives; the
                // heuristics approximate them greedily.
                global_objectives: if alg == LraAlgorithm::Ilp {
                    Full
                } else {
                    Partial
                },
                low_latency: Full,
            }
        }
        LraAlgorithm::Serial => CapabilityRow {
            system: "Serial",
            affinity: Full,
            anti_affinity: Full,
            cardinality: Full,
            intra: Full,
            inter: Full,
            high_level: Full,
            global_objectives: Partial,
            low_latency: Full,
        },
        LraAlgorithm::JKube => CapabilityRow {
            system: "J-Kube",
            affinity: Full,
            anti_affinity: Full,
            cardinality: None,
            intra: Full,
            inter: Full,
            high_level: Full,
            global_objectives: Partial,
            low_latency: Full,
        },
        LraAlgorithm::JKubePlusPlus => CapabilityRow {
            system: "J-Kube++",
            affinity: Full,
            anti_affinity: Full,
            cardinality: Full,
            intra: Full,
            inter: Full,
            high_level: Full,
            global_objectives: Partial,
            low_latency: Full,
        },
        LraAlgorithm::Yarn => CapabilityRow {
            system: "YARN",
            affinity: None,
            anti_affinity: None,
            cardinality: None,
            intra: None,
            inter: None,
            high_level: None,
            global_objectives: None,
            low_latency: Full,
        },
    }
}

/// Renders a capability table as fixed-width text.
pub fn render_table(rows: &[CapabilityRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<12} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}\n",
        "System", "aff", "anti", "card", "intra", "inter", "high", "glob", "lat"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5}\n",
            r.system,
            r.affinity.to_string(),
            r.anti_affinity.to_string(),
            r.cardinality.to_string(),
            r.intra.to_string(),
            r.inter.to_string(),
            r.high_level.to_string(),
            r.global_objectives.to_string(),
            r.low_latency.to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table_has_nine_rows_with_medea_full() {
        let t = paper_table1();
        assert_eq!(t.len(), 9);
        let medea = t.last().unwrap();
        assert_eq!(medea.system, "Medea");
        for s in [
            medea.affinity,
            medea.anti_affinity,
            medea.cardinality,
            medea.intra,
            medea.inter,
            medea.high_level,
            medea.global_objectives,
            medea.low_latency,
        ] {
            assert_eq!(s, Support::Full);
        }
    }

    #[test]
    fn jkube_lacks_cardinality_and_plus_plus_has_it() {
        assert_eq!(
            implemented_capabilities(LraAlgorithm::JKube).cardinality,
            Support::None
        );
        assert_eq!(
            implemented_capabilities(LraAlgorithm::JKubePlusPlus).cardinality,
            Support::Full
        );
    }

    #[test]
    fn yarn_is_constraint_unaware() {
        let y = implemented_capabilities(LraAlgorithm::Yarn);
        assert_eq!(y.affinity, Support::None);
        assert_eq!(y.low_latency, Support::Full);
    }

    #[test]
    fn table_renders() {
        let s = render_table(&paper_table1());
        assert!(s.contains("Kubernetes"));
        assert!(s.lines().count() == 10);
    }
}
