//! The LRA scheduler: algorithm selection and dispatch (§5).

use std::fmt;

use medea_cluster::{ClusterState, NodeId};
use medea_constraints::PlacementConstraint;

use crate::heuristics::{HeuristicScheduler, Ordering};
use crate::ilp::{place_with_ilp_status_on, IlpConfig, IlpSolveStatus};
use crate::jkube::JKubeScheduler;
use crate::request::{LraRequest, PlacementOutcome};
use crate::yarn::YarnScheduler;

/// The LRA placement algorithm to use (§7.1 comparison set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LraAlgorithm {
    /// Medea-ILP: the optimization-based algorithm of §5.2.
    Ilp,
    /// Medea-NC: node-candidates heuristic (§5.3).
    NodeCandidates,
    /// Medea-TP: tag-popularity heuristic (§5.3).
    TagPopularity,
    /// Serial: greedy without ordering (§7.1).
    Serial,
    /// J-Kube: Kubernetes' algorithm, one request at a time, no
    /// cardinality.
    JKube,
    /// J-Kube++: J-Kube extended with cardinality constraints.
    JKubePlusPlus,
    /// YARN: constraint-unaware baseline.
    Yarn,
}

impl LraAlgorithm {
    /// All algorithms, in the order the paper's figures list them.
    pub const ALL: [LraAlgorithm; 7] = [
        LraAlgorithm::Ilp,
        LraAlgorithm::NodeCandidates,
        LraAlgorithm::TagPopularity,
        LraAlgorithm::Serial,
        LraAlgorithm::JKube,
        LraAlgorithm::JKubePlusPlus,
        LraAlgorithm::Yarn,
    ];

    /// Short display name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            LraAlgorithm::Ilp => "MEDEA-ILP",
            LraAlgorithm::NodeCandidates => "MEDEA-NC",
            LraAlgorithm::TagPopularity => "MEDEA-TP",
            LraAlgorithm::Serial => "Serial",
            LraAlgorithm::JKube => "J-KUBE",
            LraAlgorithm::JKubePlusPlus => "J-KUBE++",
            LraAlgorithm::Yarn => "YARN",
        }
    }
}

impl fmt::Display for LraAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The LRA scheduler of Fig. 4: places batches of LRAs using the
/// configured algorithm against a snapshot of the cluster state.
pub struct LraScheduler {
    /// Selected algorithm.
    pub algorithm: LraAlgorithm,
    /// ILP configuration (used only by [`LraAlgorithm::Ilp`]).
    pub ilp: IlpConfig,
}

impl LraScheduler {
    /// Creates a scheduler with default configuration.
    pub fn new(algorithm: LraAlgorithm) -> Self {
        LraScheduler {
            algorithm,
            ilp: IlpConfig::default(),
        }
    }

    /// Places a batch of newly submitted LRAs.
    ///
    /// `deployed_constraints` are the already-active constraints from the
    /// constraint manager (deployed LRAs + operator); the new requests
    /// carry their own constraints.
    pub fn place(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
    ) -> Vec<PlacementOutcome> {
        self.place_with_status(state, requests, deployed_constraints)
            .0
    }

    /// Like [`LraScheduler::place`], but restricted to an allowed node
    /// list (a shard's nodes); `None` means all nodes. Scoring still sees
    /// the full state — only candidate hosts are restricted.
    pub fn place_on(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
        allowed: Option<&[NodeId]>,
    ) -> Vec<PlacementOutcome> {
        self.place_with_status_on(state, requests, deployed_constraints, allowed)
            .0
    }

    /// Like [`LraScheduler::place`], additionally reporting whether the
    /// ILP path degraded to its heuristic fallback. Non-ILP algorithms
    /// always report [`IlpSolveStatus::Solved`] (they have no solver to
    /// degrade).
    pub fn place_with_status(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
    ) -> (Vec<PlacementOutcome>, IlpSolveStatus) {
        self.place_with_status_on(state, requests, deployed_constraints, None)
    }

    /// Allowed-node-restricted variant of
    /// [`LraScheduler::place_with_status`].
    pub fn place_with_status_on(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
        allowed: Option<&[NodeId]>,
    ) -> (Vec<PlacementOutcome>, IlpSolveStatus) {
        if self.algorithm == LraAlgorithm::Ilp {
            return place_with_ilp_status_on(
                state,
                requests,
                deployed_constraints,
                &self.ilp,
                allowed,
            );
        }
        (
            self.place_non_ilp(state, requests, deployed_constraints, allowed),
            IlpSolveStatus::Solved,
        )
    }

    /// The degraded path the circuit breaker switches to while open: the
    /// node-candidates heuristic (§5.3), regardless of the configured
    /// algorithm.
    pub fn place_degraded(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
    ) -> Vec<PlacementOutcome> {
        self.place_degraded_on(state, requests, deployed_constraints, None)
    }

    /// Allowed-node-restricted variant of
    /// [`LraScheduler::place_degraded`].
    pub fn place_degraded_on(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
        allowed: Option<&[NodeId]>,
    ) -> Vec<PlacementOutcome> {
        HeuristicScheduler::new(Ordering::NodeCandidates).place_on(
            state,
            requests,
            deployed_constraints,
            allowed,
        )
    }

    fn place_non_ilp(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
        allowed: Option<&[NodeId]>,
    ) -> Vec<PlacementOutcome> {
        match self.algorithm {
            // Only reachable via place_with_status, which routes ILP
            // through the solver; degrade to the anchor heuristic rather
            // than panic if a future caller slips through.
            LraAlgorithm::Ilp | LraAlgorithm::NodeCandidates => HeuristicScheduler::new(
                Ordering::NodeCandidates,
            )
            .place_on(state, requests, deployed_constraints, allowed),
            LraAlgorithm::TagPopularity => HeuristicScheduler::new(Ordering::TagPopularity)
                .place_on(state, requests, deployed_constraints, allowed),
            LraAlgorithm::Serial => HeuristicScheduler::new(Ordering::Submission).place_on(
                state,
                requests,
                deployed_constraints,
                allowed,
            ),
            // The J-Kube and YARN baselines pick nodes internally; the
            // restriction is applied by masking availability on a working
            // copy (every placer honors node availability).
            LraAlgorithm::JKube => JKubeScheduler::jkube().place(
                masked(state, allowed).as_ref().unwrap_or(state),
                requests,
                deployed_constraints,
            ),
            LraAlgorithm::JKubePlusPlus => JKubeScheduler::jkube_plus_plus().place(
                masked(state, allowed).as_ref().unwrap_or(state),
                requests,
                deployed_constraints,
            ),
            LraAlgorithm::Yarn => YarnScheduler::new()
                .place(masked(state, allowed).as_ref().unwrap_or(state), requests),
        }
    }
}

/// Working copy of `state` with every node outside `allowed` marked
/// unavailable; `None` when no restriction applies.
fn masked(state: &ClusterState, allowed: Option<&[NodeId]>) -> Option<ClusterState> {
    let allowed = allowed?;
    let mut work = state.clone();
    let set: std::collections::HashSet<NodeId> = allowed.iter().copied().collect();
    let ids: Vec<NodeId> = work.node_ids().collect();
    for n in ids {
        if !set.contains(&n) {
            let _ = work.set_available(n, false);
        }
    }
    Some(work)
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{ApplicationId, NodeGroupId, Resources, Tag};

    #[test]
    fn every_algorithm_places_a_simple_lra() {
        let state = ClusterState::homogeneous(6, Resources::new(16 * 1024, 16), 2);
        for alg in LraAlgorithm::ALL {
            let req = LraRequest::uniform(
                ApplicationId(1),
                3,
                Resources::new(2048, 1),
                vec![Tag::new("x")],
                vec![PlacementConstraint::anti_affinity(
                    "x",
                    "x",
                    NodeGroupId::node(),
                )],
            );
            let out = LraScheduler::new(alg).place(&state, &[req], &[]);
            assert!(
                out[0].placement().is_some(),
                "{alg} failed to place a trivially placeable LRA"
            );
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(LraAlgorithm::Ilp.name(), "MEDEA-ILP");
        assert_eq!(LraAlgorithm::JKubePlusPlus.to_string(), "J-KUBE++");
        assert_eq!(LraAlgorithm::ALL.len(), 7);
    }
}
