//! Container migration: the §5.4 extension.
//!
//! The paper's Medea is purely proactive: placements are fixed at
//! scheduling time, and under churn ("when LRAs enter and leave the
//! system at high rates or when their resource demands change over time")
//! the authors propose *combining the proactive approach with reactive
//! container migration, accounting for migration cost in the objective* —
//! left as future work. This module implements that extension as a greedy
//! migration controller: each round it finds the single container move
//! that most reduces the weighted violation extent net of a per-move
//! migration cost, applies it, and repeats up to a move budget.

use medea_cluster::{ClusterState, ContainerId, ContainerRequest, ExecutionKind, NodeId};
use medea_constraints::{check_container, PlacementConstraint};

use crate::objective::{ObjectiveWeights, Scorer};

/// One applied migration.
#[derive(Debug, Clone, PartialEq)]
pub struct Migration {
    /// The container that moved (its id changes on re-allocation; this is
    /// the *new* id).
    pub container: ContainerId,
    /// Node it left.
    pub from: NodeId,
    /// Node it landed on.
    pub to: NodeId,
    /// Weighted violation-extent improvement of the move (pre-cost).
    pub improvement: f64,
}

/// Configuration of the migration controller.
#[derive(Debug, Clone, Copy)]
pub struct MigrationConfig {
    /// Maximum moves per invocation.
    pub max_moves: usize,
    /// Cost charged per move, in violation-extent units; a move is only
    /// taken when its improvement exceeds this (the §5.4 "migration cost
    /// in our objective function").
    pub move_cost: f64,
    /// Objective weights used to value violations.
    pub weights: ObjectiveWeights,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            max_moves: 8,
            move_cost: 0.25,
            weights: ObjectiveWeights::default(),
        }
    }
}

/// Greedy migration controller over the active constraints.
pub struct MigrationController {
    /// Controller configuration.
    pub config: MigrationConfig,
}

impl MigrationController {
    /// Creates a controller with the given configuration.
    pub fn new(config: MigrationConfig) -> Self {
        MigrationController { config }
    }

    /// Runs migration rounds on the cluster: repeatedly moves the
    /// violating long-running container whose best relocation yields the
    /// largest net improvement, until no move beats the migration cost or
    /// the budget is exhausted. Returns the applied moves.
    pub fn rebalance(
        &self,
        state: &mut ClusterState,
        constraints: &[PlacementConstraint],
    ) -> Vec<Migration> {
        let scorer = Scorer::new(self.config.weights, constraints.to_vec());
        let mut moves = Vec::new();
        for _ in 0..self.config.max_moves {
            match self.best_move(state, &scorer, constraints) {
                Some(m) => moves.push(m),
                None => break,
            }
        }
        moves
    }

    /// Finds and applies the single best move; `None` if no move beats
    /// the migration cost.
    fn best_move(
        &self,
        state: &mut ClusterState,
        scorer: &Scorer,
        constraints: &[PlacementConstraint],
    ) -> Option<Migration> {
        // Violating LRA containers are the migration candidates.
        let candidates: Vec<ContainerId> = state
            .allocations()
            .filter(|a| a.kind == ExecutionKind::LongRunning)
            .map(|a| a.id)
            .collect();
        let nodes: Vec<NodeId> = state.node_ids().collect();

        let mut best: Option<(ContainerId, NodeId, f64)> = None;
        for cid in candidates {
            let (extent, app, from, request) = {
                let alloc = state.allocation(cid).ok()?;
                let extent: f64 = constraints
                    .iter()
                    .filter(|c| c.subject.matches_allocation(alloc))
                    .filter_map(|c| check_container(state, c, cid).map(|ck| ck.extent * c.weight))
                    .sum();
                (
                    extent,
                    alloc.app,
                    alloc.node,
                    ContainerRequest::new(
                        alloc.resources,
                        alloc.tags.iter().filter(|t| !t.is_app_id()).cloned(),
                    ),
                )
            };
            if extent <= 1e-9 {
                continue; // Not violating: leave it alone.
            }
            // A container stranded on an unavailable node cannot be
            // restored after probing; leave it to the recovery pipeline.
            if !state.is_available(from) {
                continue;
            }
            // Try relocations: remove, score alternatives, restore.
            let removed = state.release(cid).ok()?;
            for &n in &nodes {
                if n == from || !state.is_available(n) {
                    continue;
                }
                let delta = {
                    if !scorer.is_feasible(state, n, &request) {
                        continue;
                    }
                    scorer.violation_delta(state, app, &request, n)
                };
                // Improvement: old extent minus the violation the
                // container would cause at the new node.
                let improvement = extent - delta;
                if improvement > self.config.move_cost
                    && best.is_none_or(|(_, _, bi)| improvement > bi)
                {
                    best = Some((cid, n, improvement));
                }
            }
            // Restore the container where it was. Restoration can only
            // fail if the node changed underneath us (e.g. crashed
            // mid-probe); park the container on any available node that
            // fits rather than panic, dropping it as a move candidate.
            match state.allocate(app, from, &request, ExecutionKind::LongRunning) {
                Ok(restored) => {
                    // Track identity: if this container is the current
                    // best candidate, update its id to the restored one.
                    if let Some((bid, bn, bi)) = best {
                        if bid == cid {
                            best = Some((restored, bn, bi));
                        }
                    }
                }
                Err(_) => {
                    if let Some((bid, _, _)) = best {
                        if bid == cid {
                            best = None;
                        }
                    }
                    let _ = nodes.iter().any(|&n| {
                        state.is_available(n)
                            && state
                                .allocate(app, n, &request, ExecutionKind::LongRunning)
                                .is_ok()
                    });
                }
            }
            let _ = removed;
        }

        let (cid, to, improvement) = best?;
        let alloc = state.release(cid).ok()?;
        let request = ContainerRequest::new(
            alloc.resources,
            alloc.tags.iter().filter(|t| !t.is_app_id()).cloned(),
        );
        let new_id = match state.allocate(alloc.app, to, &request, ExecutionKind::LongRunning) {
            Ok(id) => id,
            Err(_) => {
                // Target changed underneath us: put the container back
                // rather than lose it, and report no move.
                let _ = state.allocate(alloc.app, alloc.node, &request, ExecutionKind::LongRunning);
                return None;
            }
        };
        Some(Migration {
            container: new_id,
            from: alloc.node,
            to,
            improvement,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{ApplicationId, NodeGroupId, Resources, Tag};
    use medea_constraints::{violation_stats, PlacementConstraint};

    fn req(tags: &[&str]) -> ContainerRequest {
        ContainerRequest::new(Resources::new(1024, 1), tags.iter().map(|t| Tag::new(*t)))
    }

    #[test]
    fn migration_repairs_anti_affinity() {
        let mut state = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
        // Two "svc" containers wrongly packed on one node.
        for _ in 0..2 {
            state
                .allocate(
                    ApplicationId(1),
                    NodeId(0),
                    &req(&["svc"]),
                    ExecutionKind::LongRunning,
                )
                .unwrap();
        }
        let caa = PlacementConstraint::anti_affinity("svc", "svc", NodeGroupId::node());
        let before = violation_stats(&state, [&caa]);
        assert_eq!(before.containers_violating, 2);

        let moves = MigrationController::new(MigrationConfig::default())
            .rebalance(&mut state, std::slice::from_ref(&caa));
        assert!(!moves.is_empty());
        let after = violation_stats(&state, [&caa]);
        assert_eq!(after.containers_violating, 0, "migration must repair");
        assert_eq!(state.num_containers(), 2, "no containers lost");
    }

    #[test]
    fn no_moves_when_nothing_violates() {
        let mut state = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
        state
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["a"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        state
            .allocate(
                ApplicationId(1),
                NodeId(1),
                &req(&["a"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let caa = PlacementConstraint::anti_affinity("a", "a", NodeGroupId::node());
        let moves =
            MigrationController::new(MigrationConfig::default()).rebalance(&mut state, &[caa]);
        assert!(moves.is_empty());
    }

    #[test]
    fn move_cost_gates_marginal_moves() {
        let mut state = ClusterState::homogeneous(2, Resources::new(8192, 8), 1);
        for _ in 0..2 {
            state
                .allocate(
                    ApplicationId(1),
                    NodeId(0),
                    &req(&["x"]),
                    ExecutionKind::LongRunning,
                )
                .unwrap();
        }
        let caa = PlacementConstraint::anti_affinity("x", "x", NodeGroupId::node());
        // A prohibitive move cost suppresses migration entirely.
        let config = MigrationConfig {
            move_cost: 100.0,
            ..MigrationConfig::default()
        };
        let moves = MigrationController::new(config).rebalance(&mut state, &[caa]);
        assert!(moves.is_empty());
    }

    #[test]
    fn budget_limits_moves() {
        let mut state = ClusterState::homogeneous(8, Resources::new(8192, 8), 2);
        for _ in 0..6 {
            state
                .allocate(
                    ApplicationId(1),
                    NodeId(0),
                    &req(&["y"]),
                    ExecutionKind::LongRunning,
                )
                .unwrap();
        }
        let caa = PlacementConstraint::anti_affinity("y", "y", NodeGroupId::node());
        let config = MigrationConfig {
            max_moves: 2,
            ..MigrationConfig::default()
        };
        let moves = MigrationController::new(config).rebalance(&mut state, &[caa]);
        assert!(moves.len() <= 2);
    }

    #[test]
    fn migration_respects_capacity() {
        // The only alternative node is full: no move possible.
        let mut state = ClusterState::homogeneous(2, Resources::new(2048, 2), 1);
        for _ in 0..2 {
            state
                .allocate(
                    ApplicationId(1),
                    NodeId(0),
                    &req(&["z"]),
                    ExecutionKind::LongRunning,
                )
                .unwrap();
        }
        state
            .allocate(
                ApplicationId(2),
                NodeId(1),
                &ContainerRequest::new(Resources::new(2048, 2), []),
                ExecutionKind::Task,
            )
            .unwrap();
        let caa = PlacementConstraint::anti_affinity("z", "z", NodeGroupId::node());
        let moves =
            MigrationController::new(MigrationConfig::default()).rebalance(&mut state, &[caa]);
        assert!(moves.is_empty());
        assert_eq!(state.num_containers(), 3);
    }
}
