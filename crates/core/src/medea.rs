//! The Medea scheduler: two-scheduler integration (§3, Fig. 4).
//!
//! LRAs are queued and placed in batches by the [`LraScheduler`] at
//! regular scheduling intervals; placement *decisions* are then committed
//! through the allocation path shared with the [`TaskScheduler`], which is
//! how Medea avoids conflicting placements: only one component performs
//! actual allocations. If the cluster state changed between placement and
//! commit (task containers grabbed the resources), the commit fails and
//! the LRA is **resubmitted** to the next interval — the §5.4 conflict
//! policy.
//!
//! On top of the two schedulers sits the recovery pipeline (§2.3, §7.3):
//! [`MedeaScheduler::node_lost`] releases every allocation on a crashed
//! node, repairs task-queue accounting, and re-enqueues the lost LRA
//! containers as recovery requests that carry a soft anti-affinity to the
//! failing fault domain. Recovery retries use exponential backoff with a
//! bounded attempt budget, and a [`CircuitBreaker`] degrades ILP
//! scheduling to the node-candidates heuristic after repeated solver
//! deadline/stall outcomes.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use medea_cluster::{
    ApplicationId, ClusterSnapshot, ClusterState, ContainerId, ExecutionKind, IndexConfig,
    NodeGroupId, NodeId, RestoreError, ShardConfig, ShardPlan,
};
use medea_constraints::{ConstraintError, ConstraintManager, PlacementConstraint, TagExpr};
use medea_journal::{JournalError, Wal};
use medea_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::ilp::{IlpBasisCache, IlpSolveStatus};
use crate::lra::{LraAlgorithm, LraScheduler};
use crate::recovery::{fault_domain_tag, CircuitBreaker, NodeLossReport, RecoveryConfig};
use crate::recovery::{BreakerState, RecoveryReport, FAULT_DOMAIN_TAG};
use crate::request::{LraRequest, PlacementOutcome, TaskJobRequest};
use crate::task_scheduler::{TaskAllocation, TaskScheduler, TaskSchedulerError};

/// Pre-resolved `core.*` metric handles: looked up once when a registry
/// is attached, then updated lock-free in the scheduling cycle.
struct CoreMetrics {
    queue_depth: Arc<Gauge>,
    cycle_time_us: Arc<Histogram>,
    place_us: Arc<Histogram>,
    cycles: Arc<Counter>,
    solve_inflight: Arc<Gauge>,
    placement_staleness_ticks: Arc<Histogram>,
    lras_deployed: Arc<Counter>,
    lras_unplaced: Arc<Counter>,
    commit_conflicts: Arc<Counter>,
    lras_dropped: Arc<Counter>,
    recovery_lost: Arc<Counter>,
    recovery_replaced: Arc<Counter>,
    recovery_exhausted: Arc<Counter>,
    recovery_latency_ticks: Arc<Histogram>,
    breaker_opened: Arc<Counter>,
    breaker_closed: Arc<Counter>,
    breaker_state: Arc<Gauge>,
    solver_stalls: Arc<Counter>,
    shards_active: Arc<Gauge>,
    shard_resubmissions: Arc<Counter>,
    shard_solve_us: Arc<Histogram>,
    index_update_ops: Arc<Gauge>,
    index_distinct_tags: Arc<Gauge>,
    index_rebuilds: Arc<Gauge>,
    restarts: Arc<Counter>,
    restart_restore_us: Arc<Histogram>,
    restart_replayed_ops: Arc<Histogram>,
    restart_phantom_released: Arc<Counter>,
    restart_inflight_requeued: Arc<Counter>,
    audit_runs: Arc<Counter>,
    audit_failures: Arc<Counter>,
    journal_appends: Arc<Gauge>,
    journal_bytes: Arc<Gauge>,
    journal_checkpoints: Arc<Gauge>,
}

impl CoreMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        CoreMetrics {
            queue_depth: registry.gauge("core.queue_depth"),
            cycle_time_us: registry.histogram("core.cycle_time_us"),
            place_us: registry.histogram("core.place_us"),
            cycles: registry.counter("core.cycles_total"),
            solve_inflight: registry.gauge("core.solve_inflight"),
            placement_staleness_ticks: registry.histogram("core.placement_staleness_ticks"),
            lras_deployed: registry.counter("core.lras_deployed_total"),
            lras_unplaced: registry.counter("core.lras_unplaced_total"),
            commit_conflicts: registry.counter("core.commit_conflicts_total"),
            lras_dropped: registry.counter("core.lras_dropped_total"),
            recovery_lost: registry.counter("core.recovery_containers_lost_total"),
            recovery_replaced: registry.counter("core.recovery_replaced_total"),
            recovery_exhausted: registry.counter("core.recovery_retry_exhausted_total"),
            recovery_latency_ticks: registry.histogram("core.recovery_latency_ticks"),
            breaker_opened: registry.counter("core.breaker_opened_total"),
            breaker_closed: registry.counter("core.breaker_closed_total"),
            breaker_state: registry.gauge("core.breaker_state"),
            solver_stalls: registry.counter("core.solver_stalls_total"),
            shards_active: registry.gauge("core.shards_active"),
            shard_resubmissions: registry.counter("core.shard_resubmissions_total"),
            shard_solve_us: registry.histogram("core.shard_solve_us"),
            index_update_ops: registry.gauge("cluster.index_update_ops"),
            index_distinct_tags: registry.gauge("cluster.index_distinct_tags"),
            index_rebuilds: registry.gauge("cluster.index_rebuilds"),
            restarts: registry.counter("core.restart_total"),
            restart_restore_us: registry.histogram("core.restart_restore_us"),
            restart_replayed_ops: registry.histogram("core.restart_replayed_ops"),
            restart_phantom_released: registry.counter("core.restart_phantom_released_total"),
            restart_inflight_requeued: registry.counter("core.restart_inflight_requeued_total"),
            audit_runs: registry.counter("core.audit_runs_total"),
            audit_failures: registry.counter("core.audit_failures_total"),
            journal_appends: registry.gauge("journal.appends"),
            journal_bytes: registry.gauge("journal.bytes"),
            journal_checkpoints: registry.gauge("journal.checkpoints"),
        }
    }
}

/// A pending LRA with submission metadata.
#[derive(Debug, Clone)]
struct PendingLra {
    request: LraRequest,
    submitted_at: u64,
    attempts: u32,
    /// Earliest tick this entry may be scheduled (recovery backoff).
    not_before: u64,
    /// Whether this request re-places containers lost to a node crash.
    is_recovery: bool,
}

/// A node's view of its own allocations, gathered when nodes re-register
/// with a restarted resource manager (the anti-entropy input of
/// [`MedeaScheduler::restart`]). Mirrors YARN's NM re-registration: the
/// node reports which containers it is actually running, and the RM
/// reconciles journal-derived state against that ground truth.
#[derive(Debug, Clone)]
pub struct NodeReport {
    /// The reporting node.
    pub node: NodeId,
    /// Whether the node is up. An unavailable node still re-registers
    /// (e.g. draining) but its containers are treated as lost.
    pub available: bool,
    /// Containers the node is actually hosting.
    pub containers: Vec<ContainerId>,
}

/// What one work-preserving restart did: how state was rebuilt, what the
/// anti-entropy pass repaired, and whether the post-restart invariant
/// audit passed. Returned by [`MedeaScheduler::restart`].
#[derive(Debug, Clone, Default)]
pub struct RestartReport {
    /// Whether cluster state was rebuilt from checkpoint + journal tail
    /// (`false`: no journal attached, the in-memory state was kept and
    /// only reconciled against node reports).
    pub restored_from_journal: bool,
    /// Journal records replayed on top of the checkpoint.
    pub replayed_ops: usize,
    /// Wall-clock microseconds spent loading + replaying the journal.
    pub restore_us: u64,
    /// In-flight solves discarded (their results never commit).
    pub inflight_solves_dropped: usize,
    /// LRA batch entries from dropped solves re-entered into the pending
    /// queue as §5.4 resubmissions.
    pub inflight_lras_requeued: usize,
    /// Containers present in journal-derived state but absent from the
    /// owning node's report (lost during the outage): released.
    pub phantom_containers_released: usize,
    /// Phantom LRA containers routed through the recovery pipeline.
    pub lost_lra_containers: usize,
    /// Phantom task containers returned to their queues' accounting.
    pub lost_task_containers: usize,
    /// Containers reported by nodes that journal-derived state does not
    /// know (should not happen when the journal is intact; counted, not
    /// adopted).
    pub unknown_containers_reported: usize,
    /// Nodes that failed to re-register (absent from `reports`) or
    /// re-registered unavailable: routed through
    /// [`MedeaScheduler::node_lost`].
    pub nodes_marked_lost: usize,
    /// Error from the post-reconciliation invariant audit, if it failed.
    pub audit_error: Option<String>,
}

/// Where a batch entry's constraint footprint routes it during a sharded
/// round (see [`MedeaScheduler::propose_all`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryRoute {
    /// All affinity targets live in one shard: solve there.
    Pinned(usize),
    /// No footprint: any shard works; spread round-robin.
    Any,
    /// Constraints straddle shards: solve over the full node set.
    Residual,
}

/// Result of one committed LRA placement.
#[derive(Debug, Clone)]
pub struct LraDeployment {
    /// The application deployed.
    pub app: ApplicationId,
    /// Allocated containers (same order as the request's containers).
    pub containers: Vec<ContainerId>,
    /// Nodes per container.
    pub nodes: Vec<NodeId>,
    /// Scheduling latency in ticks (commit time − submission time).
    pub latency_ticks: u64,
    /// Wall-clock time the placement algorithm spent on the batch that
    /// contained this LRA.
    pub algorithm_time: std::time::Duration,
    /// Whether these containers re-place ones lost to a node crash.
    pub recovered: bool,
}

/// An in-flight LRA solve: the output of [`MedeaScheduler::propose`],
/// consumed by [`MedeaScheduler::commit`].
///
/// Holds the batch that was solved, the placements the algorithm proposed
/// against a [`medea_cluster::ClusterSnapshot`] of the cluster, and the
/// per-entry *violation baseline* — the number of violated constraint
/// checks each placement had on the snapshot itself. At commit time the
/// same count is re-evaluated on live state: a higher count means the
/// cluster drifted under the solve (γ-cardinality drift) and the entry is
/// conflicted rather than committed.
///
/// One *round* may be in flight per scheduler, holding one solve
/// ([`MedeaScheduler::propose`]) or — with sharding enabled — one solve
/// per active shard plus an optional cross-shard residual
/// ([`MedeaScheduler::propose_all`]); new rounds are refused while any of
/// them is uncommitted. Dropping an `InflightSolve` without committing it
/// loses the batch; always hand it back via [`MedeaScheduler::commit`].
#[derive(Debug)]
pub struct InflightSolve {
    /// Round-unique solve id; keys the scheduler-side copy of the batch
    /// so [`MedeaScheduler::restart`] can requeue batches whose solves
    /// were lost with the process.
    id: u64,
    batch: Vec<PendingLra>,
    outcomes: Vec<PlacementOutcome>,
    /// Violated-check count per batch entry on the snapshot right after
    /// its own placement was applied (`None` for unplaced entries or
    /// placements the snapshot itself rejected — those skip the γ-drift
    /// comparison; the live allocation still validates capacity).
    baselines: Vec<Option<usize>>,
    /// Constraints of already-deployed LRAs + operator at propose time.
    deployed_constraints: Vec<PlacementConstraint>,
    snapshot_epoch: u64,
    proposed_at: u64,
    algorithm_time: std::time::Duration,
    lras: usize,
    containers: usize,
    recovery_containers: usize,
    /// The shard this solve was restricted to; `None` for an unsharded
    /// solve or the cross-shard residual of a sharded round.
    shard: Option<usize>,
    /// Whether this solve belongs to a sharded round (conflicts then
    /// count toward `core.shard_resubmissions_total`).
    sharded: bool,
}

impl InflightSolve {
    /// Round-unique identifier of this solve.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Tick the batch was proposed at.
    pub fn proposed_at(&self) -> u64 {
        self.proposed_at
    }

    /// Cluster mutation epoch of the snapshot the solve ran against.
    pub fn snapshot_epoch(&self) -> u64 {
        self.snapshot_epoch
    }

    /// Wall-clock time the placement algorithm spent on the batch.
    pub fn algorithm_time(&self) -> std::time::Duration {
        self.algorithm_time
    }

    /// Number of LRAs in the solved batch.
    pub fn lras(&self) -> usize {
        self.lras
    }

    /// Total containers requested by the solved batch.
    pub fn containers(&self) -> usize {
        self.containers
    }

    /// The shard this solve was restricted to (`None`: unsharded, or the
    /// cross-shard residual solve of a sharded round).
    pub fn shard(&self) -> Option<usize> {
        self.shard
    }

    /// The proposed (not yet committed) placements: `(app, nodes)` per
    /// placed batch entry, in batch order.
    pub fn placements(&self) -> Vec<(ApplicationId, Vec<NodeId>)> {
        self.batch
            .iter()
            .zip(&self.outcomes)
            .filter_map(|(p, o)| o.placement().map(|pl| (p.request.app, pl.nodes.clone())))
            .collect()
    }
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Default)]
pub struct MedeaStats {
    /// LRAs successfully deployed.
    pub lras_deployed: usize,
    /// LRA placement attempts that found no placement (resubmitted).
    pub lras_unplaced: usize,
    /// Commit conflicts (placement invalidated by concurrent allocations).
    pub commit_conflicts: usize,
    /// LRAs dropped after exhausting resubmission attempts.
    pub lras_dropped: usize,
    /// Scheduling-interval invocations.
    pub cycles: usize,
    /// Commit conflicts of sharded rounds (the subset of
    /// `commit_conflicts` attributable to cross-shard reconciliation).
    pub shard_resubmissions: usize,
}

/// The Medea resource-manager extension: LRA queue + two schedulers over
/// one cluster state.
///
/// # Examples
///
/// ```
/// use medea_core::{MedeaScheduler, LraAlgorithm, LraRequest};
/// use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
///
/// let cluster = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
/// let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::Ilp, 10);
/// let req = LraRequest::uniform(
///     ApplicationId(1), 2, Resources::new(1024, 1), vec![Tag::new("svc")], vec![]);
/// medea.submit_lra(req, 0).unwrap();
/// let deployed = medea.tick(10); // scheduling interval reached
/// assert_eq!(deployed.len(), 1);
/// ```
pub struct MedeaScheduler {
    state: ClusterState,
    constraint_manager: ConstraintManager,
    lra_scheduler: LraScheduler,
    task_scheduler: TaskScheduler,
    pending: VecDeque<PendingLra>,
    /// Scheduling interval in ticks (§5.1; 10 s in the evaluation).
    pub interval: u64,
    next_run: u64,
    /// Maximum resubmission attempts before an LRA is dropped.
    pub max_attempts: u32,
    /// Recovery retry/backoff policy and breaker thresholds.
    pub recovery: RecoveryConfig,
    breaker: CircuitBreaker,
    /// Scheduling cycles the ILP is forced to degrade (injected stall).
    stall_cycles_remaining: u32,
    /// Crashed node → fault-domain members marked with the
    /// [`FAULT_DOMAIN_TAG`] on its behalf (unmarked on recovery).
    fault_marks: HashMap<NodeId, Vec<NodeId>>,
    recovery_lost: usize,
    recovery_replaced: usize,
    recovery_unplaceable: usize,
    unplaceable_by_app: HashMap<ApplicationId, usize>,
    /// Sharded-solving configuration (disabled by default: one
    /// monolithic solve per round).
    shard: ShardConfig,
    /// Per-shard ILP warm-basis caches, grown on demand: a shard's basis
    /// never matches another shard's constraint skeleton, so sharing the
    /// scheduler's single-slot cache across shards would thrash it.
    shard_caches: Vec<Arc<IlpBasisCache>>,
    /// Solves currently in flight: 0 or 1 unsharded; up to one per shard
    /// plus a residual during a sharded round. New rounds are gated on
    /// this reaching 0.
    inflight: usize,
    /// Recovery containers inside the in-flight batch; counted as pending
    /// by [`MedeaScheduler::recovery_report`] so the lost = replaced +
    /// unplaceable + pending invariant holds mid-solve.
    inflight_recovery_containers: usize,
    /// Monotonic solve-id source for [`InflightSolve::id`].
    solve_seq: u64,
    /// Scheduler-side copies of in-flight batches, keyed by solve id
    /// (ordered so restart requeues deterministically). An entry lives
    /// from propose to commit; [`MedeaScheduler::restart`] drains
    /// whatever is left — those solves died with the process and their
    /// LRAs re-enter the queue as §5.4 resubmissions.
    inflight_batches: BTreeMap<u64, Vec<PendingLra>>,
    /// Durability: the write-ahead journal shared with the cluster state
    /// (`None` until [`MedeaScheduler::attach_journal`]).
    journal: Option<Arc<Mutex<Wal>>>,
    /// Ticks between periodic checkpoints (0 disables the cadence; the
    /// initial checkpoint at attach time still happens).
    checkpoint_interval: u64,
    next_checkpoint: u64,
    /// Scheduling cycles between periodic invariant audits (0 disables;
    /// restart always audits).
    pub audit_interval: u64,
    cycles_since_audit: u64,
    stats: MedeaStats,
    metrics: Option<CoreMetrics>,
}

impl MedeaScheduler {
    /// Creates a scheduler over the given cluster with a single task queue.
    pub fn new(state: ClusterState, algorithm: LraAlgorithm, interval: u64) -> Self {
        let recovery = RecoveryConfig::default();
        MedeaScheduler {
            state,
            constraint_manager: ConstraintManager::new(),
            lra_scheduler: LraScheduler::new(algorithm),
            task_scheduler: TaskScheduler::single_queue(),
            pending: VecDeque::new(),
            interval,
            next_run: 0,
            max_attempts: 5,
            recovery,
            breaker: CircuitBreaker::new(
                recovery.breaker_failure_threshold,
                recovery.breaker_open_cycles,
            ),
            stall_cycles_remaining: 0,
            fault_marks: HashMap::new(),
            recovery_lost: 0,
            recovery_replaced: 0,
            recovery_unplaceable: 0,
            unplaceable_by_app: HashMap::new(),
            shard: ShardConfig::disabled(),
            shard_caches: Vec::new(),
            inflight: 0,
            inflight_recovery_containers: 0,
            solve_seq: 0,
            inflight_batches: BTreeMap::new(),
            journal: None,
            checkpoint_interval: 0,
            next_checkpoint: 0,
            audit_interval: 0,
            cycles_since_audit: 0,
            stats: MedeaStats::default(),
            metrics: None,
        }
    }

    /// Replaces the task scheduler (custom queues).
    pub fn with_task_scheduler(mut self, ts: TaskScheduler) -> Self {
        self.task_scheduler = ts;
        self
    }

    /// Enables (or reconfigures) sharded solving: each round partitions
    /// the cluster along rack/service-unit boundaries and runs one
    /// restricted solve per shard (see [`MedeaScheduler::propose_all`]).
    /// Builder form of [`MedeaScheduler::set_sharding`].
    pub fn with_sharding(mut self, config: ShardConfig) -> Self {
        self.set_sharding(config);
        self
    }

    /// Enables (or reconfigures) sharded solving (see
    /// [`MedeaScheduler::with_sharding`]).
    pub fn set_sharding(&mut self, config: ShardConfig) {
        self.shard = config;
    }

    /// The current sharded-solving configuration.
    pub fn sharding(&self) -> &ShardConfig {
        &self.shard
    }

    /// Replaces the recovery policy (and resets the circuit breaker to
    /// the new thresholds).
    pub fn with_recovery(mut self, config: RecoveryConfig) -> Self {
        self.recovery = config;
        self.breaker =
            CircuitBreaker::new(config.breaker_failure_threshold, config.breaker_open_cycles);
        self
    }

    /// Attaches a metrics registry to every layer this scheduler drives:
    /// the scheduling cycle (`core.*`), the ILP solver bridge
    /// (`solver.*`, `core.ilp_solve_us`), and the task scheduler
    /// (`task.*`). Builder form of [`MedeaScheduler::set_metrics`].
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.set_metrics(registry);
        self
    }

    /// Attaches a metrics registry (see [`MedeaScheduler::with_metrics`]).
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(CoreMetrics::new(&registry));
        self.lra_scheduler.ilp.metrics = Some(Arc::clone(&registry));
        self.task_scheduler.set_metrics(&registry);
    }

    /// Access to the live cluster state.
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// Mutable access to the live cluster state (failure injection).
    pub fn state_mut(&mut self) -> &mut ClusterState {
        &mut self.state
    }

    /// Access to the constraint manager.
    pub fn constraint_manager(&self) -> &ConstraintManager {
        &self.constraint_manager
    }

    /// Access to the LRA scheduler configuration.
    pub fn lra_scheduler_mut(&mut self) -> &mut LraScheduler {
        &mut self.lra_scheduler
    }

    /// Scheduling statistics so far.
    pub fn stats(&self) -> &MedeaStats {
        &self.stats
    }

    /// Number of LRAs waiting for the next scheduling interval.
    pub fn pending_lras(&self) -> usize {
        self.pending.len()
    }

    /// Submits an LRA: validates and registers its constraints with the
    /// constraint manager, then queues it for the next interval (life
    /// cycle steps 1–2 of Fig. 6).
    pub fn submit_lra(&mut self, request: LraRequest, now: u64) -> Result<(), ConstraintError> {
        self.constraint_manager.register_app(
            request.app,
            request.constraints.clone(),
            self.state.groups(),
        )?;
        self.pending.push_back(PendingLra {
            request,
            submitted_at: now,
            attempts: 0,
            not_before: now,
            is_recovery: false,
        });
        Ok(())
    }

    /// Submits a task-based job straight to the task scheduler (the
    /// two-scheduler routing: no constraints, no LRA queue).
    pub fn submit_tasks(
        &mut self,
        job: TaskJobRequest,
        now: u64,
    ) -> Result<(), TaskSchedulerError> {
        self.task_scheduler.submit(job, now)
    }

    /// Node heartbeat: task-container allocation (R4 path).
    pub fn heartbeat(&mut self, node: NodeId, now: u64) -> Vec<TaskAllocation> {
        self.task_scheduler.on_heartbeat(&mut self.state, node, now)
    }

    /// Completes a task container.
    pub fn complete_task(&mut self, queue: &str, container: ContainerId) {
        let _ = self
            .task_scheduler
            .complete(&mut self.state, queue, container);
    }

    /// Completes (tears down) an entire LRA, releasing containers and
    /// removing its constraints.
    pub fn complete_lra(&mut self, app: ApplicationId) {
        self.state.release_app(app);
        self.constraint_manager.remove_app(app);
    }

    /// Current circuit-breaker state (ILP degradation protection).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// Cumulative recovery accounting: every container killed by
    /// [`MedeaScheduler::node_lost`] is replaced, explicitly unplaceable,
    /// or still pending — never silently lost.
    pub fn recovery_report(&self) -> RecoveryReport {
        // Recovery containers inside an in-flight solve are neither
        // replaced nor queued yet — they count as pending until commit.
        let pending: usize = self
            .pending
            .iter()
            .filter(|p| p.is_recovery)
            .map(|p| p.request.num_containers())
            .sum::<usize>()
            + self.inflight_recovery_containers;
        let mut by_app: Vec<(ApplicationId, usize)> = self
            .unplaceable_by_app
            .iter()
            .map(|(&a, &n)| (a, n))
            .collect();
        by_app.sort_by_key(|&(a, _)| a);
        RecoveryReport {
            containers_lost: self.recovery_lost,
            containers_replaced: self.recovery_replaced,
            containers_unplaceable: self.recovery_unplaceable,
            containers_pending: pending,
            unplaceable_by_app: by_app,
        }
    }

    /// Handles the loss of a node (crash semantics): marks it
    /// unavailable, releases every allocation it hosted, repairs task
    /// queue accounting, and re-enqueues the lost LRA containers as
    /// recovery requests carrying a soft anti-affinity to the failing
    /// fault domain (service unit, falling back to rack, then the node
    /// itself). Idempotent: reporting an already-lost node is a no-op.
    pub fn node_lost(&mut self, node: NodeId, now: u64) -> NodeLossReport {
        if !self.state.is_available(node) {
            return NodeLossReport::default();
        }
        let _ = self.state.set_available(node, false);
        let released = self.state.release_node(node).unwrap_or_default();

        let mut report = NodeLossReport::default();
        // Group lost LRA containers per app, preserving each container's
        // own resources and tags (minus the auto-added appid tag, which
        // re-allocation re-adds).
        let mut lost_by_app: HashMap<ApplicationId, Vec<medea_cluster::ContainerRequest>> =
            HashMap::new();
        for alloc in &released {
            match alloc.kind {
                ExecutionKind::Task => {
                    report.task_containers_lost += 1;
                    self.task_scheduler.on_container_lost(alloc);
                }
                ExecutionKind::LongRunning => {
                    report.lra_containers_lost += 1;
                    lost_by_app.entry(alloc.app).or_default().push(
                        medea_cluster::ContainerRequest::new(
                            alloc.resources,
                            alloc.tags.iter().filter(|t| !t.is_app_id()).cloned(),
                        ),
                    );
                }
            }
        }

        self.mark_fault_domain(node);

        let mut apps: Vec<ApplicationId> = lost_by_app.keys().copied().collect();
        apps.sort();
        for app in apps {
            let containers = lost_by_app.remove(&app).unwrap_or_default();
            report.apps_affected.push((app, containers.len()));
            // The app's own constraints still apply to the replacements;
            // they are attached to the request because the batch filter
            // in tick() excludes in-batch apps from the deployed set.
            let mut constraints = self.constraint_manager.app_constraints(app);
            constraints.push(
                PlacementConstraint::anti_affinity(
                    TagExpr::and([medea_cluster::Tag::app_id(app)]),
                    FAULT_DOMAIN_TAG,
                    NodeGroupId::node(),
                )
                .with_weight(2.0),
            );
            self.pending.push_back(PendingLra {
                request: LraRequest::new(app, containers, constraints),
                submitted_at: now,
                attempts: 0,
                not_before: now,
                is_recovery: true,
            });
        }

        self.recovery_lost += report.lra_containers_lost;
        if let Some(m) = &self.metrics {
            m.recovery_lost.add(report.lra_containers_lost as u64);
            m.queue_depth.set(self.pending.len() as i64);
        }
        report
    }

    /// Handles the recovery of a previously lost node: marks it available
    /// again and clears the fault-domain marks placed on its behalf.
    pub fn node_recovered(&mut self, node: NodeId) {
        let _ = self.state.set_available(node, true);
        if let Some(members) = self.fault_marks.remove(&node) {
            let tag = fault_domain_tag();
            for member in members {
                let _ = self.state.remove_node_tag(member, &tag);
            }
        }
    }

    /// Attaches a write-ahead journal: installs an initial checkpoint of
    /// the current cluster state, then hooks the WAL into the state's
    /// mutation path so every subsequent place/release/retag/crash/
    /// recover is logged. `checkpoint_interval` is the tick cadence of
    /// periodic re-checkpoints (0: only the initial one).
    ///
    /// The checkpoint is installed *before* the hook goes live, so the
    /// log tail strictly follows the checkpoint epoch — restore never
    /// sees a record it cannot order.
    pub fn attach_journal(
        &mut self,
        mut wal: Wal,
        checkpoint_interval: u64,
    ) -> Result<(), JournalError> {
        wal.install_checkpoint(&self.state.checkpoint_doc())?;
        let wal = Arc::new(Mutex::new(wal));
        self.state.attach_wal(Arc::clone(&wal));
        self.journal = Some(wal);
        self.checkpoint_interval = checkpoint_interval;
        self.next_checkpoint = checkpoint_interval;
        self.publish_journal_gauges();
        Ok(())
    }

    /// Whether a journal is attached.
    pub fn journal_attached(&self) -> bool {
        self.journal.is_some()
    }

    /// Cumulative journal I/O statistics (zeros when no journal is
    /// attached).
    pub fn journal_stats(&self) -> medea_journal::JournalStats {
        self.journal
            .as_ref()
            .map(|w| Self::lock_wal(w).stats())
            .unwrap_or_default()
    }

    fn lock_wal(wal: &Arc<Mutex<Wal>>) -> std::sync::MutexGuard<'_, Wal> {
        // A poisoned journal mutex means a panic mid-append; the WAL's
        // own framing makes a torn line detectable at restore, so
        // continuing here is safe.
        wal.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Installs a checkpoint of the current cluster state, truncating
    /// the replay tail. The document is serialized from a
    /// [`ClusterSnapshot`] — the same frozen view the solve pipeline
    /// uses — so checkpointing composes with in-flight solves. No-op
    /// without a journal.
    pub fn checkpoint(&mut self, now: u64) -> Result<(), JournalError> {
        let Some(wal) = self.journal.as_ref().map(Arc::clone) else {
            return Ok(());
        };
        let snap = self.state.snapshot();
        let doc = snap.state().checkpoint_doc();
        Self::lock_wal(&wal).install_checkpoint(&doc)?;
        self.next_checkpoint = now.saturating_add(self.checkpoint_interval.max(1));
        self.publish_journal_gauges();
        Ok(())
    }

    fn maybe_checkpoint(&mut self, now: u64) {
        if self.journal.is_some() && self.checkpoint_interval > 0 && now >= self.next_checkpoint {
            // Best effort on the periodic path: a failed checkpoint
            // leaves the longer replay tail in place, which restore
            // handles; the failure is visible in the journal stats.
            let _ = self.checkpoint(now);
        }
    }

    fn publish_journal_gauges(&self) {
        if let (Some(m), Some(wal)) = (&self.metrics, &self.journal) {
            let s = Self::lock_wal(wal).stats();
            m.journal_appends.set(s.records_appended as i64);
            m.journal_bytes.set(s.bytes_appended as i64);
            m.journal_checkpoints.set(s.checkpoints_installed as i64);
        }
    }

    /// Cross-checks scheduler-visible invariants: the tag index and γ
    /// caches agree with ground-truth state, and allocation bookkeeping
    /// (node container lists, per-app lists, free-capacity arithmetic)
    /// is internally consistent.
    pub fn audit(&self) -> Result<(), String> {
        self.state.check_index_consistency()?;
        self.state.check_allocation_consistency()
    }

    fn run_audit(&mut self) -> Option<String> {
        let err = self.audit().err();
        if let Some(m) = &self.metrics {
            m.audit_runs.inc();
            if err.is_some() {
                m.audit_failures.inc();
            }
        }
        err
    }

    /// Work-preserving restart after a resource-manager crash (the RM
    /// failover path; YARN's work-preserving recovery, adapted to the
    /// two-scheduler design):
    ///
    /// 1. **Drop volatile state.** Every in-flight solve died with the
    ///    process; their batches re-enter the pending queue through the
    ///    §5.4 resubmission path (attempt budgets still apply).
    /// 2. **Rebuild durable state.** With a journal attached, the live
    ///    [`ClusterState`] is discarded and rebuilt from the latest
    ///    checkpoint plus the journal tail; the tag index and γ caches
    ///    are rebuilt from scratch, never copied.
    /// 3. **Anti-entropy reconciliation.** Journal-derived state is
    ///    diffed against what re-registering nodes actually report:
    ///    phantom containers (in state, not on the node — lost during
    ///    the outage) are released and, for LRAs, routed through the
    ///    recovery pipeline with the usual fault-domain anti-affinity;
    ///    nodes that do not re-register (or report unavailable) go
    ///    through [`MedeaScheduler::node_lost`]; nodes that report
    ///    healthy after a journaled crash are brought back.
    /// 4. **Audit.** The state↔index↔γ invariants are verified; a
    ///    failure is reported (and counted) rather than panicking.
    ///
    /// The recovery ledger survives the restart: every container lost
    /// across the boundary stays accounted as
    /// `lost = replaced + unplaceable + pending`.
    ///
    /// In-memory submission-side state (pending queue, registered
    /// constraints, fault-domain marks) deliberately survives in memory:
    /// Medea models the YARN pattern where application masters re-submit
    /// outstanding asks on re-registration, so only *cluster* state is
    /// journal-derived.
    pub fn restart(
        &mut self,
        now: u64,
        reports: &[NodeReport],
    ) -> Result<RestartReport, RestoreError> {
        // Phase 1: volatile state. Any solve still out there belongs to
        // the previous incarnation; results handed to `commit` later
        // would double-count, so the inflight gate is cleared and the
        // batches are requeued.
        let mut report = RestartReport {
            inflight_solves_dropped: self.inflight,
            ..RestartReport::default()
        };
        self.inflight = 0;
        self.inflight_recovery_containers = 0;
        let dropped: Vec<Vec<PendingLra>> = std::mem::take(&mut self.inflight_batches)
            .into_values()
            .collect();
        for batch in dropped {
            for entry in batch {
                report.inflight_lras_requeued += 1;
                self.resubmit(entry, now);
            }
        }

        // Phase 2: durable state.
        if let Some(wal) = self.journal.as_ref().map(Arc::clone) {
            let t0 = Instant::now();
            let (mut restored, replayed) = {
                let guard = Self::lock_wal(&wal);
                ClusterState::restore_from_wal(&guard)?
            };
            report.restore_us = t0.elapsed().as_micros() as u64;
            report.replayed_ops = replayed;
            report.restored_from_journal = true;
            // The index configuration is operator state, not cluster
            // state: carry the live setting over to the rebuilt state.
            if restored.index_enabled() != self.state.index_enabled() {
                restored.set_index_config(if self.state.index_enabled() {
                    IndexConfig::enabled()
                } else {
                    IndexConfig::disabled()
                });
            }
            restored.attach_wal(wal);
            self.state = restored;
        }

        // Phase 3: anti-entropy against node reports.
        let reported: HashMap<NodeId, &NodeReport> = reports.iter().map(|r| (r.node, r)).collect();
        let all_nodes: Vec<NodeId> = self.state.node_ids().collect();
        let mut lost_by_app: HashMap<ApplicationId, Vec<medea_cluster::ContainerRequest>> =
            HashMap::new();
        for node in all_nodes {
            match reported.get(&node) {
                Some(r) if r.available => {
                    if !self.state.is_available(node) {
                        // Crashed before the outage, healthy now: same
                        // path as a live recovery heartbeat (also clears
                        // the fault-domain marks placed on its behalf).
                        self.node_recovered(node);
                    }
                    let actual: HashSet<ContainerId> = r.containers.iter().copied().collect();
                    let believed: Vec<ContainerId> = self
                        .state
                        .containers_on(node)
                        .map(|c| c.to_vec())
                        .unwrap_or_default();
                    for id in &r.containers {
                        let known = self
                            .state
                            .allocation(*id)
                            .map(|a| a.node == node)
                            .unwrap_or(false);
                        if !known {
                            report.unknown_containers_reported += 1;
                        }
                    }
                    for id in believed {
                        if actual.contains(&id) {
                            continue;
                        }
                        // Phantom: the journal says it exists, the node
                        // says it does not. The node wins.
                        let Ok(alloc) = self.state.allocation(id).cloned() else {
                            continue;
                        };
                        if self.state.release(id).is_err() {
                            continue;
                        }
                        report.phantom_containers_released += 1;
                        match alloc.kind {
                            ExecutionKind::Task => {
                                report.lost_task_containers += 1;
                                self.task_scheduler.on_container_lost(&alloc);
                            }
                            ExecutionKind::LongRunning => {
                                report.lost_lra_containers += 1;
                                lost_by_app.entry(alloc.app).or_default().push(
                                    medea_cluster::ContainerRequest::new(
                                        alloc.resources,
                                        alloc.tags.iter().filter(|t| !t.is_app_id()).cloned(),
                                    ),
                                );
                            }
                        }
                    }
                }
                _ => {
                    // Silent (no re-registration) or explicitly down:
                    // full node-loss semantics, idempotent if the
                    // journal already recorded the crash.
                    if self.state.is_available(node) {
                        report.nodes_marked_lost += 1;
                        self.node_lost(node, now);
                    }
                }
            }
        }
        // Route phantom LRA losses through the recovery pipeline. Unlike
        // node_lost, the hosting node is *up* — the containers just died
        // with the outage — so no fault-domain marking; the soft
        // anti-affinity still steers replacements off marked domains.
        let mut apps: Vec<ApplicationId> = lost_by_app.keys().copied().collect();
        apps.sort();
        for app in apps {
            let containers = lost_by_app.remove(&app).unwrap_or_default();
            let n = containers.len();
            let mut constraints = self.constraint_manager.app_constraints(app);
            constraints.push(
                PlacementConstraint::anti_affinity(
                    TagExpr::and([medea_cluster::Tag::app_id(app)]),
                    FAULT_DOMAIN_TAG,
                    NodeGroupId::node(),
                )
                .with_weight(2.0),
            );
            self.pending.push_back(PendingLra {
                request: LraRequest::new(app, containers, constraints),
                submitted_at: now,
                attempts: 0,
                not_before: now,
                is_recovery: true,
            });
            self.recovery_lost += n;
            if let Some(m) = &self.metrics {
                m.recovery_lost.add(n as u64);
            }
        }

        // Phase 4: invariants + metrics.
        report.audit_error = self.run_audit();
        if let Some(m) = &self.metrics {
            m.restarts.inc();
            m.restart_restore_us.record(report.restore_us);
            m.restart_replayed_ops.record(report.replayed_ops as u64);
            m.restart_phantom_released
                .add(report.phantom_containers_released as u64);
            m.restart_inflight_requeued
                .add(report.inflight_lras_requeued as u64);
            m.solve_inflight.set(0);
            m.queue_depth.set(self.pending.len() as i64);
        }
        self.publish_journal_gauges();
        Ok(report)
    }

    /// Injects a solver stall: for the next `cycles` scheduling cycles
    /// the ILP path is treated as degraded (counts against the circuit
    /// breaker, placements fall back to the heuristic).
    pub fn inject_solver_stall(&mut self, cycles: u32) {
        self.stall_cycles_remaining = self.stall_cycles_remaining.saturating_add(cycles);
        if let Some(m) = &self.metrics {
            m.solver_stalls.inc();
        }
    }

    /// Marks the crashed node's fault domain — its service unit if one is
    /// registered, else its rack, else the node alone — with the
    /// [`FAULT_DOMAIN_TAG`] so recovery anti-affinity can see it.
    fn mark_fault_domain(&mut self, node: NodeId) {
        let members = {
            let groups = self.state.groups();
            [NodeGroupId::service_unit(), NodeGroupId::rack()]
                .iter()
                .find_map(|g| {
                    let sets = groups.sets_containing(g, node).ok()?;
                    let set = sets.first()?;
                    groups.set_members(g, *set).ok()
                })
                .unwrap_or_else(|| vec![node])
        };
        let tag = fault_domain_tag();
        let mut marked = Vec::with_capacity(members.len());
        for member in members {
            if self.state.add_node_tag(member, tag.clone()).is_ok() {
                marked.push(member);
            }
        }
        self.fault_marks.insert(node, marked);
    }

    /// Advances time: when the scheduling interval is reached, runs the
    /// LRA scheduler on the pending batch and commits the placements.
    ///
    /// Synchronous compatibility path: [`MedeaScheduler::propose`]
    /// followed immediately by [`MedeaScheduler::commit`] at the same
    /// tick, so the solve never observes a stale snapshot. The
    /// asynchronous pipeline calls the two phases itself with simulated
    /// solve latency in between.
    ///
    /// Returns the LRAs deployed in this invocation.
    pub fn tick(&mut self, now: u64) -> Vec<LraDeployment> {
        let solves = self.propose_all(now);
        let mut out = Vec::new();
        for solve in solves {
            out.extend(self.commit(now, solve));
        }
        out
    }

    /// Whether any solve is currently in flight (proposed, not
    /// committed). A sharded round keeps this `true` until every
    /// per-shard solve (and the residual, if any) has been committed.
    pub fn solve_inflight(&self) -> bool {
        self.inflight > 0
    }

    /// Phase 1 of the placement pipeline (§5.3: the LRA scheduler runs
    /// off the critical path): freezes a [`medea_cluster::ClusterSnapshot`]
    /// of the cluster, runs the placement algorithm for the eligible
    /// pending batch against it, and returns the proposal for a later
    /// [`MedeaScheduler::commit`]. The live state is free to mutate —
    /// task containers, crashes, completions — while the solve is
    /// conceptually in flight.
    ///
    /// Returns `None` (without consuming a cycle) when the interval has
    /// not elapsed, the queue is empty or entirely backed off, or a solve
    /// is already in flight. Always produces a single monolithic solve,
    /// regardless of the sharding configuration — sharded rounds go
    /// through [`MedeaScheduler::propose_all`].
    pub fn propose(&mut self, now: u64) -> Option<InflightSolve> {
        self.propose_round(now, false).pop()
    }

    /// Phase 1 of the sharded pipeline: like [`MedeaScheduler::propose`],
    /// but when sharding is enabled the round is split into per-shard
    /// solves. The cluster is partitioned along rack/service-unit
    /// boundaries ([`ShardPlan`]); each batch entry is routed by its
    /// constraint footprint:
    ///
    /// - own constraint over a group that straddles shards → the
    ///   cross-shard **residual** solve (full node set);
    /// - affinity targets carried by nodes of exactly one shard → pinned
    ///   to that shard;
    /// - affinity targets spanning several shards → residual;
    /// - no footprint → round-robin across shards, freest shard first
    ///   (the `ClusterIndex` free-memory ordering).
    ///
    /// Every solve runs against the same snapshot with its baseline
    /// computed on the *pristine* snapshot, so interactions between
    /// shards (e.g. a deployed cardinality constraint spanning two
    /// shards) surface as γ-drift commit conflicts and are reconciled by
    /// the usual §5.4 rollback + resubmission path.
    ///
    /// Returns an empty vector under the same conditions `propose`
    /// returns `None`. Each returned solve must be handed back via
    /// [`MedeaScheduler::commit`]; new rounds are refused until all are.
    pub fn propose_all(&mut self, now: u64) -> Vec<InflightSolve> {
        self.propose_round(now, self.shard.enabled)
    }

    fn propose_round(&mut self, now: u64, sharded: bool) -> Vec<InflightSolve> {
        // Durability cadence runs ahead of the scheduling gates: a quiet
        // queue must not starve checkpoints.
        self.maybe_checkpoint(now);
        if self.inflight > 0 {
            return Vec::new();
        }
        if now < self.next_run || self.pending.is_empty() {
            return Vec::new();
        }
        if self.audit_interval > 0 {
            self.cycles_since_audit += 1;
            if self.cycles_since_audit >= self.audit_interval {
                self.cycles_since_audit = 0;
                self.run_audit();
            }
        }
        // Recovery retries back off between attempts: only entries whose
        // backoff has elapsed join this batch; the rest stay queued. If
        // nothing is eligible the cycle is skipped entirely (next_run is
        // not advanced, so the next tick re-checks).
        let (batch, deferred): (Vec<PendingLra>, Vec<PendingLra>) =
            self.pending.drain(..).partition(|p| p.not_before <= now);
        self.pending = deferred.into();
        if batch.is_empty() {
            return Vec::new();
        }
        self.next_run = now + self.interval;
        self.stats.cycles += 1;
        if let Some(m) = &self.metrics {
            m.cycles.inc();
        }

        // Constraints of deployed LRAs + operator, minus the new batch's
        // own (those travel with the requests).
        let deployed: Vec<PlacementConstraint> = {
            let batch_apps: Vec<ApplicationId> = batch.iter().map(|p| p.request.app).collect();
            self.constraint_manager
                .active_shared()
                .iter()
                .filter(|s| match s.source {
                    medea_constraints::ConstraintSource::Application(a) => !batch_apps.contains(&a),
                    medea_constraints::ConstraintSource::Operator => true,
                })
                .map(|s| s.constraint.clone())
                .collect()
        };

        // One snapshot per round, shared by every sub-solve: solves only
        // read it (their working copies are restricted to shard nodes),
        // and baseline bookkeeping below is undone per sub-batch.
        let mut snapshot = self.state.snapshot();

        let plan = if sharded {
            Some(ShardPlan::build(
                self.state.groups(),
                self.shard.target_shards,
            ))
        } else {
            None
        };

        let mut solves = Vec::new();
        match plan {
            Some(plan) if plan.num_shards() > 1 => {
                let k = plan.num_shards();
                let mut sub: Vec<Vec<PendingLra>> = (0..k).map(|_| Vec::new()).collect();
                let mut residual: Vec<PendingLra> = Vec::new();
                // Round-robin order for footprint-free entries: shards in
                // order of first appearance in the free-memory ordering
                // (freest shard first), so load spreads toward capacity.
                let order = {
                    let mut seen = vec![false; k];
                    let mut ord = Vec::with_capacity(k);
                    for n in self.state.nodes_by_free_memory() {
                        if let Some(s) = plan.shard_of(n) {
                            if !seen[s] {
                                seen[s] = true;
                                ord.push(s);
                            }
                        }
                    }
                    for (s, seen) in seen.iter().enumerate() {
                        if !seen {
                            ord.push(s);
                        }
                    }
                    ord
                };
                let mut rr = 0usize;
                for p in batch {
                    match Self::route_entry(&self.state, &plan, &p.request) {
                        // A pinned shard outside the plan (or an empty
                        // round-robin order) means the plan and the
                        // routing disagree — degrade that entry to the
                        // cross-shard residual instead of panicking
                        // mid-round.
                        EntryRoute::Pinned(s) => match sub.get_mut(s) {
                            Some(bucket) => bucket.push(p),
                            None => residual.push(p),
                        },
                        EntryRoute::Any => {
                            let slot = order
                                .get(rr % order.len().max(1))
                                .and_then(|&s| sub.get_mut(s));
                            match slot {
                                Some(bucket) => {
                                    bucket.push(p);
                                    rr += 1;
                                }
                                None => residual.push(p),
                            }
                        }
                        EntryRoute::Residual => residual.push(p),
                    }
                }
                let mut active = 0i64;
                for (s, sb) in sub.into_iter().enumerate() {
                    if sb.is_empty() {
                        continue;
                    }
                    active += 1;
                    let allowed = plan.nodes(s).to_vec();
                    solves.push(self.solve_sub_batch(
                        now,
                        sb,
                        &deployed,
                        &mut snapshot,
                        Some(s),
                        Some(&allowed),
                        true,
                    ));
                }
                if !residual.is_empty() {
                    solves.push(self.solve_sub_batch(
                        now,
                        residual,
                        &deployed,
                        &mut snapshot,
                        None,
                        None,
                        true,
                    ));
                }
                if let Some(m) = &self.metrics {
                    m.shards_active.set(active);
                }
            }
            _ => {
                solves.push(self.solve_sub_batch(
                    now,
                    batch,
                    &deployed,
                    &mut snapshot,
                    None,
                    None,
                    sharded,
                ));
                if let Some(m) = &self.metrics {
                    if sharded {
                        // Degenerate plan (one basis set): sharding was on
                        // but the round ran as a single solve.
                        m.shards_active.set(1);
                    }
                }
            }
        }

        self.inflight = solves.len();
        self.inflight_recovery_containers = solves.iter().map(|s| s.recovery_containers).sum();
        if let Some(m) = &self.metrics {
            m.solve_inflight.set(self.inflight as i64);
        }
        solves
    }

    /// Runs the placement algorithm for one sub-batch of the round —
    /// restricted to `allowed` nodes for a shard solve — and computes its
    /// commit-validation baselines against the shared round snapshot.
    ///
    /// Baselines accumulate *within* the sub-batch (commit replays the
    /// same order on live state) but are undone before returning, so
    /// every sub-batch's baseline is computed on the pristine snapshot.
    /// This is load-bearing for conflict detection: if a later shard's
    /// baseline saw an earlier shard's tentative placements, cross-shard
    /// γ-drift would be absorbed into the baseline and never surface as a
    /// commit conflict.
    #[allow(clippy::too_many_arguments)]
    fn solve_sub_batch(
        &mut self,
        now: u64,
        batch: Vec<PendingLra>,
        deployed: &[PlacementConstraint],
        snapshot: &mut ClusterSnapshot,
        shard: Option<usize>,
        allowed: Option<&[NodeId]>,
        sharded: bool,
    ) -> InflightSolve {
        let requests: Vec<LraRequest> = batch.iter().map(|p| p.request.clone()).collect();

        // Shard solves use per-shard warm-basis caches; swap the shard's
        // cache in for the duration of the solve and restore afterwards.
        let mut swapped: Option<Option<Arc<IlpBasisCache>>> = None;
        if let Some(s) = shard {
            if self.lra_scheduler.algorithm == LraAlgorithm::Ilp {
                while self.shard_caches.len() <= s {
                    self.shard_caches.push(Arc::new(IlpBasisCache::default()));
                }
                swapped = Some(
                    self.lra_scheduler
                        .ilp
                        .warm_cache
                        .replace(Arc::clone(&self.shard_caches[s])),
                );
            }
        }
        let t0 = Instant::now();
        let outcomes = self.place_batch_on(snapshot.state(), &requests, deployed, allowed);
        let algorithm_time = t0.elapsed();
        if let Some(prev) = swapped {
            self.lra_scheduler.ilp.warm_cache = prev;
        }
        if let Some(m) = &self.metrics {
            m.place_us.record_duration(algorithm_time);
            if shard.is_some() {
                m.shard_solve_us.record_duration(algorithm_time);
            }
        }

        // Establish the commit-time validation baseline: apply the
        // proposed placements to the snapshot in batch order and count
        // each entry's violated constraint checks right after its own
        // allocation. Commit replays the same sequence on live state; a
        // higher live count means the cluster drifted mid-solve.
        let mut baselines: Vec<Option<usize>> = Vec::with_capacity(batch.len());
        let mut applied: Vec<ContainerId> = Vec::new();
        for (pending, outcome) in batch.iter().zip(&outcomes) {
            let Some(placement) = outcome.placement() else {
                baselines.push(None);
                continue;
            };
            let mut ids = Vec::with_capacity(placement.nodes.len());
            let mut ok = true;
            for (c, &n) in pending.request.containers.iter().zip(&placement.nodes) {
                match snapshot.state_mut().allocate(
                    pending.request.app,
                    n,
                    c,
                    ExecutionKind::LongRunning,
                ) {
                    Ok(id) => ids.push(id),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                // The algorithm proposed something the snapshot itself
                // rejects; commit will fail it on capacity. No baseline.
                for id in ids {
                    let _ = snapshot.state_mut().release(id);
                }
                baselines.push(None);
                continue;
            }
            baselines.push(Some(Self::violated_checks(
                snapshot.state(),
                &pending.request.constraints,
                deployed,
                &ids,
            )));
            applied.extend(ids);
        }
        // Restore the snapshot for the round's next sub-batch (see the
        // method doc: baselines must be pristine per sub-batch).
        for id in applied.into_iter().rev() {
            let _ = snapshot.state_mut().release(id);
        }

        let lras = batch.len();
        let containers: usize = batch.iter().map(|p| p.request.num_containers()).sum();
        let recovery_containers: usize = batch
            .iter()
            .filter(|p| p.is_recovery)
            .map(|p| p.request.num_containers())
            .sum();
        // Keep a scheduler-side copy keyed by solve id: if the process
        // restarts before commit, restart() requeues it.
        let id = self.solve_seq;
        self.solve_seq += 1;
        self.inflight_batches.insert(id, batch.clone());
        InflightSolve {
            id,
            batch,
            outcomes,
            baselines,
            deployed_constraints: deployed.to_vec(),
            snapshot_epoch: snapshot.epoch(),
            proposed_at: now,
            algorithm_time,
            lras,
            containers,
            recovery_containers,
            shard,
            sharded,
        }
    }

    /// Routes one batch entry by its constraint footprint (see
    /// [`MedeaScheduler::propose_all`]). Only the entry's *own*
    /// constraints pin or residualize it; interactions with deployed
    /// constraints that span shards are deliberately left to commit-time
    /// γ-drift validation.
    fn route_entry(state: &ClusterState, plan: &ShardPlan, request: &LraRequest) -> EntryRoute {
        let mut shards: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for c in &request.constraints {
            if !plan.is_aligned(&c.group) {
                return EntryRoute::Residual;
            }
            for leaf in c.expr.leaves() {
                // Only minimum-cardinality (affinity-like) leaves pin the
                // entry near their targets; anti-affinity leaves have
                // nothing to co-locate with, and their violations are
                // scored against the full snapshot from any shard.
                if leaf.cardinality.min == 0 {
                    continue;
                }
                for n in state.nodes_with_all_tags(leaf.target.tags()) {
                    if let Some(s) = plan.shard_of(n) {
                        shards.insert(s);
                    }
                }
            }
        }
        let mut it = shards.iter();
        match (it.next(), it.next()) {
            (None, _) => EntryRoute::Any,
            (Some(&s), None) => EntryRoute::Pinned(s),
            (Some(_), Some(_)) => EntryRoute::Residual,
        }
    }

    /// Phase 3 of the placement pipeline: re-validates every proposed
    /// placement against the **live** state — capacity consumed by task
    /// containers mid-solve, nodes crashed mid-solve, γ-cardinality
    /// drift past the propose-time baseline — commits the still-valid
    /// subset, and resubmits conflicted entries to the next interval
    /// (the §5.4 conflict policy).
    ///
    /// Returns the LRAs deployed.
    pub fn commit(&mut self, now: u64, solve: InflightSolve) -> Vec<LraDeployment> {
        let InflightSolve {
            id,
            batch,
            outcomes,
            baselines,
            deployed_constraints,
            proposed_at,
            algorithm_time,
            recovery_containers,
            sharded,
            ..
        } = solve;
        // A solve from before the last restart was already requeued by
        // restart(); committing it would double-place the batch.
        if self.inflight_batches.remove(&id).is_none() {
            return Vec::new();
        }
        self.inflight = self.inflight.saturating_sub(1);
        self.inflight_recovery_containers = self
            .inflight_recovery_containers
            .saturating_sub(recovery_containers);
        let commit_start = Instant::now();
        if let Some(m) = &self.metrics {
            m.solve_inflight.set(self.inflight as i64);
            m.placement_staleness_ticks
                .record(now.saturating_sub(proposed_at));
        }

        let mut deployed_out = Vec::new();
        for ((pending, outcome), baseline) in batch.into_iter().zip(outcomes).zip(baselines) {
            match outcome {
                PlacementOutcome::Placed(placement) => {
                    match self.commit_validated(
                        &pending.request,
                        &placement.nodes,
                        baseline,
                        &deployed_constraints,
                    ) {
                        Ok(containers) => {
                            self.stats.lras_deployed += 1;
                            if pending.is_recovery {
                                self.recovery_replaced += containers.len();
                            }
                            if let Some(m) = &self.metrics {
                                m.lras_deployed.inc();
                                if pending.is_recovery {
                                    m.recovery_replaced.add(containers.len() as u64);
                                    m.recovery_latency_ticks
                                        .record(now.saturating_sub(pending.submitted_at));
                                }
                            }
                            deployed_out.push(LraDeployment {
                                app: pending.request.app,
                                nodes: placement.nodes,
                                containers,
                                latency_ticks: now.saturating_sub(pending.submitted_at),
                                algorithm_time,
                                recovered: pending.is_recovery,
                            });
                        }
                        Err(()) => {
                            self.stats.commit_conflicts += 1;
                            if let Some(m) = &self.metrics {
                                m.commit_conflicts.inc();
                            }
                            if sharded {
                                // Cross-shard interference (or ordinary
                                // drift) detected during a sharded round:
                                // tracked separately so operators can see
                                // how much re-solving sharding costs.
                                self.stats.shard_resubmissions += 1;
                                if let Some(m) = &self.metrics {
                                    m.shard_resubmissions.inc();
                                }
                            }
                            self.resubmit(pending, now);
                        }
                    }
                }
                PlacementOutcome::Unplaced { .. } => {
                    self.stats.lras_unplaced += 1;
                    if let Some(m) = &self.metrics {
                        m.lras_unplaced.inc();
                    }
                    self.resubmit(pending, now);
                }
            }
        }
        if let Some(m) = &self.metrics {
            // The cycle spans both phases: algorithm time plus commit
            // validation. Queue depth is set exactly once per cycle, here
            // at cycle end, after resubmissions have settled.
            m.cycle_time_us
                .record_duration(algorithm_time + commit_start.elapsed());
            m.queue_depth.set(self.pending.len() as i64);
            let idx = self.state.index_stats();
            m.index_update_ops.set(idx.update_ops as i64);
            m.index_distinct_tags.set(idx.distinct_tags as i64);
            m.index_rebuilds.set(idx.rebuilds as i64);
        }
        deployed_out
    }

    /// Counts violated `(constraint, container)` checks over the given
    /// containers: the request's own constraints plus the deployed set,
    /// restricted to constraints whose subject matches the allocation.
    fn violated_checks(
        state: &ClusterState,
        own: &[PlacementConstraint],
        deployed: &[PlacementConstraint],
        ids: &[ContainerId],
    ) -> usize {
        let mut violated = 0;
        for &id in ids {
            let Ok(alloc) = state.allocation(id) else {
                continue;
            };
            for c in own.iter().chain(deployed) {
                if !c.subject.matches_allocation(alloc) {
                    continue;
                }
                if let Some(check) = medea_constraints::check_container(state, c, id) {
                    if !check.satisfied {
                        violated += 1;
                    }
                }
            }
        }
        violated
    }

    /// Runs the placement algorithm for one batch — restricted to
    /// `allowed` candidate hosts when solving a shard — routing the ILP
    /// through the circuit breaker: injected stalls and solver
    /// degradations count as failures; while the breaker is open every
    /// batch is served by the node-candidates heuristic until the
    /// cool-down elapses and a probe succeeds.
    fn place_batch_on(
        &mut self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed: &[PlacementConstraint],
        allowed: Option<&[NodeId]>,
    ) -> Vec<PlacementOutcome> {
        if self.lra_scheduler.algorithm != LraAlgorithm::Ilp {
            return self
                .lra_scheduler
                .place_on(state, requests, deployed, allowed);
        }
        let opened_before = self.breaker.opened_total();
        let closed_before = self.breaker.closed_total();
        let outcomes = if self.stall_cycles_remaining > 0 {
            self.stall_cycles_remaining -= 1;
            self.breaker.on_failure();
            self.lra_scheduler
                .place_degraded_on(state, requests, deployed, allowed)
        } else if self.breaker.allow() {
            let (outcomes, status) = self
                .lra_scheduler
                .place_with_status_on(state, requests, deployed, allowed);
            match status {
                IlpSolveStatus::Solved => self.breaker.on_success(),
                IlpSolveStatus::Degraded => self.breaker.on_failure(),
            }
            outcomes
        } else {
            self.lra_scheduler
                .place_degraded_on(state, requests, deployed, allowed)
        };
        if let Some(m) = &self.metrics {
            m.breaker_opened
                .add(self.breaker.opened_total() - opened_before);
            m.breaker_closed
                .add(self.breaker.closed_total() - closed_before);
            m.breaker_state.set(self.breaker.state_code());
        }
        outcomes
    }

    /// Commits a placement against the live state with commit-time
    /// re-validation; on any failure all of the LRA's containers are
    /// rolled back (§5.4 conflict handling). Failure modes:
    ///
    /// - allocation fails — capacity consumed by task containers or the
    ///   node crashed (went unavailable) while the solve was in flight;
    /// - γ-cardinality drift — the placement's violated-check count on
    ///   live state exceeds the propose-time baseline, i.e. concurrent
    ///   mutations made the proposal worse than what the solver chose.
    fn commit_validated(
        &mut self,
        request: &LraRequest,
        nodes: &[NodeId],
        baseline: Option<usize>,
        deployed: &[PlacementConstraint],
    ) -> Result<Vec<ContainerId>, ()> {
        let mut ids = Vec::with_capacity(nodes.len());
        for (c, &n) in request.containers.iter().zip(nodes) {
            match self
                .state
                .allocate(request.app, n, c, ExecutionKind::LongRunning)
            {
                Ok(id) => ids.push(id),
                Err(_) => {
                    for id in ids {
                        let _ = self.state.release(id);
                    }
                    return Err(());
                }
            }
        }
        if let Some(base) = baseline {
            let live = Self::violated_checks(&self.state, &request.constraints, deployed, &ids);
            if live > base {
                for id in ids {
                    let _ = self.state.release(id);
                }
                return Err(());
            }
        }
        Ok(ids)
    }

    /// Requeues an LRA after a conflict or failed placement, dropping it
    /// once the attempt budget is exhausted. Recovery requests back off
    /// exponentially between attempts and, when exhausted, are recorded
    /// as explicitly unplaceable (their app keeps its constraints — it is
    /// still partially deployed) rather than silently dropped.
    fn resubmit(&mut self, mut pending: PendingLra, now: u64) {
        pending.attempts += 1;
        if pending.is_recovery {
            if pending.attempts >= self.recovery.max_attempts {
                let n = pending.request.num_containers();
                self.recovery_unplaceable += n;
                *self
                    .unplaceable_by_app
                    .entry(pending.request.app)
                    .or_insert(0) += n;
                if let Some(m) = &self.metrics {
                    m.recovery_exhausted.add(n as u64);
                }
            } else {
                pending.not_before = now + self.recovery.backoff(pending.attempts);
                self.pending.push_back(pending);
            }
            return;
        }
        if pending.attempts >= self.max_attempts {
            self.stats.lras_dropped += 1;
            if let Some(m) = &self.metrics {
                m.lras_dropped.inc();
            }
            self.constraint_manager.remove_app(pending.request.app);
        } else {
            self.pending.push_back(pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{NodeGroupId, Resources, Tag};
    use medea_constraints::PlacementConstraint;

    fn cluster() -> ClusterState {
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2)
    }

    fn lra(app: u64, count: usize, mem: u64, tag: &str) -> LraRequest {
        LraRequest::uniform(
            ApplicationId(app),
            count,
            Resources::new(mem, 1),
            vec![Tag::new(tag)],
            vec![],
        )
    }

    #[test]
    fn interval_gates_scheduling() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        m.submit_lra(lra(1, 2, 1024, "a"), 0).unwrap();
        // First tick runs immediately (next_run starts at 0)...
        assert_eq!(m.tick(0).len(), 1);
        m.submit_lra(lra(2, 2, 1024, "b"), 1).unwrap();
        // ...but the next invocation must wait for the interval.
        assert!(m.tick(5).is_empty());
        assert_eq!(m.tick(10).len(), 1);
    }

    #[test]
    fn constraints_registered_and_removed() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        let req = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("hb")],
            vec![PlacementConstraint::anti_affinity(
                "hb",
                "hb",
                NodeGroupId::node(),
            )],
        );
        m.submit_lra(req, 0).unwrap();
        assert_eq!(m.constraint_manager().num_apps(), 1);
        m.tick(0);
        m.complete_lra(ApplicationId(1));
        assert_eq!(m.constraint_manager().num_apps(), 0);
        assert_eq!(m.state().num_containers(), 0);
    }

    #[test]
    fn invalid_constraints_rejected_at_submit() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        let req = LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("x")],
            vec![PlacementConstraint::affinity(
                "x",
                "y",
                NodeGroupId::new("ghost"),
            )],
        );
        assert!(m.submit_lra(req, 0).is_err());
        assert_eq!(m.pending_lras(), 0);
    }

    #[test]
    fn unplaceable_lra_is_resubmitted_then_dropped() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        m.max_attempts = 2;
        // 5 x 8 GB cannot fit on 4 x 8 GB nodes alongside each other.
        m.submit_lra(lra(1, 5, 8192, "big"), 0).unwrap();
        assert!(m.tick(0).is_empty());
        assert_eq!(m.pending_lras(), 1);
        assert_eq!(m.stats().lras_unplaced, 1);
        assert!(m.tick(10).is_empty());
        // Two attempts exhausted: dropped.
        assert_eq!(m.pending_lras(), 0);
        assert_eq!(m.stats().lras_dropped, 1);
    }

    #[test]
    fn tasks_flow_through_independently() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Ilp, 10);
        m.submit_tasks(
            TaskJobRequest::new(ApplicationId(7), Resources::new(512, 1), 4),
            0,
        )
        .unwrap();
        // Tasks allocate on heartbeats with no LRA cycle involved.
        let allocs = m.heartbeat(NodeId(1), 2);
        assert_eq!(allocs.len(), 4);
        m.complete_task("default", allocs[0].container);
        assert_eq!(m.state().num_containers(), 3);
    }

    #[test]
    fn commit_conflict_resubmits() {
        // Fill the cluster between placement and commit by using a tiny
        // interval trick: we simulate the conflict by pre-filling nodes
        // after placement would have been computed. Easiest deterministic
        // way: submit an LRA that fits exactly, then occupy the cluster
        // via tasks *before* the tick, so placement itself fails — then
        // free resources and observe successful retry.
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        m.submit_tasks(
            TaskJobRequest::new(ApplicationId(9), Resources::new(8192, 1), 4),
            0,
        )
        .unwrap();
        for n in 0..4u32 {
            m.heartbeat(NodeId(n), 0);
        }
        m.submit_lra(lra(1, 2, 4096, "s"), 0).unwrap();
        assert!(m.tick(0).is_empty());
        assert_eq!(m.stats().lras_unplaced, 1);
        // Free the cluster; the retry succeeds at the next interval.
        let tasks: Vec<ContainerId> = m.state().allocations().map(|a| a.id).collect();
        for t in tasks {
            m.complete_task("default", t);
        }
        let deployed = m.tick(10);
        assert_eq!(deployed.len(), 1);
        assert_eq!(deployed[0].latency_ticks, 10);
        assert_eq!(m.stats().lras_deployed, 1);
    }

    #[test]
    fn node_loss_replaces_lra_containers_elsewhere() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::NodeCandidates, 10);
        // Spread 2 containers across nodes; racks are {0,1} and {2,3}.
        m.submit_lra(lra(1, 2, 1024, "svc"), 0).unwrap();
        let deployed = m.tick(0);
        assert_eq!(deployed.len(), 1);
        let victim = deployed[0].nodes[0];
        let survivors: Vec<NodeId> = deployed[0]
            .nodes
            .iter()
            .copied()
            .filter(|&n| n != victim)
            .collect();

        let report = m.node_lost(victim, 5);
        let lost_here = deployed[0].nodes.iter().filter(|&&n| n == victim).count();
        assert_eq!(report.lra_containers_lost, lost_here);
        assert_eq!(report.apps_affected, vec![(ApplicationId(1), lost_here)]);
        // Idempotent: a second report of the same node is a no-op.
        assert_eq!(m.node_lost(victim, 6).lra_containers_lost, 0);

        let redeployed = m.tick(10);
        assert_eq!(redeployed.len(), 1);
        assert!(redeployed[0].recovered);
        assert!(
            redeployed[0].nodes.iter().all(|&n| n != victim),
            "recovered containers must avoid the crashed node"
        );
        let r = m.recovery_report();
        assert_eq!(r.containers_lost, lost_here);
        assert_eq!(r.containers_replaced, lost_here);
        assert!(r.accounted());
        assert_eq!(r.replacement_ratio(), 1.0);
        // Containers on surviving nodes were untouched.
        for s in survivors {
            assert!(!m.state().containers_on(s).unwrap().is_empty());
        }
        // Fault marks disappear when the node comes back.
        m.node_recovered(victim);
        let fd = crate::recovery::fault_domain_tag();
        for n in m.state().node_ids().collect::<Vec<_>>() {
            assert_eq!(m.state().gamma(n, &fd), 0, "mark left on {n:?}");
        }
    }

    #[test]
    fn recovery_retries_back_off_then_report_unplaceable() {
        // A full cluster: recovery placements cannot succeed.
        let mut m = MedeaScheduler::new(
            ClusterState::homogeneous(2, Resources::new(4096, 4), 1),
            LraAlgorithm::Serial,
            1,
        )
        .with_recovery(crate::RecoveryConfig {
            max_attempts: 2,
            base_backoff: 10,
            max_backoff: 100,
            ..Default::default()
        });
        m.submit_lra(lra(1, 2, 4096, "fat"), 0).unwrap();
        assert_eq!(m.tick(0).len(), 1);
        let report = m.node_lost(NodeId(0), 1);
        assert_eq!(report.lra_containers_lost, 1);
        // Attempt 1 fails (node 1 is full with the app's other container).
        assert!(m.tick(1).is_empty());
        assert_eq!(m.recovery_report().containers_pending, 1);
        // Backoff: ticks before `not_before` skip the entry entirely.
        assert!(m.tick(2).is_empty());
        assert_eq!(m.stats().cycles, 2, "backed-off entry must not run");
        // After the backoff the final attempt runs and exhausts.
        assert!(m.tick(11).is_empty());
        let r = m.recovery_report();
        assert_eq!(r.containers_unplaceable, 1);
        assert_eq!(r.unplaceable_by_app, vec![(ApplicationId(1), 1)]);
        assert!(r.accounted());
        // The app keeps its constraints: it is still partially deployed.
        assert_eq!(m.constraint_manager().num_apps(), 1);
    }

    #[test]
    fn solver_stalls_open_breaker_which_recovers() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Ilp, 1).with_recovery(
            crate::RecoveryConfig {
                breaker_failure_threshold: 2,
                breaker_open_cycles: 2,
                ..Default::default()
            },
        );
        m.inject_solver_stall(2);
        // Stalled cycles still place (degraded heuristic) but count as
        // breaker failures.
        m.submit_lra(lra(1, 1, 1024, "a"), 0).unwrap();
        assert_eq!(m.tick(0).len(), 1);
        assert_eq!(m.breaker_state(), crate::BreakerState::Closed);
        m.submit_lra(lra(2, 1, 1024, "b"), 1).unwrap();
        assert_eq!(m.tick(1).len(), 1);
        assert_eq!(m.breaker_state(), crate::BreakerState::Open);
        // Open cycles are served by the heuristic...
        m.submit_lra(lra(3, 1, 1024, "c"), 2).unwrap();
        assert_eq!(m.tick(2).len(), 1);
        m.submit_lra(lra(4, 1, 1024, "d"), 3).unwrap();
        assert_eq!(m.tick(3).len(), 1);
        assert_eq!(m.breaker_state(), crate::BreakerState::Open);
        // ...then a probe runs the (now healthy) ILP and closes.
        m.submit_lra(lra(5, 1, 1024, "e"), 4).unwrap();
        assert_eq!(m.tick(4).len(), 1);
        assert_eq!(m.breaker_state(), crate::BreakerState::Closed);
    }

    #[test]
    fn node_loss_repairs_task_queue_accounting() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        m.submit_tasks(
            TaskJobRequest::new(ApplicationId(7), Resources::new(1024, 1), 3),
            0,
        )
        .unwrap();
        assert_eq!(m.heartbeat(NodeId(2), 0).len(), 3);
        let report = m.node_lost(NodeId(2), 1);
        assert_eq!(report.task_containers_lost, 3);
        assert_eq!(report.lra_containers_lost, 0);
        assert_eq!(m.state().num_containers(), 0);
    }

    #[test]
    fn every_algorithm_works_end_to_end() {
        for alg in LraAlgorithm::ALL {
            let mut m = MedeaScheduler::new(cluster(), alg, 10);
            let req = LraRequest::uniform(
                ApplicationId(1),
                3,
                Resources::new(1024, 1),
                vec![Tag::new("w")],
                vec![PlacementConstraint::anti_affinity(
                    "w",
                    "w",
                    NodeGroupId::node(),
                )],
            );
            m.submit_lra(req, 0).unwrap();
            let deployed = m.tick(0);
            assert_eq!(deployed.len(), 1, "{alg} failed end-to-end");
            assert_eq!(m.state().num_containers(), 3);
        }
    }
}
