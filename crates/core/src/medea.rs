//! The Medea scheduler: two-scheduler integration (§3, Fig. 4).
//!
//! LRAs are queued and placed in batches by the [`LraScheduler`] at
//! regular scheduling intervals; placement *decisions* are then committed
//! through the allocation path shared with the [`TaskScheduler`], which is
//! how Medea avoids conflicting placements: only one component performs
//! actual allocations. If the cluster state changed between placement and
//! commit (task containers grabbed the resources), the commit fails and
//! the LRA is **resubmitted** to the next interval — the §5.4 conflict
//! policy.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use medea_cluster::{ApplicationId, ClusterState, ContainerId, ExecutionKind, NodeId};
use medea_constraints::{ConstraintError, ConstraintManager};
use medea_obs::{Counter, Gauge, Histogram, MetricsRegistry};

use crate::lra::{LraAlgorithm, LraScheduler};
use crate::request::{LraRequest, PlacementOutcome, TaskJobRequest};
use crate::task_scheduler::{TaskAllocation, TaskScheduler, TaskSchedulerError};

/// Pre-resolved `core.*` metric handles: looked up once when a registry
/// is attached, then updated lock-free in the scheduling cycle.
struct CoreMetrics {
    queue_depth: Arc<Gauge>,
    cycle_time_us: Arc<Histogram>,
    place_us: Arc<Histogram>,
    cycles: Arc<Counter>,
    lras_deployed: Arc<Counter>,
    lras_unplaced: Arc<Counter>,
    commit_conflicts: Arc<Counter>,
    lras_dropped: Arc<Counter>,
}

impl CoreMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        CoreMetrics {
            queue_depth: registry.gauge("core.queue_depth"),
            cycle_time_us: registry.histogram("core.cycle_time_us"),
            place_us: registry.histogram("core.place_us"),
            cycles: registry.counter("core.cycles_total"),
            lras_deployed: registry.counter("core.lras_deployed_total"),
            lras_unplaced: registry.counter("core.lras_unplaced_total"),
            commit_conflicts: registry.counter("core.commit_conflicts_total"),
            lras_dropped: registry.counter("core.lras_dropped_total"),
        }
    }
}

/// A pending LRA with submission metadata.
#[derive(Debug, Clone)]
struct PendingLra {
    request: LraRequest,
    submitted_at: u64,
    attempts: u32,
}

/// Result of one committed LRA placement.
#[derive(Debug, Clone)]
pub struct LraDeployment {
    /// The application deployed.
    pub app: ApplicationId,
    /// Allocated containers (same order as the request's containers).
    pub containers: Vec<ContainerId>,
    /// Nodes per container.
    pub nodes: Vec<NodeId>,
    /// Scheduling latency in ticks (commit time − submission time).
    pub latency_ticks: u64,
    /// Wall-clock time the placement algorithm spent on the batch that
    /// contained this LRA.
    pub algorithm_time: std::time::Duration,
}

/// Counters exposed for the evaluation harness.
#[derive(Debug, Clone, Default)]
pub struct MedeaStats {
    /// LRAs successfully deployed.
    pub lras_deployed: usize,
    /// LRA placement attempts that found no placement (resubmitted).
    pub lras_unplaced: usize,
    /// Commit conflicts (placement invalidated by concurrent allocations).
    pub commit_conflicts: usize,
    /// LRAs dropped after exhausting resubmission attempts.
    pub lras_dropped: usize,
    /// Scheduling-interval invocations.
    pub cycles: usize,
}

/// The Medea resource-manager extension: LRA queue + two schedulers over
/// one cluster state.
///
/// # Examples
///
/// ```
/// use medea_core::{MedeaScheduler, LraAlgorithm, LraRequest};
/// use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
///
/// let cluster = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
/// let mut medea = MedeaScheduler::new(cluster, LraAlgorithm::Ilp, 10);
/// let req = LraRequest::uniform(
///     ApplicationId(1), 2, Resources::new(1024, 1), vec![Tag::new("svc")], vec![]);
/// medea.submit_lra(req, 0).unwrap();
/// let deployed = medea.tick(10); // scheduling interval reached
/// assert_eq!(deployed.len(), 1);
/// ```
pub struct MedeaScheduler {
    state: ClusterState,
    constraint_manager: ConstraintManager,
    lra_scheduler: LraScheduler,
    task_scheduler: TaskScheduler,
    pending: VecDeque<PendingLra>,
    /// Scheduling interval in ticks (§5.1; 10 s in the evaluation).
    pub interval: u64,
    next_run: u64,
    /// Maximum resubmission attempts before an LRA is dropped.
    pub max_attempts: u32,
    stats: MedeaStats,
    metrics: Option<CoreMetrics>,
}

impl MedeaScheduler {
    /// Creates a scheduler over the given cluster with a single task queue.
    pub fn new(state: ClusterState, algorithm: LraAlgorithm, interval: u64) -> Self {
        MedeaScheduler {
            state,
            constraint_manager: ConstraintManager::new(),
            lra_scheduler: LraScheduler::new(algorithm),
            task_scheduler: TaskScheduler::single_queue(),
            pending: VecDeque::new(),
            interval,
            next_run: 0,
            max_attempts: 5,
            stats: MedeaStats::default(),
            metrics: None,
        }
    }

    /// Replaces the task scheduler (custom queues).
    pub fn with_task_scheduler(mut self, ts: TaskScheduler) -> Self {
        self.task_scheduler = ts;
        self
    }

    /// Attaches a metrics registry to every layer this scheduler drives:
    /// the scheduling cycle (`core.*`), the ILP solver bridge
    /// (`solver.*`, `core.ilp_solve_us`), and the task scheduler
    /// (`task.*`). Builder form of [`MedeaScheduler::set_metrics`].
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.set_metrics(registry);
        self
    }

    /// Attaches a metrics registry (see [`MedeaScheduler::with_metrics`]).
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.metrics = Some(CoreMetrics::new(&registry));
        self.lra_scheduler.ilp.metrics = Some(Arc::clone(&registry));
        self.task_scheduler.set_metrics(&registry);
    }

    /// Access to the live cluster state.
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// Mutable access to the live cluster state (failure injection).
    pub fn state_mut(&mut self) -> &mut ClusterState {
        &mut self.state
    }

    /// Access to the constraint manager.
    pub fn constraint_manager(&self) -> &ConstraintManager {
        &self.constraint_manager
    }

    /// Access to the LRA scheduler configuration.
    pub fn lra_scheduler_mut(&mut self) -> &mut LraScheduler {
        &mut self.lra_scheduler
    }

    /// Scheduling statistics so far.
    pub fn stats(&self) -> &MedeaStats {
        &self.stats
    }

    /// Number of LRAs waiting for the next scheduling interval.
    pub fn pending_lras(&self) -> usize {
        self.pending.len()
    }

    /// Submits an LRA: validates and registers its constraints with the
    /// constraint manager, then queues it for the next interval (life
    /// cycle steps 1–2 of Fig. 6).
    pub fn submit_lra(&mut self, request: LraRequest, now: u64) -> Result<(), ConstraintError> {
        self.constraint_manager.register_app(
            request.app,
            request.constraints.clone(),
            self.state.groups(),
        )?;
        self.pending.push_back(PendingLra {
            request,
            submitted_at: now,
            attempts: 0,
        });
        Ok(())
    }

    /// Submits a task-based job straight to the task scheduler (the
    /// two-scheduler routing: no constraints, no LRA queue).
    pub fn submit_tasks(
        &mut self,
        job: TaskJobRequest,
        now: u64,
    ) -> Result<(), TaskSchedulerError> {
        self.task_scheduler.submit(job, now)
    }

    /// Node heartbeat: task-container allocation (R4 path).
    pub fn heartbeat(&mut self, node: NodeId, now: u64) -> Vec<TaskAllocation> {
        self.task_scheduler.on_heartbeat(&mut self.state, node, now)
    }

    /// Completes a task container.
    pub fn complete_task(&mut self, queue: &str, container: ContainerId) {
        let _ = self
            .task_scheduler
            .complete(&mut self.state, queue, container);
    }

    /// Completes (tears down) an entire LRA, releasing containers and
    /// removing its constraints.
    pub fn complete_lra(&mut self, app: ApplicationId) {
        self.state.release_app(app);
        self.constraint_manager.remove_app(app);
    }

    /// Advances time: when the scheduling interval is reached, runs the
    /// LRA scheduler on the pending batch and commits the placements.
    ///
    /// Returns the LRAs deployed in this invocation.
    pub fn tick(&mut self, now: u64) -> Vec<LraDeployment> {
        if now < self.next_run || self.pending.is_empty() {
            return Vec::new();
        }
        self.next_run = now + self.interval;
        self.stats.cycles += 1;
        let cycle_start = Instant::now();
        if let Some(m) = &self.metrics {
            m.cycles.inc();
            m.queue_depth.set(self.pending.len() as i64);
        }

        let batch: Vec<PendingLra> = self.pending.drain(..).collect();
        let requests: Vec<LraRequest> = batch.iter().map(|p| p.request.clone()).collect();

        // Constraints of deployed LRAs + operator, minus the new batch's
        // own (those travel with the requests).
        let deployed: Vec<_> = {
            let batch_apps: Vec<ApplicationId> = requests.iter().map(|r| r.app).collect();
            self.constraint_manager
                .active()
                .into_iter()
                .filter(|s| match s.source {
                    medea_constraints::ConstraintSource::Application(a) => !batch_apps.contains(&a),
                    medea_constraints::ConstraintSource::Operator => true,
                })
                .map(|s| s.constraint)
                .collect()
        };

        let t0 = Instant::now();
        let outcomes = self.lra_scheduler.place(&self.state, &requests, &deployed);
        let algorithm_time = t0.elapsed();
        if let Some(m) = &self.metrics {
            m.place_us.record_duration(algorithm_time);
        }

        let mut deployed_out = Vec::new();
        for (pending, outcome) in batch.into_iter().zip(outcomes) {
            match outcome {
                PlacementOutcome::Placed(placement) => {
                    match self.commit(&pending.request, &placement.nodes) {
                        Ok(containers) => {
                            self.stats.lras_deployed += 1;
                            if let Some(m) = &self.metrics {
                                m.lras_deployed.inc();
                            }
                            deployed_out.push(LraDeployment {
                                app: pending.request.app,
                                nodes: placement.nodes,
                                containers,
                                latency_ticks: now.saturating_sub(pending.submitted_at),
                                algorithm_time,
                            });
                        }
                        Err(()) => {
                            self.stats.commit_conflicts += 1;
                            if let Some(m) = &self.metrics {
                                m.commit_conflicts.inc();
                            }
                            self.resubmit(pending);
                        }
                    }
                }
                PlacementOutcome::Unplaced { .. } => {
                    self.stats.lras_unplaced += 1;
                    if let Some(m) = &self.metrics {
                        m.lras_unplaced.inc();
                    }
                    self.resubmit(pending);
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.cycle_time_us.record_duration(cycle_start.elapsed());
            m.queue_depth.set(self.pending.len() as i64);
        }
        deployed_out
    }

    /// Commits a placement against the live state; on any failure all of
    /// the LRA's containers are rolled back (§5.4 conflict handling).
    fn commit(&mut self, request: &LraRequest, nodes: &[NodeId]) -> Result<Vec<ContainerId>, ()> {
        let mut ids = Vec::with_capacity(nodes.len());
        for (c, &n) in request.containers.iter().zip(nodes) {
            match self
                .state
                .allocate(request.app, n, c, ExecutionKind::LongRunning)
            {
                Ok(id) => ids.push(id),
                Err(_) => {
                    for id in ids {
                        let _ = self.state.release(id);
                    }
                    return Err(());
                }
            }
        }
        Ok(ids)
    }

    /// Requeues an LRA after a conflict or failed placement, dropping it
    /// once the attempt budget is exhausted.
    fn resubmit(&mut self, mut pending: PendingLra) {
        pending.attempts += 1;
        if pending.attempts >= self.max_attempts {
            self.stats.lras_dropped += 1;
            if let Some(m) = &self.metrics {
                m.lras_dropped.inc();
            }
            self.constraint_manager.remove_app(pending.request.app);
        } else {
            self.pending.push_back(pending);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{NodeGroupId, Resources, Tag};
    use medea_constraints::PlacementConstraint;

    fn cluster() -> ClusterState {
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2)
    }

    fn lra(app: u64, count: usize, mem: u64, tag: &str) -> LraRequest {
        LraRequest::uniform(
            ApplicationId(app),
            count,
            Resources::new(mem, 1),
            vec![Tag::new(tag)],
            vec![],
        )
    }

    #[test]
    fn interval_gates_scheduling() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        m.submit_lra(lra(1, 2, 1024, "a"), 0).unwrap();
        // First tick runs immediately (next_run starts at 0)...
        assert_eq!(m.tick(0).len(), 1);
        m.submit_lra(lra(2, 2, 1024, "b"), 1).unwrap();
        // ...but the next invocation must wait for the interval.
        assert!(m.tick(5).is_empty());
        assert_eq!(m.tick(10).len(), 1);
    }

    #[test]
    fn constraints_registered_and_removed() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        let req = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("hb")],
            vec![PlacementConstraint::anti_affinity(
                "hb",
                "hb",
                NodeGroupId::node(),
            )],
        );
        m.submit_lra(req, 0).unwrap();
        assert_eq!(m.constraint_manager().num_apps(), 1);
        m.tick(0);
        m.complete_lra(ApplicationId(1));
        assert_eq!(m.constraint_manager().num_apps(), 0);
        assert_eq!(m.state().num_containers(), 0);
    }

    #[test]
    fn invalid_constraints_rejected_at_submit() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        let req = LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("x")],
            vec![PlacementConstraint::affinity(
                "x",
                "y",
                NodeGroupId::new("ghost"),
            )],
        );
        assert!(m.submit_lra(req, 0).is_err());
        assert_eq!(m.pending_lras(), 0);
    }

    #[test]
    fn unplaceable_lra_is_resubmitted_then_dropped() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        m.max_attempts = 2;
        // 5 x 8 GB cannot fit on 4 x 8 GB nodes alongside each other.
        m.submit_lra(lra(1, 5, 8192, "big"), 0).unwrap();
        assert!(m.tick(0).is_empty());
        assert_eq!(m.pending_lras(), 1);
        assert_eq!(m.stats().lras_unplaced, 1);
        assert!(m.tick(10).is_empty());
        // Two attempts exhausted: dropped.
        assert_eq!(m.pending_lras(), 0);
        assert_eq!(m.stats().lras_dropped, 1);
    }

    #[test]
    fn tasks_flow_through_independently() {
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Ilp, 10);
        m.submit_tasks(
            TaskJobRequest::new(ApplicationId(7), Resources::new(512, 1), 4),
            0,
        )
        .unwrap();
        // Tasks allocate on heartbeats with no LRA cycle involved.
        let allocs = m.heartbeat(NodeId(1), 2);
        assert_eq!(allocs.len(), 4);
        m.complete_task("default", allocs[0].container);
        assert_eq!(m.state().num_containers(), 3);
    }

    #[test]
    fn commit_conflict_resubmits() {
        // Fill the cluster between placement and commit by using a tiny
        // interval trick: we simulate the conflict by pre-filling nodes
        // after placement would have been computed. Easiest deterministic
        // way: submit an LRA that fits exactly, then occupy the cluster
        // via tasks *before* the tick, so placement itself fails — then
        // free resources and observe successful retry.
        let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
        m.submit_tasks(
            TaskJobRequest::new(ApplicationId(9), Resources::new(8192, 1), 4),
            0,
        )
        .unwrap();
        for n in 0..4u32 {
            m.heartbeat(NodeId(n), 0);
        }
        m.submit_lra(lra(1, 2, 4096, "s"), 0).unwrap();
        assert!(m.tick(0).is_empty());
        assert_eq!(m.stats().lras_unplaced, 1);
        // Free the cluster; the retry succeeds at the next interval.
        let tasks: Vec<ContainerId> = m.state().allocations().map(|a| a.id).collect();
        for t in tasks {
            m.complete_task("default", t);
        }
        let deployed = m.tick(10);
        assert_eq!(deployed.len(), 1);
        assert_eq!(deployed[0].latency_ticks, 10);
        assert_eq!(m.stats().lras_deployed, 1);
    }

    #[test]
    fn every_algorithm_works_end_to_end() {
        for alg in LraAlgorithm::ALL {
            let mut m = MedeaScheduler::new(cluster(), alg, 10);
            let req = LraRequest::uniform(
                ApplicationId(1),
                3,
                Resources::new(1024, 1),
                vec![Tag::new("w")],
                vec![PlacementConstraint::anti_affinity(
                    "w",
                    "w",
                    NodeGroupId::node(),
                )],
            );
            m.submit_lra(req, 0).unwrap();
            let deployed = m.tick(0);
            assert_eq!(deployed.len(), 1, "{alg} failed end-to-end");
            assert_eq!(m.state().num_containers(), 3);
        }
    }
}
