//! Global-objective weights and the node-scoring function shared by all
//! greedy LRA schedulers.
//!
//! The ILP optimizes the Eq. 1 objective exactly; the heuristic schedulers
//! (§5.3) and the J-Kube baselines approximate it greedily with the same
//! per-placement score so that experimental comparisons isolate the
//! *algorithm* (ordering and lookahead) rather than the scoring model.

use medea_cluster::{
    ApplicationId, ClusterState, ContainerId, ContainerRequest, ExecutionKind, NodeId, Resources,
};
use medea_constraints::{check_container, PlacementConstraint};

/// Weights of the Eq. 1 objective components.
///
/// Defaults follow the evaluation setup (§7.1): `w1 = 1` (place as many
/// LRAs as possible), `w2 = 0.5` (minimize constraint violations),
/// `w3 = 0.25` (minimize resource fragmentation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveWeights {
    /// Weight of the placed-LRAs component.
    pub w1: f64,
    /// Weight of the constraint-violation component.
    pub w2: f64,
    /// Weight of the fragmentation component.
    pub w3: f64,
    /// Fragmentation threshold `rmin` (Eq. 5): a node left with fewer free
    /// resources than this (but not fully utilized) counts as fragmented.
    pub rmin: Resources,
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        ObjectiveWeights {
            w1: 1.0,
            w2: 0.5,
            w3: 0.25,
            rmin: Resources::new(2048, 1),
        }
    }
}

/// Greedy node scorer over the active constraints.
///
/// Scoring a tentative `(container, node)` pair allocates the container on
/// the scheduler's *working copy* of the cluster state, measures the change
/// in weighted violation extent, fragmentation, and load, then releases it.
#[derive(Debug)]
pub struct Scorer {
    /// Objective weights.
    pub weights: ObjectiveWeights,
    /// Active constraints (new apps + deployed apps + operator).
    pub constraints: Vec<PlacementConstraint>,
}

impl Scorer {
    /// Creates a scorer.
    pub fn new(weights: ObjectiveWeights, constraints: Vec<PlacementConstraint>) -> Self {
        Scorer {
            weights,
            constraints,
        }
    }

    /// Returns `true` if the request fits on the node right now.
    pub fn is_feasible(&self, state: &ClusterState, node: NodeId, req: &ContainerRequest) -> bool {
        state.is_available(node)
            && state
                .free(node)
                .map(|f| req.resources.fits_in(&f))
                .unwrap_or(false)
    }

    /// Computes the weighted violation extent *delta* caused by placing the
    /// container on the node, by temporarily allocating it.
    ///
    /// The delta accounts for (i) the placed container's own constraints
    /// and (ii) the effect of the new container on existing subjects in
    /// the node sets it joins.
    pub fn violation_delta(
        &self,
        state: &mut ClusterState,
        app: ApplicationId,
        req: &ContainerRequest,
        node: NodeId,
    ) -> f64 {
        let affected = self.affected_subjects(state, req, node);
        let before = self.extent_of(state, &affected);
        let Ok(placed) = state.probe_allocate(app, node, req, ExecutionKind::LongRunning) else {
            return f64::INFINITY;
        };
        // The new container's own constraint extents plus the deltas it
        // induces on previously placed subjects. One allocation lookup
        // serves every constraint; no per-call collection.
        let own: f64 = if let Ok(a) = state.allocation(placed) {
            self.constraints
                .iter()
                .filter(|c| c.subject.matches_allocation(a))
                .map(|c| {
                    check_container(state, c, placed)
                        .map(|ck| ck.extent * c.weight)
                        .unwrap_or(0.0)
                })
                .sum()
        } else {
            0.0
        };
        let after = self.extent_of(state, &affected);
        state
            .probe_release(placed)
            .expect("tentative container exists");
        own + (after - before)
    }

    /// Scores placing `req` on `node`; higher is better; `None` when the
    /// node is infeasible (capacity or availability).
    pub fn score(
        &self,
        state: &mut ClusterState,
        app: ApplicationId,
        req: &ContainerRequest,
        node: NodeId,
    ) -> Option<f64> {
        if !self.is_feasible(state, node, req) {
            return None;
        }
        let viol = self.violation_delta(state, app, req, node);
        if !viol.is_finite() {
            return None;
        }
        let frag = self.fragmentation_delta(state, node, req.resources);
        // Balance term: prefer less-utilized nodes (coefficient chosen so
        // that violations dominate, then fragmentation, then balance).
        let util_after = {
            let cap = state.node(node).ok()?.capacity;
            let free_after = state.free(node).ok()?.saturating_sub(&req.resources);
            1.0 - free_after.memory_share(&cap)
        };
        let score = -self.weights.w2 * viol - self.weights.w3 * frag - 0.01 * util_after;
        // `util_after` is NaN on a zero-capacity node (0/0 memory share),
        // which the `viol` finiteness check above does not cover. A NaN
        // score is unusable for argmax comparisons, so treat such a node
        // as unscoreable rather than letting NaN poison the comparison.
        score.is_finite().then_some(score)
    }

    /// Returns `true` if placing the container on the node introduces no
    /// new violation at all (used by the node-candidates heuristic to
    /// compute `Nc`).
    pub fn is_violation_free(
        &self,
        state: &mut ClusterState,
        app: ApplicationId,
        req: &ContainerRequest,
        node: NodeId,
    ) -> bool {
        if !self.is_feasible(state, node, req) {
            return false;
        }
        self.violation_delta(state, app, req, node) <= 1e-9
    }

    /// Fragmentation delta of Eq. 5: +1 if the node becomes fragmented by
    /// this placement, 0 otherwise (it can never be un-fragmented by
    /// adding a container).
    fn fragmentation_delta(&self, state: &ClusterState, node: NodeId, demand: Resources) -> f64 {
        let Ok(free) = state.free(node) else {
            return 0.0;
        };
        let before_frag = !self.weights.rmin.fits_in(&free) && !free.is_zero();
        let after = free.saturating_sub(&demand);
        let after_frag = !self.weights.rmin.fits_in(&after) && !after.is_zero();
        (after_frag as i32 - before_frag as i32) as f64
    }

    /// Subjects whose constraint status can change when a container with
    /// `req`'s tags lands on `node`: existing subject containers in any
    /// node set (of each constraint's group) containing `node`, for
    /// constraints whose target mentions one of the new container's tags.
    fn affected_subjects(
        &self,
        state: &ClusterState,
        req: &ContainerRequest,
        node: NodeId,
    ) -> Vec<(usize, ContainerId)> {
        let mut out = Vec::new();
        for (ci, c) in self.constraints.iter().enumerate() {
            let target_overlaps = c
                .expr
                .leaves()
                .any(|l| l.target.tags().iter().any(|t| req.tags.contains(t)));
            if !target_overlaps {
                continue;
            }
            if c.group.is_node() {
                // Singleton sets: only containers on `node` itself share one.
                let Ok(containers) = state.containers_on(node) else {
                    continue;
                };
                for &cid in containers {
                    if let Ok(a) = state.allocation(cid) {
                        if c.subject.matches_allocation(a) {
                            out.push((ci, cid));
                        }
                    }
                }
                continue;
            }
            let Some(node_sets) = state.groups().sets_containing_ref(&c.group, node) else {
                continue;
            };
            if node_sets.is_empty() {
                continue;
            }
            let subject_tags = c.subject.tags();
            if subject_tags.is_empty() {
                // Catch-all subject: no tag postings to seed from, so fall
                // back to scanning live allocations.
                for a in state.allocations() {
                    if !c.subject.matches_allocation(a) {
                        continue;
                    }
                    let shares_set = state
                        .groups()
                        .sets_containing_ref(&c.group, a.node)
                        .map(|sets| sets.iter().any(|s| node_sets.contains(s)))
                        .unwrap_or(false);
                    if shares_set {
                        out.push((ci, a.id));
                    }
                }
                continue;
            }
            // Seed candidate hosts from the tag index: a node hosting a
            // matching subject necessarily carries all the subject's tags,
            // so the postings intersection is a superset of the hosts.
            for host in state.nodes_with_all_tags(subject_tags) {
                let shares_set = state
                    .groups()
                    .sets_containing_ref(&c.group, host)
                    .map(|sets| sets.iter().any(|s| node_sets.contains(s)))
                    .unwrap_or(false);
                if !shares_set {
                    continue;
                }
                let Ok(containers) = state.containers_on(host) else {
                    continue;
                };
                for &cid in containers {
                    if let Ok(a) = state.allocation(cid) {
                        if c.subject.matches_allocation(a) {
                            out.push((ci, cid));
                        }
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// Total weighted extent of the given (constraint, subject) pairs.
    fn extent_of(&self, state: &ClusterState, pairs: &[(usize, ContainerId)]) -> f64 {
        pairs
            .iter()
            .map(|&(ci, cid)| {
                let c = &self.constraints[ci];
                check_container(state, c, cid)
                    .map(|ck| ck.extent * c.weight)
                    .unwrap_or(0.0)
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{NodeGroupId, Tag};
    use medea_constraints::Cardinality;

    fn req(tags: &[&str]) -> ContainerRequest {
        ContainerRequest::new(Resources::new(1024, 1), tags.iter().map(|t| Tag::new(*t)))
    }

    fn cluster() -> ClusterState {
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2)
    }

    #[test]
    fn default_weights_match_paper() {
        let w = ObjectiveWeights::default();
        assert_eq!((w.w1, w.w2, w.w3), (1.0, 0.5, 0.25));
    }

    #[test]
    fn feasibility_checks_capacity_and_availability() {
        let mut state = cluster();
        let s = Scorer::new(ObjectiveWeights::default(), vec![]);
        assert!(s.is_feasible(&state, NodeId(0), &req(&[])));
        state.set_available(NodeId(0), false).unwrap();
        assert!(!s.is_feasible(&state, NodeId(0), &req(&[])));
        let huge = ContainerRequest::new(Resources::new(10_000, 1), []);
        assert!(!s.is_feasible(&state, NodeId(1), &huge));
    }

    #[test]
    fn own_violation_is_charged() {
        let mut state = cluster();
        // Existing hb container on node 0; anti-affinity hb-hb at node level.
        state
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["hb"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let scorer = Scorer::new(
            ObjectiveWeights::default(),
            vec![PlacementConstraint::anti_affinity(
                "hb",
                "hb",
                NodeGroupId::node(),
            )],
        );
        let bad = scorer.violation_delta(&mut state, ApplicationId(2), &req(&["hb"]), NodeId(0));
        let good = scorer.violation_delta(&mut state, ApplicationId(2), &req(&["hb"]), NodeId(1));
        // Placing next to the existing hb violates both the new container's
        // constraint and the existing one's.
        assert!(bad > good);
        assert!(good.abs() < 1e-9);
        assert!(bad >= 2.0 - 1e-9);
        // The tentative allocation must have been rolled back.
        assert_eq!(state.num_containers(), 1);
    }

    #[test]
    fn effect_on_existing_subjects_is_charged() {
        let mut state = cluster();
        // Existing "srv" subject with anti-affinity against "noisy".
        state
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["srv"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let scorer = Scorer::new(
            ObjectiveWeights::default(),
            vec![PlacementConstraint::anti_affinity(
                "srv",
                "noisy",
                NodeGroupId::node(),
            )],
        );
        // The new container is not a subject, but it is a target that
        // breaks the existing subject's constraint.
        let delta =
            scorer.violation_delta(&mut state, ApplicationId(2), &req(&["noisy"]), NodeId(0));
        assert!(delta > 0.5);
        let elsewhere =
            scorer.violation_delta(&mut state, ApplicationId(2), &req(&["noisy"]), NodeId(1));
        assert!(elsewhere.abs() < 1e-9);
    }

    #[test]
    fn score_prefers_constraint_satisfying_nodes() {
        let mut state = cluster();
        state
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["cache"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let scorer = Scorer::new(
            ObjectiveWeights::default(),
            vec![PlacementConstraint::affinity(
                "web",
                "cache",
                NodeGroupId::node(),
            )],
        );
        let collocated = scorer
            .score(&mut state, ApplicationId(2), &req(&["web"]), NodeId(0))
            .unwrap();
        let separated = scorer
            .score(&mut state, ApplicationId(2), &req(&["web"]), NodeId(3))
            .unwrap();
        assert!(collocated > separated);
    }

    #[test]
    fn cardinality_limits_reflected_in_nc() {
        let mut state = cluster();
        let scorer = Scorer::new(
            ObjectiveWeights::default(),
            vec![PlacementConstraint::new(
                "w",
                "w",
                Cardinality::at_most(1),
                NodeGroupId::node(),
            )],
        );
        // Two "w" on node 0: each sees one other -> at_most(1) holds; node
        // 0 is violation-free for the first two, then stops being so.
        assert!(scorer.is_violation_free(&mut state, ApplicationId(1), &req(&["w"]), NodeId(0)));
        state
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["w"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        assert!(scorer.is_violation_free(&mut state, ApplicationId(1), &req(&["w"]), NodeId(0)));
        state
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["w"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        assert!(!scorer.is_violation_free(&mut state, ApplicationId(1), &req(&["w"]), NodeId(0)));
        assert!(scorer.is_violation_free(&mut state, ApplicationId(1), &req(&["w"]), NodeId(1)));
    }

    #[test]
    fn fragmentation_penalty_applies() {
        let mut state = ClusterState::homogeneous(2, Resources::new(4096, 8), 1);
        let scorer = Scorer::new(ObjectiveWeights::default(), vec![]);
        // A 3 GB container leaves 1 GB < rmin free: fragmentation delta 1.
        let big = ContainerRequest::new(Resources::new(3072, 1), []);
        let small = ContainerRequest::new(Resources::new(1024, 1), []);
        let s_big = scorer
            .score(&mut state, ApplicationId(1), &big, NodeId(0))
            .unwrap();
        let s_small = scorer
            .score(&mut state, ApplicationId(1), &small, NodeId(0))
            .unwrap();
        assert!(s_small > s_big);
    }
}
