//! Application submission types: LRA requests with constraints and
//! task-based job requests (Medea's LRA interface, §3).
//!
//! Applications that use the constraints API are handled by the LRA
//! scheduler; applications using the plain container-request API go to the
//! task-based scheduler — this routing is the essence of the two-scheduler
//! design.

use medea_cluster::{ApplicationId, ContainerRequest, NodeId, Resources, Tag};
use medea_constraints::PlacementConstraint;

/// A long-running application submission: containers plus placement
/// constraints (§3 "LRA interface").
#[derive(Debug, Clone)]
pub struct LraRequest {
    /// Application identity (also auto-tagged onto every container).
    pub app: ApplicationId,
    /// The containers to place, all-or-nothing (ILP Eq. 4).
    pub containers: Vec<ContainerRequest>,
    /// Placement constraints submitted with the application.
    pub constraints: Vec<PlacementConstraint>,
}

impl LraRequest {
    /// Creates an LRA request.
    pub fn new(
        app: ApplicationId,
        containers: Vec<ContainerRequest>,
        constraints: Vec<PlacementConstraint>,
    ) -> Self {
        LraRequest {
            app,
            containers,
            constraints,
        }
    }

    /// Creates `count` identical containers with the given tags.
    pub fn uniform(
        app: ApplicationId,
        count: usize,
        resources: Resources,
        tags: Vec<Tag>,
        constraints: Vec<PlacementConstraint>,
    ) -> Self {
        let containers = (0..count)
            .map(|_| ContainerRequest::new(resources, tags.clone()))
            .collect();
        LraRequest::new(app, containers, constraints)
    }

    /// Number of containers requested (`T_i` in the ILP).
    pub fn num_containers(&self) -> usize {
        self.containers.len()
    }

    /// Total resources requested.
    pub fn total_resources(&self) -> Resources {
        self.containers.iter().map(|c| c.resources).sum()
    }
}

/// Locality preference of a task container (YARN-style resource request).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Prefer a specific node, relaxing to its rack and then anywhere.
    Node(NodeId),
    /// Prefer a specific rack (by rack set index), relaxing to anywhere.
    Rack(usize),
    /// No preference.
    Any,
}

/// A task-based job: a batch of short-lived container requests routed
/// directly to the task-based scheduler.
#[derive(Debug, Clone)]
pub struct TaskJobRequest {
    /// Application identity.
    pub app: ApplicationId,
    /// Queue the job is submitted to (capacity scheduler).
    pub queue: String,
    /// Per-task resource demand.
    pub resources: Resources,
    /// Number of tasks.
    pub count: usize,
    /// Locality preference applied to every task of the job.
    pub locality: Locality,
    /// Tags carried by the task containers (lets LRA constraints target
    /// them, e.g. "no batch tasks next to my latency-critical service").
    pub tags: Vec<Tag>,
    /// Placement constraints handled *heuristically* by the task
    /// scheduler (§5.4): preferred like locality, relaxed after a few
    /// missed heartbeats so task latency is never held hostage.
    pub constraints: Vec<PlacementConstraint>,
}

impl TaskJobRequest {
    /// Creates a task job with no locality preference on queue `default`.
    pub fn new(app: ApplicationId, resources: Resources, count: usize) -> Self {
        TaskJobRequest {
            app,
            queue: "default".to_string(),
            resources,
            count,
            locality: Locality::Any,
            tags: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Sets the target queue.
    pub fn on_queue(mut self, queue: impl Into<String>) -> Self {
        self.queue = queue.into();
        self
    }

    /// Sets the locality preference.
    pub fn with_locality(mut self, locality: Locality) -> Self {
        self.locality = locality;
        self
    }

    /// Attaches container tags.
    pub fn with_tags(mut self, tags: impl IntoIterator<Item = Tag>) -> Self {
        self.tags = tags.into_iter().collect();
        self
    }

    /// Attaches heuristically-handled placement constraints (§5.4), e.g.
    /// rack affinity of a map/reduce job toward a Memcached LRA.
    pub fn with_constraints(
        mut self,
        constraints: impl IntoIterator<Item = PlacementConstraint>,
    ) -> Self {
        self.constraints = constraints.into_iter().collect();
        self
    }
}

/// The placement decided for one LRA: one node per container, in container
/// order. Produced by the LRA scheduler, committed by the task scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LraPlacement {
    /// The application placed.
    pub app: ApplicationId,
    /// Chosen node per container (same order as the request).
    pub nodes: Vec<NodeId>,
}

/// Outcome of one LRA scheduling attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlacementOutcome {
    /// All containers placed.
    Placed(LraPlacement),
    /// The scheduler could not place all containers (Eq. 4 all-or-nothing);
    /// the LRA should be resubmitted in a later interval (§5.4).
    Unplaced {
        /// The application that could not be placed.
        app: ApplicationId,
    },
}

impl PlacementOutcome {
    /// Returns the placement if all containers were placed.
    pub fn placement(&self) -> Option<&LraPlacement> {
        match self {
            PlacementOutcome::Placed(p) => Some(p),
            PlacementOutcome::Unplaced { .. } => None,
        }
    }

    /// The application concerned.
    pub fn app(&self) -> ApplicationId {
        match self {
            PlacementOutcome::Placed(p) => p.app,
            PlacementOutcome::Unplaced { app } => *app,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_builds_identical_containers() {
        let r = LraRequest::uniform(
            ApplicationId(1),
            4,
            Resources::new(2048, 1),
            vec![Tag::new("hb")],
            vec![],
        );
        assert_eq!(r.num_containers(), 4);
        assert_eq!(r.total_resources(), Resources::new(8192, 4));
        assert!(r.containers.iter().all(|c| c.tags == vec![Tag::new("hb")]));
    }

    #[test]
    fn task_job_builder() {
        let j = TaskJobRequest::new(ApplicationId(2), Resources::new(1024, 1), 10)
            .on_queue("batch")
            .with_locality(Locality::Rack(3));
        assert_eq!(j.queue, "batch");
        assert_eq!(j.locality, Locality::Rack(3));
    }

    #[test]
    fn outcome_accessors() {
        let p = PlacementOutcome::Placed(LraPlacement {
            app: ApplicationId(1),
            nodes: vec![NodeId(0)],
        });
        assert!(p.placement().is_some());
        assert_eq!(p.app(), ApplicationId(1));
        let u = PlacementOutcome::Unplaced {
            app: ApplicationId(2),
        };
        assert!(u.placement().is_none());
        assert_eq!(u.app(), ApplicationId(2));
    }
}
