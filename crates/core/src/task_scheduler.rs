//! The task-based scheduler: a YARN-Capacity-Scheduler-like allocator for
//! short-lived containers (§3, §6).
//!
//! Medea reuses a traditional production scheduler for task-based jobs so
//! their allocation latency is unaffected by LRA placement (requirement
//! R4). This implementation reproduces the Capacity Scheduler's core
//! behaviour: capacity-shared queues, heartbeat-driven allocation,
//! most-underserved queue selection, FIFO within a queue, and
//! delay-scheduling locality relaxation (node → rack → any).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use medea_cluster::{
    Allocation, ApplicationId, ClusterState, ContainerId, ContainerRequest, ExecutionKind,
    NodeGroupId, NodeId, Resources,
};
use medea_obs::{Counter, Histogram, MetricsRegistry};

use crate::request::{Locality, TaskJobRequest};

/// Pre-resolved `task.*` metric handles.
#[derive(Debug)]
struct TaskMetrics {
    heartbeats: Arc<Counter>,
    allocations: Arc<Counter>,
    alloc_latency_ticks: Arc<Histogram>,
}

impl TaskMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        TaskMetrics {
            heartbeats: registry.counter("task.heartbeats_total"),
            allocations: registry.counter("task.allocations_total"),
            alloc_latency_ticks: registry.histogram("task.alloc_latency_ticks"),
        }
    }
}

/// Intra-queue scheduling policy (§6: YARN's Capacity Scheduler uses
/// FIFO leaf queues; the Fair Scheduler can be used instead "simply by
/// changing a configuration parameter").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// First-in-first-out within the queue (Capacity Scheduler default).
    #[default]
    Fifo,
    /// Max-min fairness across applications within the queue: the next
    /// allocation goes to the pending application with the least memory
    /// currently in use (Fair Scheduler behaviour).
    Fair,
}

/// Configuration of one capacity queue.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Queue name.
    pub name: String,
    /// Guaranteed share of cluster memory in `[0, 1]`.
    pub capacity: f64,
    /// Elastic ceiling share of cluster memory in `[0, 1]`.
    pub max_capacity: f64,
    /// Intra-queue policy.
    pub policy: QueuePolicy,
}

impl QueueConfig {
    /// Creates a FIFO queue with the given guaranteed and maximum shares.
    pub fn new(name: impl Into<String>, capacity: f64, max_capacity: f64) -> Self {
        QueueConfig {
            name: name.into(),
            capacity,
            max_capacity,
            policy: QueuePolicy::Fifo,
        }
    }

    /// Switches the queue to fair scheduling.
    pub fn fair(mut self) -> Self {
        self.policy = QueuePolicy::Fair;
        self
    }
}

/// Errors from the task scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskSchedulerError {
    /// The named queue does not exist.
    UnknownQueue(String),
}

impl fmt::Display for TaskSchedulerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskSchedulerError::UnknownQueue(q) => write!(f, "unknown queue '{q}'"),
        }
    }
}

impl std::error::Error for TaskSchedulerError {}

/// A pending task container waiting for allocation.
#[derive(Debug, Clone)]
struct PendingTask {
    app: ApplicationId,
    resources: Resources,
    locality: Locality,
    tags: Vec<medea_cluster::Tag>,
    constraints: Vec<medea_constraints::PlacementConstraint>,
    submitted_at: u64,
    /// Heartbeats skipped while waiting for the preferred location.
    missed_opportunities: u32,
}

/// A successfully allocated task container with its scheduling latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskAllocation {
    /// Allocated container.
    pub container: ContainerId,
    /// Owning application.
    pub app: ApplicationId,
    /// Node the container landed on.
    pub node: NodeId,
    /// Scheduling latency in ticks (allocation time − submission time).
    pub latency: u64,
}

/// Per-queue bookkeeping.
#[derive(Debug)]
struct Queue {
    config: QueueConfig,
    pending: VecDeque<PendingTask>,
    used: Resources,
    /// Memory in use per application (fair policy bookkeeping).
    app_used: HashMap<ApplicationId, u64>,
}

/// Heartbeat-driven capacity scheduler for task containers.
///
/// # Examples
///
/// ```
/// use medea_core::{TaskScheduler, QueueConfig, TaskJobRequest};
/// use medea_cluster::{ApplicationId, ClusterState, NodeId, Resources};
///
/// let mut cluster = ClusterState::homogeneous(2, Resources::new(8192, 8), 1);
/// let mut ts = TaskScheduler::new(vec![QueueConfig::new("default", 1.0, 1.0)]);
/// ts.submit(TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 3), 0)
///     .unwrap();
/// let allocs = ts.on_heartbeat(&mut cluster, NodeId(0), 5);
/// assert_eq!(allocs.len(), 3);
/// assert!(allocs.iter().all(|a| a.latency == 5));
/// ```
#[derive(Debug)]
pub struct TaskScheduler {
    queues: Vec<Queue>,
    by_name: HashMap<String, usize>,
    /// Missed heartbeats before relaxing node locality to rack.
    pub node_locality_delay: u32,
    /// Missed heartbeats before relaxing rack locality to any.
    pub rack_locality_delay: u32,
    /// Maximum containers allocated per heartbeat (off-switch limit).
    pub max_per_heartbeat: usize,
    /// Queue index of every live task container, so accounting can be
    /// repaired when a container is lost to a node crash rather than
    /// completed through [`TaskScheduler::complete`].
    container_queues: HashMap<ContainerId, usize>,
    metrics: Option<TaskMetrics>,
}

impl TaskScheduler {
    /// Creates a scheduler with the given queues.
    pub fn new(queues: Vec<QueueConfig>) -> Self {
        let mut by_name = HashMap::new();
        let queues: Vec<Queue> = queues
            .into_iter()
            .enumerate()
            .map(|(i, config)| {
                by_name.insert(config.name.clone(), i);
                Queue {
                    config,
                    pending: VecDeque::new(),
                    used: Resources::ZERO,
                    app_used: HashMap::new(),
                }
            })
            .collect();
        TaskScheduler {
            queues,
            by_name,
            node_locality_delay: 3,
            rack_locality_delay: 6,
            max_per_heartbeat: 32,
            container_queues: HashMap::new(),
            metrics: None,
        }
    }

    /// Creates a scheduler with a single `default` queue at 100% capacity.
    pub fn single_queue() -> Self {
        TaskScheduler::new(vec![QueueConfig::new("default", 1.0, 1.0)])
    }

    /// Attaches a metrics registry: heartbeats, allocations, and the
    /// task allocation latency distribution are reported as `task.*`.
    pub fn set_metrics(&mut self, registry: &MetricsRegistry) {
        self.metrics = Some(TaskMetrics::new(registry));
    }

    /// Submits a task job: `count` individual task containers, FIFO.
    pub fn submit(&mut self, job: TaskJobRequest, now: u64) -> Result<(), TaskSchedulerError> {
        let qi = *self
            .by_name
            .get(&job.queue)
            .ok_or_else(|| TaskSchedulerError::UnknownQueue(job.queue.clone()))?;
        for _ in 0..job.count {
            self.queues[qi].pending.push_back(PendingTask {
                app: job.app,
                resources: job.resources,
                locality: job.locality,
                tags: job.tags.clone(),
                constraints: job.constraints.clone(),
                submitted_at: now,
                missed_opportunities: 0,
            });
        }
        Ok(())
    }

    /// Number of tasks waiting across all queues.
    pub fn pending_count(&self) -> usize {
        self.queues.iter().map(|q| q.pending.len()).sum()
    }

    /// Resources currently used by a queue.
    pub fn queue_used(&self, name: &str) -> Option<Resources> {
        self.by_name.get(name).map(|&i| self.queues[i].used)
    }

    /// Handles a node heartbeat: allocates pending tasks onto the node.
    ///
    /// Queues are served most-underserved first (used/guaranteed ratio);
    /// within a queue tasks are FIFO with delay-scheduling locality.
    pub fn on_heartbeat(
        &mut self,
        state: &mut ClusterState,
        node: NodeId,
        now: u64,
    ) -> Vec<TaskAllocation> {
        let mut out = Vec::new();
        if let Some(m) = &self.metrics {
            m.heartbeats.inc();
        }
        if !state.is_available(node) {
            return out;
        }
        let total = state.total_capacity();
        let node_rack = state
            .groups()
            .sets_containing_ref(&NodeGroupId::rack(), node)
            .and_then(|v| v.first().copied());

        loop {
            if out.len() >= self.max_per_heartbeat {
                break;
            }
            // Pick the most underserved queue with pending work that can
            // still grow within its max capacity.
            let mut order: Vec<usize> = (0..self.queues.len())
                .filter(|&i| !self.queues[i].pending.is_empty())
                .collect();
            // total_cmp, not partial_cmp(..).unwrap_or(Equal): the latter is
            // not a total order when a pressure ratio is NaN, and a non-total
            // comparator makes sort output (and thus queue service order)
            // depend on the input permutation.
            order.sort_by(|&a, &b| {
                let ra = queue_pressure(&self.queues[a], &total);
                let rb = queue_pressure(&self.queues[b], &total);
                ra.total_cmp(&rb)
            });

            let mut allocated_any = false;
            for qi in order {
                let Some(alloc) =
                    self.try_allocate_from_queue(state, qi, node, node_rack, now, &total)
                else {
                    continue;
                };
                out.push(alloc);
                allocated_any = true;
                break;
            }
            if !allocated_any {
                break;
            }
        }
        out
    }

    /// Attempts to allocate the head-most eligible task of a queue.
    fn try_allocate_from_queue(
        &mut self,
        state: &mut ClusterState,
        qi: usize,
        node: NodeId,
        node_rack: Option<usize>,
        now: u64,
        total: &Resources,
    ) -> Option<TaskAllocation> {
        let max_mem = (total.memory_mb as f64 * self.queues[qi].config.max_capacity) as u64;
        // Candidate order: FIFO prefix, or least-served application first
        // under the fair policy (max-min fairness within the queue).
        let scan = self.queues[qi].pending.len().min(64);
        let order: Vec<usize> = match self.queues[qi].config.policy {
            QueuePolicy::Fifo => (0..scan).collect(),
            QueuePolicy::Fair => {
                let q = &self.queues[qi];
                let mut idx: Vec<usize> = (0..scan).collect();
                idx.sort_by_key(|&i| {
                    let app = q.pending[i].app;
                    (q.app_used.get(&app).copied().unwrap_or(0), i)
                });
                idx
            }
        };
        for idx in order {
            let task = &self.queues[qi].pending[idx];
            // Queue ceiling.
            if self.queues[qi].used.memory_mb + task.resources.memory_mb > max_mem {
                continue;
            }
            // Node fit.
            let Ok(free) = state.free(node) else {
                return None;
            };
            if !task.resources.fits_in(&free) {
                continue;
            }
            // Locality with delay scheduling.
            let loc_ok = match task.locality {
                Locality::Any => true,
                Locality::Node(n) => {
                    n == node || task.missed_opportunities >= self.node_locality_delay
                }
                Locality::Rack(r) => {
                    node_rack == Some(r) || task.missed_opportunities >= self.rack_locality_delay
                }
            };
            // Heuristic constraint handling (§5.4): treat constraints like
            // a locality preference — skip the node while it violates
            // them, relax after the rack-locality delay so task latency
            // stays bounded regardless of constraint satisfiability.
            let constraints_ok = task.missed_opportunities >= self.rack_locality_delay
                || task.constraints.iter().all(|c| {
                    let node_singleton = [node.index()];
                    let sets: &[usize] = if c.group.is_node() {
                        &node_singleton
                    } else {
                        match state.groups().sets_containing_ref(&c.group, node) {
                            Some(s) => s,
                            // Unknown group: treat the constraint as
                            // trivially satisfied, matching the scan path.
                            None => return true,
                        }
                    };
                    c.expr.conjuncts.iter().any(|conj| {
                        conj.iter().all(|leaf| {
                            sets.iter().any(|&si| {
                                let count = leaf
                                    .target
                                    .cardinality_in_group_set(state, &c.group, si, None);
                                leaf.cardinality.satisfied_by(count)
                            })
                        })
                    })
                });
            if !loc_ok || !constraints_ok {
                self.queues[qi].pending[idx].missed_opportunities += 1;
                continue;
            }
            let Some(task) = self.queues[qi].pending.remove(idx) else {
                // Index raced out of range; bail out of this heartbeat.
                return None;
            };
            let req = ContainerRequest::new(task.resources, task.tags.clone());
            let Ok(container) = state.allocate(task.app, node, &req, ExecutionKind::Task) else {
                // Should not happen (fit checked); requeue defensively.
                self.queues[qi].pending.push_front(task);
                return None;
            };
            self.container_queues.insert(container, qi);
            self.queues[qi].used += task.resources;
            *self.queues[qi].app_used.entry(task.app).or_insert(0) += task.resources.memory_mb;
            let latency = now.saturating_sub(task.submitted_at);
            if let Some(m) = &self.metrics {
                m.allocations.inc();
                m.alloc_latency_ticks.record(latency);
            }
            return Some(TaskAllocation {
                container,
                app: task.app,
                node,
                latency,
            });
        }
        None
    }

    /// Records the completion of a task container, releasing its
    /// resources from both the cluster and the queue accounting.
    pub fn complete(
        &mut self,
        state: &mut ClusterState,
        queue: &str,
        container: ContainerId,
    ) -> Result<(), TaskSchedulerError> {
        let qi = *self
            .by_name
            .get(queue)
            .ok_or_else(|| TaskSchedulerError::UnknownQueue(queue.to_string()))?;
        if let Ok(alloc) = state.release(container) {
            self.container_queues.remove(&container);
            self.queues[qi].used = self.queues[qi].used.saturating_sub(&alloc.resources);
            if let Some(u) = self.queues[qi].app_used.get_mut(&alloc.app) {
                *u = u.saturating_sub(alloc.resources.memory_mb);
            }
        }
        Ok(())
    }

    /// Repairs queue accounting for a task container whose node crashed:
    /// the cluster already released the allocation, so only the queue's
    /// usage bookkeeping is rolled back here. Task containers are not
    /// re-placed — their short-lived jobs resubmit through the normal
    /// path — but their capacity must be returned to the queue.
    pub fn on_container_lost(&mut self, alloc: &Allocation) {
        let Some(qi) = self.container_queues.remove(&alloc.id) else {
            return;
        };
        self.queues[qi].used = self.queues[qi].used.saturating_sub(&alloc.resources);
        if let Some(u) = self.queues[qi].app_used.get_mut(&alloc.app) {
            *u = u.saturating_sub(alloc.resources.memory_mb);
        }
    }
}

/// Pressure = used / guaranteed (lower = more underserved).
fn queue_pressure(q: &Queue, total: &Resources) -> f64 {
    let guaranteed = (total.memory_mb as f64 * q.config.capacity).max(1.0);
    q.used.memory_mb as f64 / guaranteed
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster() -> ClusterState {
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2)
    }

    #[test]
    fn fifo_allocation_on_heartbeat() {
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 5),
            10,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 12);
        assert_eq!(allocs.len(), 5);
        assert!(allocs.iter().all(|a| a.latency == 2));
        assert_eq!(ts.pending_count(), 0);
        assert_eq!(state.containers_on(NodeId(0)).unwrap().len(), 5);
    }

    #[test]
    fn node_capacity_limits_heartbeat() {
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        // 8 GB node, 3 GB tasks: two fit.
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(3072, 1), 5),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 0);
        assert_eq!(allocs.len(), 2);
        assert_eq!(ts.pending_count(), 3);
    }

    #[test]
    fn queue_max_capacity_enforced() {
        let mut state = cluster(); // 32 GB total
        let mut ts = TaskScheduler::new(vec![
            QueueConfig::new("small", 0.25, 0.25), // ceiling 8 GB
            QueueConfig::new("big", 0.75, 1.0),
        ]);
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(4096, 1), 4).on_queue("small"),
            0,
        )
        .unwrap();
        let mut allocated = 0;
        for n in 0..4u32 {
            allocated += ts.on_heartbeat(&mut state, NodeId(n), 0).len();
        }
        // Ceiling 8 GB / 4 GB tasks = 2 containers max.
        assert_eq!(allocated, 2);
        assert_eq!(ts.queue_used("small").unwrap().memory_mb, 8192);
    }

    #[test]
    fn underserved_queue_goes_first() {
        let mut state = cluster();
        let mut ts = TaskScheduler::new(vec![
            QueueConfig::new("a", 0.5, 1.0),
            QueueConfig::new("b", 0.5, 1.0),
        ]);
        // Fill queue a with one running container first.
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(2048, 1), 1).on_queue("a"),
            0,
        )
        .unwrap();
        ts.on_heartbeat(&mut state, NodeId(0), 0);
        // Now both queues have pending work; b is more underserved.
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 1).on_queue("a"),
            0,
        )
        .unwrap();
        ts.submit(
            TaskJobRequest::new(ApplicationId(2), Resources::new(1024, 1), 1).on_queue("b"),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(1), 1);
        assert_eq!(
            allocs[0].app,
            ApplicationId(2),
            "queue b should be served first"
        );
    }

    #[test]
    fn node_locality_delays_then_relaxes() {
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        ts.node_locality_delay = 2;
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 1)
                .with_locality(Locality::Node(NodeId(3))),
            0,
        )
        .unwrap();
        // Heartbeats from the wrong node are skipped until the delay.
        assert!(ts.on_heartbeat(&mut state, NodeId(0), 1).is_empty());
        assert!(ts.on_heartbeat(&mut state, NodeId(0), 2).is_empty());
        // Third wrong-node heartbeat: delay exhausted, allocate anywhere.
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 3);
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].node, NodeId(0));
    }

    #[test]
    fn preferred_node_allocates_immediately() {
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 1)
                .with_locality(Locality::Node(NodeId(2))),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(2), 0);
        assert_eq!(allocs.len(), 1);
        assert_eq!(allocs[0].node, NodeId(2));
    }

    #[test]
    fn rack_locality() {
        let mut state = cluster(); // racks: {0,1}, {2,3}
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 1)
                .with_locality(Locality::Rack(1)),
            0,
        )
        .unwrap();
        assert!(ts.on_heartbeat(&mut state, NodeId(0), 0).is_empty());
        let allocs = ts.on_heartbeat(&mut state, NodeId(2), 0);
        assert_eq!(allocs.len(), 1);
    }

    #[test]
    fn completion_releases_resources() {
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 1),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 0);
        ts.complete(&mut state, "default", allocs[0].container)
            .unwrap();
        assert_eq!(ts.queue_used("default").unwrap(), Resources::ZERO);
        assert_eq!(state.num_containers(), 0);
    }

    #[test]
    fn unknown_queue_is_an_error() {
        let mut ts = TaskScheduler::single_queue();
        let err = ts
            .submit(
                TaskJobRequest::new(ApplicationId(1), Resources::new(1, 1), 1).on_queue("nope"),
                0,
            )
            .unwrap_err();
        assert_eq!(err, TaskSchedulerError::UnknownQueue("nope".into()));
    }

    #[test]
    fn task_constraints_steer_then_relax() {
        use medea_cluster::{ContainerRequest, Tag};
        use medea_constraints::PlacementConstraint;
        let mut state = cluster(); // racks {0,1}, {2,3}
                                   // A memcached LRA lives on node 2.
        state
            .allocate(
                ApplicationId(9),
                NodeId(2),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("mem")]),
                medea_cluster::ExecutionKind::LongRunning,
            )
            .unwrap();
        let mut ts = TaskScheduler::single_queue();
        // The §5.4 example: a map/reduce job placed on the same rack as a
        // Memcached application.
        let job = TaskJobRequest::new(ApplicationId(1), Resources::new(512, 1), 1)
            .with_tags([Tag::new("mr")])
            .with_constraints([PlacementConstraint::affinity(
                "mr",
                "mem",
                medea_cluster::NodeGroupId::rack(),
            )]);
        ts.submit(job, 0).unwrap();
        // Wrong-rack heartbeats are skipped while the preference holds.
        assert!(ts.on_heartbeat(&mut state, NodeId(0), 1).is_empty());
        // A right-rack heartbeat allocates, and the task carries its tag.
        let allocs = ts.on_heartbeat(&mut state, NodeId(3), 2);
        assert_eq!(allocs.len(), 1);
        assert_eq!(state.gamma(NodeId(3), &Tag::new("mr")), 1);
    }

    #[test]
    fn task_constraints_relax_after_delay() {
        use medea_cluster::Tag;
        use medea_constraints::PlacementConstraint;
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        ts.rack_locality_delay = 2;
        // Affinity to a tag that exists nowhere: unsatisfiable, must relax.
        let job = TaskJobRequest::new(ApplicationId(1), Resources::new(512, 1), 1)
            .with_tags([Tag::new("mr")])
            .with_constraints([PlacementConstraint::affinity(
                "mr",
                "ghost",
                medea_cluster::NodeGroupId::rack(),
            )]);
        ts.submit(job, 0).unwrap();
        assert!(ts.on_heartbeat(&mut state, NodeId(0), 1).is_empty());
        assert!(ts.on_heartbeat(&mut state, NodeId(0), 2).is_empty());
        // Delay exhausted: the soft constraint yields to latency (R4).
        assert_eq!(ts.on_heartbeat(&mut state, NodeId(0), 3).len(), 1);
    }

    #[test]
    fn fair_policy_alternates_between_apps() {
        let mut state = cluster();
        let mut ts = TaskScheduler::new(vec![QueueConfig::new("default", 1.0, 1.0).fair()]);
        // App 1 floods the queue first; app 2 arrives behind it.
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 6),
            0,
        )
        .unwrap();
        ts.submit(
            TaskJobRequest::new(ApplicationId(2), Resources::new(1024, 1), 6),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 1);
        // Max-min fairness: the first 8 allocations split 4/4, not 6/2.
        let app1 = allocs
            .iter()
            .take(8)
            .filter(|a| a.app == ApplicationId(1))
            .count();
        assert_eq!(app1, 4, "fair policy must interleave applications");
    }

    #[test]
    fn fifo_policy_serves_in_order() {
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 6),
            0,
        )
        .unwrap();
        ts.submit(
            TaskJobRequest::new(ApplicationId(2), Resources::new(1024, 1), 6),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 1);
        let app1_first = allocs
            .iter()
            .take(6)
            .filter(|a| a.app == ApplicationId(1))
            .count();
        assert_eq!(app1_first, 6, "FIFO must drain app 1 first");
    }

    #[test]
    fn fair_accounting_resets_on_completion() {
        let mut state = cluster();
        let mut ts = TaskScheduler::new(vec![QueueConfig::new("default", 1.0, 1.0).fair()]);
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 2),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 0);
        for a in &allocs {
            ts.complete(&mut state, "default", a.container).unwrap();
        }
        // After completion app 1 is back to zero usage: a new burst from
        // app 2 does not starve it.
        ts.submit(
            TaskJobRequest::new(ApplicationId(2), Resources::new(1024, 1), 2),
            1,
        )
        .unwrap();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 2),
            1,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(1), 2);
        let apps: std::collections::HashSet<_> = allocs.iter().take(2).map(|a| a.app).collect();
        assert_eq!(apps.len(), 2, "both apps served in the first two slots");
    }

    #[test]
    fn lost_container_returns_queue_capacity() {
        let mut state = cluster();
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 2),
            0,
        )
        .unwrap();
        let allocs = ts.on_heartbeat(&mut state, NodeId(0), 0);
        assert_eq!(allocs.len(), 2);
        // A node crash releases the allocations behind the scheduler's
        // back; on_container_lost repairs the queue accounting.
        let lost = state.release(allocs[0].container).unwrap();
        ts.on_container_lost(&lost);
        assert_eq!(ts.queue_used("default").unwrap().memory_mb, 1024);
        // Repeated loss reports for the same container are idempotent.
        ts.on_container_lost(&lost);
        assert_eq!(ts.queue_used("default").unwrap().memory_mb, 1024);
    }

    #[test]
    fn unavailable_node_gets_nothing() {
        let mut state = cluster();
        state.set_available(NodeId(0), false).unwrap();
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(1024, 1), 1),
            0,
        )
        .unwrap();
        assert!(ts.on_heartbeat(&mut state, NodeId(0), 0).is_empty());
    }
}
