//! The YARN baseline: a production-grade but constraint-unaware LRA
//! placement (§7.1 "YARN: ... constraint-unaware scheduler").
//!
//! Containers are placed one at a time on the least-allocated feasible
//! node (memory share), which is YARN's default behaviour for requests
//! without locality; placement constraints are simply not consulted, so
//! "some constraints are randomly satisfied for some LRAs" (§7.2).

use medea_cluster::{ClusterState, ExecutionKind, NodeId};

use crate::request::{LraPlacement, LraRequest, PlacementOutcome};

/// Constraint-unaware least-allocated scheduler.
#[derive(Debug, Default)]
pub struct YarnScheduler;

impl YarnScheduler {
    /// Creates the baseline scheduler.
    pub fn new() -> Self {
        YarnScheduler
    }

    /// Places requests container by container on the least-allocated node.
    pub fn place(&self, state: &ClusterState, requests: &[LraRequest]) -> Vec<PlacementOutcome> {
        let mut work = state.clone();
        let nodes: Vec<NodeId> = work.node_ids().collect();
        let mut outcomes = Vec::with_capacity(requests.len());
        for r in requests {
            let mut placed_nodes = Vec::with_capacity(r.containers.len());
            let mut placed_ids = Vec::with_capacity(r.containers.len());
            let mut ok = true;
            for c in &r.containers {
                let mut best: Option<(NodeId, f64)> = None;
                for &n in &nodes {
                    if !work.is_available(n) {
                        continue;
                    }
                    let Ok(free) = work.free(n) else { continue };
                    if !c.resources.fits_in(&free) {
                        continue;
                    }
                    let cap = work.node(n).map(|x| x.capacity).unwrap_or_default();
                    let score = free.memory_share(&cap);
                    if best.is_none_or(|(_, bs)| score > bs) {
                        best = Some((n, score));
                    }
                }
                match best {
                    Some((node, _)) => {
                        let id = work
                            .allocate(r.app, node, c, ExecutionKind::LongRunning)
                            .expect("feasibility checked");
                        placed_nodes.push(node);
                        placed_ids.push(id);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                outcomes.push(PlacementOutcome::Placed(LraPlacement {
                    app: r.app,
                    nodes: placed_nodes,
                }));
            } else {
                for id in placed_ids {
                    let _ = work.release(id);
                }
                outcomes.push(PlacementOutcome::Unplaced { app: r.app });
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{ApplicationId, Resources, Tag};

    #[test]
    fn spreads_by_least_allocated() {
        let state = ClusterState::homogeneous(4, Resources::new(8 * 1024, 8), 2);
        let req = LraRequest::uniform(
            ApplicationId(1),
            4,
            Resources::new(2048, 1),
            vec![Tag::new("x")],
            vec![],
        );
        let out = YarnScheduler::new().place(&state, &[req]);
        let pl = out[0].placement().unwrap();
        let mut nodes = pl.nodes.clone();
        nodes.sort();
        nodes.dedup();
        // Least-allocated spreading puts each container on a fresh node.
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn constraints_are_ignored() {
        use medea_cluster::NodeGroupId;
        use medea_constraints::PlacementConstraint;
        let state = ClusterState::homogeneous(2, Resources::new(8 * 1024, 8), 1);
        let caa = PlacementConstraint::anti_affinity("w", "w", NodeGroupId::node());
        let with = LraRequest::uniform(
            ApplicationId(1),
            4,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![caa],
        );
        let without = LraRequest::uniform(
            ApplicationId(1),
            4,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![],
        );
        let o1 = YarnScheduler::new().place(&state, &[with]);
        let o2 = YarnScheduler::new().place(&state, &[without]);
        assert_eq!(
            o1[0].placement().unwrap().nodes,
            o2[0].placement().unwrap().nodes
        );
    }

    #[test]
    fn unplaceable_is_reported() {
        let state = ClusterState::homogeneous(1, Resources::new(1024, 1), 1);
        let req = LraRequest::uniform(ApplicationId(1), 2, Resources::new(1024, 1), vec![], vec![]);
        let out = YarnScheduler::new().place(&state, &[req]);
        assert!(matches!(out[0], PlacementOutcome::Unplaced { .. }));
    }
}
