//! Container recovery: policies and state machines for surviving machine
//! loss (§2.3, §7.3).
//!
//! The paper's Medea is evaluated against *correlated machine
//! unavailability* — service units that lose a fraction (sometimes all)
//! of their machines at once. This module provides the policy layer the
//! [`crate::MedeaScheduler`] uses to recover from such events:
//!
//! - [`RecoveryConfig`]: retry budget and exponential backoff for
//!   re-placing long-running containers lost to a node crash;
//! - [`CircuitBreaker`]: degrades ILP scheduling to the heuristic after
//!   repeated solver deadline/infeasibility outcomes, probing the ILP
//!   again after a cool-down (so an overloaded or stalling solver cannot
//!   stall the whole recovery pipeline);
//! - [`NodeLossReport`] / [`RecoveryReport`]: structured accounting so
//!   the harness can verify that every killed container is either
//!   re-placed or *explicitly* reported as unplaceable — never silently
//!   lost.

use medea_cluster::{ApplicationId, Tag};

/// The node-level tag used to mark members of a failing fault domain.
/// Recovery requests carry a soft anti-affinity against it so re-placed
/// containers steer away from the service unit (or rack) that just lost
/// a machine.
pub const FAULT_DOMAIN_TAG: &str = "fault_domain";

/// Returns the fault-domain marker tag.
pub fn fault_domain_tag() -> Tag {
    Tag::new(FAULT_DOMAIN_TAG)
}

/// Retry/backoff policy for re-placing lost LRA containers and the
/// circuit-breaker thresholds protecting the ILP path.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryConfig {
    /// Maximum placement attempts per recovery request before its
    /// containers are reported unplaceable.
    pub max_attempts: u32,
    /// Base backoff in ticks: attempt `n` (1-based) becomes eligible
    /// `base_backoff * 2^(n-1)` ticks after the failed attempt.
    pub base_backoff: u64,
    /// Upper bound on the backoff delay in ticks.
    pub max_backoff: u64,
    /// Consecutive ILP degradations (deadline, infeasibility, injected
    /// stall) that open the circuit breaker.
    pub breaker_failure_threshold: u32,
    /// Scheduling cycles the breaker stays open (heuristic-only) before
    /// probing the ILP again.
    pub breaker_open_cycles: u32,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            max_attempts: 8,
            base_backoff: 10,
            max_backoff: 1_000,
            breaker_failure_threshold: 3,
            breaker_open_cycles: 5,
        }
    }
}

impl RecoveryConfig {
    /// Backoff delay in ticks before retry number `attempt` (1-based):
    /// exponential with the configured base, saturating at `max_backoff`.
    ///
    /// Saturation semantics: the doubling shift is clamped to 63 (the
    /// width of `u64` minus one, so `1 << shift` itself cannot
    /// overflow), the multiply saturates at `u64::MAX`, and the result
    /// is capped at `max_backoff`. The sequence is therefore
    /// non-decreasing in `attempt` for every configuration — it grows
    /// exponentially, then plateaus, never wraps.
    pub fn backoff(&self, attempt: u32) -> u64 {
        let shift = attempt.saturating_sub(1).min(63);
        self.base_backoff
            .saturating_mul(1u64 << shift)
            .min(self.max_backoff)
    }
}

/// Circuit-breaker state (classic three-state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Normal operation: the protected path (ILP) runs every cycle.
    Closed,
    /// Tripped: the protected path is skipped, the heuristic serves all
    /// placements until the cool-down elapses.
    Open,
    /// Cool-down elapsed: the next cycle probes the protected path once.
    HalfOpen,
}

/// Degradation circuit breaker around the ILP scheduling path.
///
/// `allow()` is asked once per scheduling cycle whether the ILP may run;
/// the outcome is fed back via `on_success()` / `on_failure()`. After
/// `failure_threshold` consecutive failures the breaker opens for
/// `open_cycles` cycles, then half-opens to probe; a failed probe
/// re-opens, a successful one closes.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    failure_threshold: u32,
    open_cycles: u32,
    state: BreakerState,
    consecutive_failures: u32,
    remaining_open: u32,
    opened_total: u64,
    closed_total: u64,
}

impl CircuitBreaker {
    /// Creates a closed breaker with the given thresholds (both clamped
    /// to at least 1).
    pub fn new(failure_threshold: u32, open_cycles: u32) -> Self {
        CircuitBreaker {
            failure_threshold: failure_threshold.max(1),
            open_cycles: open_cycles.max(1),
            state: BreakerState::Closed,
            consecutive_failures: 0,
            remaining_open: 0,
            opened_total: 0,
            closed_total: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has opened / closed (for metrics).
    pub fn opened_total(&self) -> u64 {
        self.opened_total
    }

    /// Times the breaker transitioned back to closed.
    pub fn closed_total(&self) -> u64 {
        self.closed_total
    }

    /// Asks whether the protected path may run this cycle. While open,
    /// each call burns one cool-down cycle; when the cool-down is spent
    /// the breaker half-opens and the call is allowed as a probe.
    pub fn allow(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if self.remaining_open == 0 {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    self.remaining_open -= 1;
                    false
                }
            }
        }
    }

    /// Reports that the protected path completed normally.
    pub fn on_success(&mut self) {
        if self.state != BreakerState::Closed {
            self.closed_total += 1;
        }
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Reports that the protected path degraded (deadline/no-incumbent
    /// fallback, infeasibility, or an injected stall).
    pub fn on_failure(&mut self) {
        match self.state {
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.failure_threshold {
                    self.trip();
                }
            }
            BreakerState::HalfOpen => self.trip(),
            BreakerState::Open => {}
        }
    }

    fn trip(&mut self) {
        self.state = BreakerState::Open;
        self.remaining_open = self.open_cycles;
        self.consecutive_failures = 0;
        self.opened_total += 1;
    }

    /// Numeric encoding for the `core.breaker_state` gauge
    /// (0 = closed, 1 = open, 2 = half-open).
    pub fn state_code(&self) -> i64 {
        match self.state {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// What one node loss cost: containers released, split by kind, and the
/// recovery requests enqueued as a result.
#[derive(Debug, Clone, Default)]
pub struct NodeLossReport {
    /// Long-running containers lost (re-enqueued for re-placement).
    pub lra_containers_lost: usize,
    /// Task containers lost (released; the owning jobs are short-lived
    /// and their frameworks resubmit work, so tasks are not re-placed).
    pub task_containers_lost: usize,
    /// Applications that lost LRA containers, with counts.
    pub apps_affected: Vec<(ApplicationId, usize)>,
}

/// Cumulative recovery accounting. The invariant the chaos harness
/// checks: `containers_lost == containers_replaced +
/// containers_unplaceable + containers_pending` — no silent loss.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// LRA containers killed by node loss so far.
    pub containers_lost: usize,
    /// Lost containers successfully re-placed.
    pub containers_replaced: usize,
    /// Lost containers whose retry budget is exhausted, reported
    /// explicitly as unplaceable.
    pub containers_unplaceable: usize,
    /// Lost containers still waiting in the recovery queue (or backing
    /// off between attempts).
    pub containers_pending: usize,
    /// Per-application unplaceable counts (the explicit loss report).
    pub unplaceable_by_app: Vec<(ApplicationId, usize)>,
}

impl RecoveryReport {
    /// Fraction of killed containers re-placed so far (1.0 when nothing
    /// was killed).
    pub fn replacement_ratio(&self) -> f64 {
        if self.containers_lost == 0 {
            1.0
        } else {
            self.containers_replaced as f64 / self.containers_lost as f64
        }
    }

    /// Whether the no-silent-loss invariant holds.
    pub fn accounted(&self) -> bool {
        self.containers_lost
            == self.containers_replaced + self.containers_unplaceable + self.containers_pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let cfg = RecoveryConfig {
            base_backoff: 10,
            max_backoff: 100,
            ..RecoveryConfig::default()
        };
        assert_eq!(cfg.backoff(1), 10);
        assert_eq!(cfg.backoff(2), 20);
        assert_eq!(cfg.backoff(3), 40);
        assert_eq!(cfg.backoff(4), 80);
        assert_eq!(cfg.backoff(5), 100, "capped");
        assert_eq!(cfg.backoff(60), 100, "huge attempts never overflow");
    }

    #[test]
    fn backoff_is_monotonic_under_extreme_attempts() {
        // An effectively uncapped config: the only protection against
        // wrap-around is the shift clamp + saturating multiply. The
        // former cap of 32 made the curve plateau at base * 2^32 — far
        // below max_backoff — so attempts 34..64 stopped growing; worse,
        // a clamp above 63 would make `1 << shift` wrap to a *smaller*
        // delay. Both regressions show up as a monotonicity violation.
        let cfg = RecoveryConfig {
            base_backoff: 3,
            max_backoff: u64::MAX,
            ..RecoveryConfig::default()
        };
        let mut prev = 0u64;
        for attempt in 1..=80 {
            let b = cfg.backoff(attempt);
            assert!(b >= prev, "backoff({attempt}) = {b} < {prev}");
            prev = b;
        }
        // The curve must keep growing past the old 2^32 plateau...
        assert!(cfg.backoff(40) > cfg.backoff(33), "plateaued at 2^32");
        // ...and saturate (not wrap) once the shift clamp engages.
        assert_eq!(cfg.backoff(70), cfg.backoff(65));
        assert_eq!(cfg.backoff(70), u64::MAX, "3 * 2^63 saturates");
        // With a finite cap the cap still wins.
        let capped = RecoveryConfig {
            base_backoff: 3,
            max_backoff: 1_000,
            ..RecoveryConfig::default()
        };
        assert_eq!(capped.backoff(70), 1_000);
    }

    #[test]
    fn breaker_opens_after_threshold_and_probes() {
        let mut b = CircuitBreaker::new(3, 2);
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opened_total(), 1);
        // Two cool-down cycles denied, then a probe is allowed.
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Failed probe re-opens immediately.
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.opened_total(), 2);
        assert!(!b.allow());
        assert!(!b.allow());
        assert!(b.allow());
        // Successful probe closes.
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closed_total(), 1);
    }

    #[test]
    fn breaker_success_resets_failure_streak() {
        let mut b = CircuitBreaker::new(3, 1);
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }

    #[test]
    fn recovery_report_invariant() {
        let mut r = RecoveryReport {
            containers_lost: 10,
            containers_replaced: 7,
            containers_unplaceable: 1,
            containers_pending: 2,
            unplaceable_by_app: vec![(ApplicationId(3), 1)],
        };
        assert!(r.accounted());
        assert!((r.replacement_ratio() - 0.7).abs() < 1e-12);
        r.containers_pending = 0;
        assert!(!r.accounted());
        let empty = RecoveryReport::default();
        assert_eq!(empty.replacement_ratio(), 1.0);
        assert!(empty.accounted());
    }
}
