//! The Medea scheduler: placement of long-running applications in shared
//! production clusters (EuroSys 2018).
//!
//! This crate implements the paper's primary contribution:
//!
//! - the **two-scheduler design** (§3): [`MedeaScheduler`] queues LRAs and
//!   places them in batches via a dedicated [`LraScheduler`], while a
//!   traditional [`TaskScheduler`] keeps allocating short-lived containers
//!   at heartbeat latency; all actual allocations go through one component,
//!   avoiding multi-scheduler conflicts;
//! - the **ILP-based placement algorithm** (§5.2, Fig. 5) over the
//!   `medea-solver` MILP engine, with all-or-nothing placement, soft
//!   constraint violations, and fragmentation in the objective;
//! - the **heuristics** of §5.3 (node candidates, tag popularity) plus the
//!   evaluation baselines: `Serial`, `J-Kube`, `J-Kube++`, and `YARN`;
//! - the **capability matrix** of Table 1;
//! - the **container recovery pipeline** (§2.3, §7.3): on node loss,
//!   lost LRA containers are re-enqueued with anti-affinity to the
//!   failing fault domain, retried with exponential backoff under a
//!   bounded attempt budget, while a [`CircuitBreaker`] degrades ILP
//!   scheduling to the heuristic after repeated solver stalls.
//!
//! See `medea-constraints` for the constraint language and
//! `medea-cluster` for the cluster model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capabilities;
mod heuristics;
mod ilp;
mod jkube;
mod lra;
mod medea;
mod migration;
mod objective;
mod obs_bridge;
mod recovery;
mod request;
mod task_scheduler;
mod yarn;

pub use capabilities::{
    implemented_capabilities, paper_table1, render_table, CapabilityRow, Support,
};
pub use heuristics::{HeuristicScheduler, Ordering};
pub use ilp::{
    place_with_ilp, place_with_ilp_status, place_with_ilp_status_on, IlpBasisCache, IlpConfig,
    IlpSolveStatus,
};
pub use jkube::JKubeScheduler;
pub use lra::{LraAlgorithm, LraScheduler};
pub use medea::{
    InflightSolve, LraDeployment, MedeaScheduler, MedeaStats, NodeReport, RestartReport,
};
pub use migration::{Migration, MigrationConfig, MigrationController};
pub use objective::{ObjectiveWeights, Scorer};
pub use obs_bridge::SolverMetricsBridge;
pub use recovery::{
    fault_domain_tag, BreakerState, CircuitBreaker, NodeLossReport, RecoveryConfig, RecoveryReport,
    FAULT_DOMAIN_TAG,
};
pub use request::{Locality, LraPlacement, LraRequest, PlacementOutcome, TaskJobRequest};
pub use task_scheduler::{
    QueueConfig, QueuePolicy, TaskAllocation, TaskScheduler, TaskSchedulerError,
};
pub use yarn::YarnScheduler;
