//! Bridge between the dependency-free solver instrumentation hook and
//! the `medea-obs` metrics registry.
//!
//! The solver crate reports discrete [`SolveEvent`]s through the
//! [`SolveInstrumentation`] trait without linking any metrics library;
//! this bridge resolves the `solver.*` series once at construction and
//! maps each event onto a lock-free counter, so the per-event cost is a
//! single relaxed atomic add.

use std::sync::Arc;

use medea_obs::{Counter, MetricsRegistry};
use medea_solver::{SolveEvent, SolveInstrumentation};

/// Maps [`SolveEvent`]s onto `solver.*` counters of a registry.
#[derive(Debug)]
pub struct SolverMetricsBridge {
    simplex_pivots: Arc<Counter>,
    nodes_explored: Arc<Counter>,
    nodes_pruned: Arc<Counter>,
    incumbent_improvements: Arc<Counter>,
    deadline_hits: Arc<Counter>,
    node_limit_hits: Arc<Counter>,
    refactorizations: Arc<Counter>,
    warm_starts: Arc<Counter>,
}

impl SolverMetricsBridge {
    /// Resolves the solver counter series in `registry`.
    pub fn new(registry: &MetricsRegistry) -> Self {
        SolverMetricsBridge {
            simplex_pivots: registry.counter("solver.simplex_pivots_total"),
            nodes_explored: registry.counter("solver.bnb_nodes_explored_total"),
            nodes_pruned: registry.counter("solver.bnb_nodes_pruned_total"),
            incumbent_improvements: registry.counter("solver.incumbent_improvements_total"),
            deadline_hits: registry.counter("solver.deadline_hits_total"),
            node_limit_hits: registry.counter("solver.node_limit_hits_total"),
            refactorizations: registry.counter("solver.refactorizations_total"),
            warm_starts: registry.counter("solver.warm_starts_total"),
        }
    }
}

impl SolveInstrumentation for SolverMetricsBridge {
    fn record(&self, event: SolveEvent) {
        match event {
            SolveEvent::SimplexPivots(n) => self.simplex_pivots.add(n),
            SolveEvent::NodeExplored => self.nodes_explored.inc(),
            SolveEvent::NodePruned => self.nodes_pruned.inc(),
            SolveEvent::IncumbentImproved => self.incumbent_improvements.inc(),
            SolveEvent::DeadlineHit => self.deadline_hits.inc(),
            SolveEvent::NodeLimitHit => self.node_limit_hits.inc(),
            SolveEvent::Refactorizations(n) => self.refactorizations.add(n),
            SolveEvent::WarmStartUsed => self.warm_starts.inc(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bridge_maps_events_to_counters() {
        let registry = MetricsRegistry::new();
        let bridge = SolverMetricsBridge::new(&registry);
        bridge.record(SolveEvent::SimplexPivots(17));
        bridge.record(SolveEvent::NodeExplored);
        bridge.record(SolveEvent::NodeExplored);
        bridge.record(SolveEvent::NodePruned);
        bridge.record(SolveEvent::IncumbentImproved);
        bridge.record(SolveEvent::DeadlineHit);
        bridge.record(SolveEvent::NodeLimitHit);
        bridge.record(SolveEvent::Refactorizations(3));
        bridge.record(SolveEvent::WarmStartUsed);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("solver.simplex_pivots_total"), Some(17));
        assert_eq!(snap.counter("solver.bnb_nodes_explored_total"), Some(2));
        assert_eq!(snap.counter("solver.bnb_nodes_pruned_total"), Some(1));
        assert_eq!(snap.counter("solver.incumbent_improvements_total"), Some(1));
        assert_eq!(snap.counter("solver.deadline_hits_total"), Some(1));
        assert_eq!(snap.counter("solver.node_limit_hits_total"), Some(1));
        assert_eq!(snap.counter("solver.refactorizations_total"), Some(3));
        assert_eq!(snap.counter("solver.warm_starts_total"), Some(1));
    }
}
