//! J-Kube and J-Kube++: the Kubernetes scheduling algorithm implemented
//! inside Medea's LRA scheduler (§7.1 comparisons).
//!
//! Kubernetes considers **one container request at a time**: each pod goes
//! through a feasibility filter (resources) and a scoring phase
//! (soft (anti-)affinity match plus least-allocated spreading), with no
//! lookahead across the batch. It supports (anti-)affinity but **not
//! cardinality** constraints; J-Kube++ is the paper's extension of J-Kube
//! with cardinality support.

use medea_cluster::{ApplicationId, ClusterState, ContainerRequest, ExecutionKind, NodeId};
use medea_constraints::{Cardinality, PlacementConstraint};

use crate::request::{LraPlacement, LraRequest, PlacementOutcome};

/// Kubernetes-style one-at-a-time scheduler.
pub struct JKubeScheduler {
    /// When `true` (J-Kube++), cardinality constraints participate in
    /// scoring; when `false` (J-Kube), they are honoured only in their
    /// degenerate (anti-)affinity forms, as in Kubernetes.
    pub cardinality_support: bool,
}

impl JKubeScheduler {
    /// Creates a J-Kube scheduler (no cardinality support).
    pub fn jkube() -> Self {
        JKubeScheduler {
            cardinality_support: false,
        }
    }

    /// Creates a J-Kube++ scheduler (with cardinality support).
    pub fn jkube_plus_plus() -> Self {
        JKubeScheduler {
            cardinality_support: true,
        }
    }

    /// Places a batch of LRAs, container by container, in submission
    /// order, scoring each container against every node.
    pub fn place(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
    ) -> Vec<PlacementOutcome> {
        let mut work = state.clone();
        let nodes: Vec<NodeId> = work.node_ids().collect();
        let mut outcomes = Vec::with_capacity(requests.len());

        for r in requests {
            // One container at a time; constraints visible to this pod are
            // its own app's plus the deployed ones (no batch lookahead).
            let mut relevant: Vec<&PlacementConstraint> = deployed_constraints.iter().collect();
            relevant.extend(r.constraints.iter());

            let mut placed_nodes = Vec::with_capacity(r.containers.len());
            let mut placed_ids = Vec::with_capacity(r.containers.len());
            let mut ok = true;
            for c in &r.containers {
                match self.place_one(&mut work, r.app, c, &relevant, &nodes) {
                    Some((node, id)) => {
                        placed_nodes.push(node);
                        placed_ids.push(id);
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                outcomes.push(PlacementOutcome::Placed(LraPlacement {
                    app: r.app,
                    nodes: placed_nodes,
                }));
            } else {
                for id in placed_ids {
                    let _ = work.release(id);
                }
                outcomes.push(PlacementOutcome::Unplaced { app: r.app });
            }
        }
        outcomes
    }

    /// Filter + score one pod over all nodes (the Kubernetes cycle).
    fn place_one(
        &self,
        work: &mut ClusterState,
        app: ApplicationId,
        request: &ContainerRequest,
        constraints: &[&PlacementConstraint],
        nodes: &[NodeId],
    ) -> Option<(NodeId, medea_cluster::ContainerId)> {
        let mut best: Option<(NodeId, f64)> = None;
        for &n in nodes {
            // Feasibility filter: resources and availability only.
            if !work.is_available(n) {
                continue;
            }
            let Ok(free) = work.free(n) else { continue };
            if !request.resources.fits_in(&free) {
                continue;
            }
            let score = self.score_node(work, app, request, constraints, n);
            if best.is_none_or(|(_, bs)| score > bs) {
                best = Some((n, score));
            }
        }
        let (node, _) = best?;
        let id = work
            .allocate(app, node, request, ExecutionKind::LongRunning)
            .ok()?;
        Some((node, id))
    }

    /// Kubernetes-style scoring: per-constraint match bonuses/penalties
    /// plus a least-allocated spreading term.
    fn score_node(
        &self,
        work: &mut ClusterState,
        app: ApplicationId,
        request: &ContainerRequest,
        constraints: &[&PlacementConstraint],
        node: NodeId,
    ) -> f64 {
        // Tentatively allocate to evaluate tag cardinalities including the
        // pod itself (Kubernetes evaluates topology terms hypothetically).
        let Ok(id) = work.allocate(app, node, request, ExecutionKind::LongRunning) else {
            return f64::NEG_INFINITY;
        };
        let mut score = 0.0;
        for c in constraints {
            let is_subject = work
                .allocation(id)
                .map(|a| c.subject.matches_allocation(a))
                .unwrap_or(false);
            if !is_subject {
                continue;
            }
            for leaf in c.expr.leaves() {
                let effective = self.effective_cardinality(&leaf.cardinality);
                let Some(effective) = effective else {
                    continue; // J-Kube ignores true cardinality constraints.
                };
                let sets = work
                    .groups()
                    .sets_containing(&c.group, node)
                    .unwrap_or_default();
                let mut leaf_ok = false;
                for si in sets {
                    let count = leaf
                        .target
                        .cardinality_in_group_set(work, &c.group, si, Some(id));
                    if effective.satisfied_by(count) {
                        leaf_ok = true;
                        break;
                    }
                }
                score += if leaf_ok { c.weight } else { -c.weight };
            }
        }
        let _ = work.release(id);
        // Least-allocated spreading (Kubernetes `LeastAllocated` strategy).
        let cap = work.node(node).map(|n| n.capacity).unwrap_or_default();
        let free = work.free(node).unwrap_or_default();
        let free_after = free.saturating_sub(&request.resources);
        score + 0.1 * free_after.memory_share(&cap)
    }

    /// J-Kube degrades cardinality constraints: `max = 0` behaves as
    /// anti-affinity, `min >= 1 && max = ∞` as affinity, anything else is
    /// ignored. J-Kube++ keeps them all.
    fn effective_cardinality(&self, c: &Cardinality) -> Option<Cardinality> {
        if self.cardinality_support {
            return Some(*c);
        }
        match (c.min, c.max) {
            (_, Some(0)) => Some(Cardinality::anti_affinity()),
            (min, None) if min >= 1 => Some(Cardinality::affinity()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{NodeGroupId, Resources, Tag};
    use medea_constraints::violation_stats;

    fn cluster(n: usize, racks: usize) -> ClusterState {
        ClusterState::homogeneous(n, Resources::new(16 * 1024, 16), racks)
    }

    fn commit(state: &mut ClusterState, reqs: &[LraRequest], outs: &[PlacementOutcome]) {
        for (r, o) in reqs.iter().zip(outs) {
            if let Some(pl) = o.placement() {
                for (c, &n) in r.containers.iter().zip(&pl.nodes) {
                    state
                        .allocate(r.app, n, c, ExecutionKind::LongRunning)
                        .unwrap();
                }
            }
        }
    }

    #[test]
    fn places_within_capacity() {
        let state = cluster(3, 1);
        let req = LraRequest::uniform(
            ApplicationId(1),
            6,
            Resources::new(8 * 1024, 4),
            vec![Tag::new("p")],
            vec![],
        );
        let out = JKubeScheduler::jkube().place(&state, &[req], &[]);
        assert!(out[0].placement().is_some());
    }

    #[test]
    fn anti_affinity_honoured_by_both() {
        for sched in [JKubeScheduler::jkube(), JKubeScheduler::jkube_plus_plus()] {
            let state = cluster(6, 2);
            let caa = PlacementConstraint::anti_affinity("w", "w", NodeGroupId::node());
            let req = LraRequest::uniform(
                ApplicationId(1),
                4,
                Resources::new(1024, 1),
                vec![Tag::new("w")],
                vec![caa.clone()],
            );
            let out = sched.place(&state, std::slice::from_ref(&req), &[]);
            let mut st = cluster(6, 2);
            commit(&mut st, &[req], &out);
            let stats = violation_stats(&st, [&caa]);
            assert_eq!(stats.containers_violating, 0);
        }
    }

    #[test]
    fn jkube_ignores_cardinality_but_plus_plus_honours_it() {
        // "at most 1 other w per node" (i.e. <= 2 collocated) over a
        // 2-node cluster with 6 containers: J-Kube++ must spread 3+3 or
        // fail; J-Kube, ignoring the constraint, will pack by spreading
        // score only and can exceed the cap.
        let card = PlacementConstraint::new("w", "w", Cardinality::at_most(1), NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            6,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![card.clone()],
        );

        let state = cluster(4, 2);
        let out_pp =
            JKubeScheduler::jkube_plus_plus().place(&state, std::slice::from_ref(&req), &[]);
        let mut st_pp = cluster(4, 2);
        commit(&mut st_pp, std::slice::from_ref(&req), &out_pp);
        let v_pp = violation_stats(&st_pp, [&card]);

        let out_jk = JKubeScheduler::jkube().place(&state, std::slice::from_ref(&req), &[]);
        let mut st_jk = cluster(4, 2);
        commit(&mut st_jk, &[req], &out_jk);
        let v_jk = violation_stats(&st_jk, [&card]);

        // J-Kube++ satisfies the cardinality cap (4 nodes x 2 = 8 slots).
        assert_eq!(
            v_pp.containers_violating, 0,
            "J-Kube++ must respect cardinality"
        );
        // J-Kube is at best as good, and with least-allocated spreading of
        // 6 containers over 4 nodes it will collocate at most 2 anyway —
        // so instead check its *behaviour*: it treats the constraint as
        // absent, i.e. places exactly like a constraint-free run.
        let free_req = LraRequest::uniform(
            ApplicationId(1),
            6,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![],
        );
        let out_free = JKubeScheduler::jkube().place(&state, &[free_req], &[]);
        assert_eq!(
            out_jk[0].placement().unwrap().nodes,
            out_free[0].placement().unwrap().nodes,
            "J-Kube must ignore pure cardinality constraints"
        );
        let _ = v_jk;
    }

    #[test]
    fn one_at_a_time_misses_forward_affinity() {
        // consumer submitted BEFORE producer: one-at-a-time scheduling
        // cannot see the future producer, so the affinity is satisfied
        // only by luck; batch-aware schedulers handle this (see the
        // heuristics tests). Here we only assert J-Kube still places both.
        let state = cluster(4, 2);
        let caf = PlacementConstraint::affinity("consumer", "producer", NodeGroupId::node());
        let consumer = LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("consumer")],
            vec![caf],
        );
        let producer = LraRequest::uniform(
            ApplicationId(2),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("producer")],
            vec![],
        );
        let out = JKubeScheduler::jkube().place(&state, &[consumer, producer], &[]);
        assert!(out.iter().all(|o| o.placement().is_some()));
    }

    #[test]
    fn rollback_on_partial_failure() {
        let state = cluster(1, 1);
        let req = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(16 * 1024, 1),
            vec![],
            vec![],
        );
        let out = JKubeScheduler::jkube().place(&state, &[req], &[]);
        assert!(matches!(out[0], PlacementOutcome::Unplaced { .. }));
    }

    #[test]
    fn affinity_to_existing_target() {
        let mut state = cluster(5, 1);
        state
            .allocate(
                ApplicationId(7),
                NodeId(2),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("mem")]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let caf = PlacementConstraint::affinity("storm", "mem", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("storm")],
            vec![caf],
        );
        let out = JKubeScheduler::jkube().place(&state, &[req], &[]);
        assert_eq!(out[0].placement().unwrap().nodes, vec![NodeId(2)]);
    }
}
