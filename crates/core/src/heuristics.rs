//! Heuristic-based LRA scheduling (§5.3): tag popularity, node
//! candidates, and the unordered Serial baseline.
//!
//! All three share a greedy placement engine: containers are placed one at
//! a time on the feasible node with the best [`Scorer`] score (the same
//! objective model the ILP optimizes); they differ only in the *order* in
//! which containers are considered — which is exactly the comparison the
//! paper draws between them.

use std::collections::HashMap;

use medea_cluster::{ClusterState, ContainerRequest, NodeId, Tag};
use medea_constraints::PlacementConstraint;

use crate::objective::{ObjectiveWeights, Scorer};
use crate::request::{LraPlacement, LraRequest, PlacementOutcome};

/// Container ordering strategy of the greedy engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ordering {
    /// §5.3 "tag popularity": place containers whose tags appear in the
    /// most constraints first — they are the hardest to place.
    TagPopularity,
    /// §5.3 "node candidates": place the container with the fewest
    /// constraint-satisfying candidate nodes (`Nc`) first, recomputing
    /// lazily after each placement.
    NodeCandidates,
    /// No ordering: containers are placed in submission order (the
    /// `Serial` baseline of §7.1).
    Submission,
}

/// A unit of greedy work: one container of one request.
#[derive(Debug, Clone)]
struct Item {
    req_idx: usize,
    cont_idx: usize,
    request: ContainerRequest,
}

/// Greedy heuristic LRA scheduler.
pub struct HeuristicScheduler {
    /// Container ordering strategy.
    pub ordering: Ordering,
    /// Objective weights for the shared scorer.
    pub weights: ObjectiveWeights,
}

impl HeuristicScheduler {
    /// Creates a scheduler with the given ordering.
    pub fn new(ordering: Ordering) -> Self {
        HeuristicScheduler {
            ordering,
            weights: ObjectiveWeights::default(),
        }
    }

    /// Places a batch of LRAs greedily on a working copy of the state.
    ///
    /// Like the ILP, the heuristics consider *multiple* container requests
    /// within a scheduling interval (unlike J-Kube): ordering is computed
    /// across the whole batch, and the working copy accumulates tentative
    /// placements so later decisions see earlier ones.
    pub fn place(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
    ) -> Vec<PlacementOutcome> {
        self.place_on(state, requests, deployed_constraints, None)
    }

    /// Like [`HeuristicScheduler::place`], but restricted to an allowed
    /// node list (a shard's nodes). Scoring still sees the full cluster
    /// state — `γ` counts over groups remain globally correct — only the
    /// candidate hosts are restricted. `None` means all nodes.
    ///
    /// Callers must pass `allowed` in ascending node-id order: the greedy
    /// scan breaks score ties by keeping the first maximum, so scan order
    /// is part of the placement contract (sharded runs reproduce
    /// unsharded tie-breaks only because both scan ascending ids).
    pub fn place_on(
        &self,
        state: &ClusterState,
        requests: &[LraRequest],
        deployed_constraints: &[PlacementConstraint],
        allowed: Option<&[NodeId]>,
    ) -> Vec<PlacementOutcome> {
        let mut work = state.clone();
        let mut constraints: Vec<PlacementConstraint> = deployed_constraints.to_vec();
        for r in requests {
            constraints.extend(r.constraints.iter().cloned());
        }
        let scorer = Scorer::new(self.weights, constraints);

        // Flatten items.
        let mut items: Vec<Item> = Vec::new();
        for (ri, r) in requests.iter().enumerate() {
            for (ci, c) in r.containers.iter().enumerate() {
                items.push(Item {
                    req_idx: ri,
                    cont_idx: ci,
                    request: c.clone(),
                });
            }
        }

        // Order the batch.
        match self.ordering {
            Ordering::Submission => {}
            Ordering::TagPopularity => {
                let popularity = tag_popularity(&scorer.constraints);
                items.sort_by_key(|it| {
                    let p: i64 = it
                        .request
                        .tags
                        .iter()
                        .map(|t| popularity.get(t).copied().unwrap_or(0) as i64)
                        .sum();
                    -p
                });
            }
            Ordering::NodeCandidates => {
                // Initial Nc per item; kept approximately fresh below.
            }
        }

        let nodes: Vec<NodeId> = match allowed {
            Some(a) => a.to_vec(),
            None => work.node_ids().collect(),
        };
        let mut placements: Vec<Vec<Option<NodeId>>> = requests
            .iter()
            .map(|r| vec![None; r.containers.len()])
            .collect();
        let mut placed_ids: Vec<Vec<Option<medea_cluster::ContainerId>>> = requests
            .iter()
            .map(|r| vec![None; r.containers.len()])
            .collect();

        if self.ordering == Ordering::NodeCandidates {
            // Node-candidates: repeatedly pick the unplaced item with the
            // smallest Nc. Nc values are recomputed only for items whose
            // placement opportunities may have changed (same-tag items or
            // constraint-related tags — approximated by recomputing items
            // sharing any tag with the last placed container, per §5.3).
            let mut nc: Vec<Option<usize>> = items
                .iter()
                .map(|it| {
                    Some(count_candidates(
                        &scorer,
                        &mut work,
                        requests[it.req_idx].app,
                        &it.request,
                        &nodes,
                    ))
                })
                .collect();
            let mut remaining: Vec<usize> = (0..items.len()).collect();
            while !remaining.is_empty() {
                // Pick the remaining item with the smallest Nc.
                let Some((pos, &item_idx)) = remaining
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &i)| nc.get(i).copied().flatten().unwrap_or(usize::MAX))
                else {
                    break;
                };
                remaining.swap_remove(pos);
                let it = &items[item_idx];
                let app = requests[it.req_idx].app;
                if let Some((node, id)) = place_best(&scorer, &mut work, app, &it.request, &nodes) {
                    placements[it.req_idx][it.cont_idx] = Some(node);
                    placed_ids[it.req_idx][it.cont_idx] = Some(id);
                    // Lazy recompute: only items sharing a tag with the
                    // placed container.
                    for &other in &remaining {
                        let shares = items[other]
                            .request
                            .tags
                            .iter()
                            .any(|t| it.request.tags.contains(t));
                        if shares {
                            let oit = &items[other];
                            nc[other] = Some(count_candidates(
                                &scorer,
                                &mut work,
                                requests[oit.req_idx].app,
                                &oit.request,
                                &nodes,
                            ));
                        }
                    }
                }
            }
        } else {
            for it in &items {
                let app = requests[it.req_idx].app;
                if let Some((node, id)) = place_best(&scorer, &mut work, app, &it.request, &nodes) {
                    placements[it.req_idx][it.cont_idx] = Some(node);
                    placed_ids[it.req_idx][it.cont_idx] = Some(id);
                }
            }
        }

        // All-or-nothing per LRA: roll back partially placed apps.
        let mut outcomes = Vec::with_capacity(requests.len());
        for (ri, r) in requests.iter().enumerate() {
            if placements[ri].iter().all(|p| p.is_some()) {
                outcomes.push(PlacementOutcome::Placed(LraPlacement {
                    app: r.app,
                    nodes: placements[ri].iter().filter_map(|p| *p).collect(),
                }));
            } else {
                for id in placed_ids[ri].iter().flatten() {
                    let _ = work.release(*id);
                }
                outcomes.push(PlacementOutcome::Unplaced { app: r.app });
            }
        }
        outcomes
    }
}

/// Places one container on the best-scoring feasible node of the working
/// state; returns the node and the tentative container id.
fn place_best(
    scorer: &Scorer,
    work: &mut ClusterState,
    app: medea_cluster::ApplicationId,
    request: &ContainerRequest,
    nodes: &[NodeId],
) -> Option<(NodeId, medea_cluster::ContainerId)> {
    let mut best: Option<(NodeId, f64)> = None;
    for &n in nodes {
        if let Some(s) = scorer.score(work, app, request, n) {
            // total_cmp keeps the argmax well-defined for every score the
            // scorer can emit (scores are finite by contract, but a partial
            // comparison here would silently mis-order if that ever broke);
            // strict Greater keeps first-wins tie-breaking in scan order.
            if best.is_none_or(|(_, bs)| s.total_cmp(&bs) == std::cmp::Ordering::Greater) {
                best = Some((n, s));
            }
        }
    }
    let (node, _) = best?;
    let id = work
        .allocate(
            app,
            node,
            request,
            medea_cluster::ExecutionKind::LongRunning,
        )
        .ok()?;
    Some((node, id))
}

/// Number of nodes on which the container can be placed without any new
/// violation (`Nc` of §5.3).
fn count_candidates(
    scorer: &Scorer,
    work: &mut ClusterState,
    app: medea_cluster::ApplicationId,
    request: &ContainerRequest,
    nodes: &[NodeId],
) -> usize {
    nodes
        .iter()
        .filter(|&&n| scorer.is_violation_free(work, app, request, n))
        .count()
}

/// Counts, per tag, how many constraints mention it (§5.3 tag popularity).
fn tag_popularity(constraints: &[PlacementConstraint]) -> HashMap<Tag, usize> {
    let mut pop: HashMap<Tag, usize> = HashMap::new();
    for c in constraints {
        for t in c.mentioned_tags() {
            *pop.entry(t).or_default() += 1;
        }
    }
    pop
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{ApplicationId, NodeGroupId, Resources};
    use medea_constraints::violation_stats;

    fn cluster(n: usize, racks: usize) -> ClusterState {
        ClusterState::homogeneous(n, Resources::new(16 * 1024, 16), racks)
    }

    fn commit(state: &mut ClusterState, reqs: &[LraRequest], outs: &[PlacementOutcome]) {
        for (r, o) in reqs.iter().zip(outs) {
            if let Some(pl) = o.placement() {
                for (c, &n) in r.containers.iter().zip(&pl.nodes) {
                    state
                        .allocate(r.app, n, c, medea_cluster::ExecutionKind::LongRunning)
                        .unwrap();
                }
            }
        }
    }

    #[test]
    fn all_orderings_place_simple_batch() {
        for ordering in [
            Ordering::Submission,
            Ordering::TagPopularity,
            Ordering::NodeCandidates,
        ] {
            let state = cluster(4, 2);
            let req = LraRequest::uniform(
                ApplicationId(1),
                4,
                Resources::new(2048, 1),
                vec![Tag::new("x")],
                vec![],
            );
            let out = HeuristicScheduler::new(ordering).place(&state, &[req], &[]);
            assert!(out[0].placement().is_some(), "{ordering:?} failed to place");
        }
    }

    #[test]
    fn anti_affinity_respected_when_room() {
        let state = cluster(6, 2);
        let caa = PlacementConstraint::anti_affinity("w", "w", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(1),
            4,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![caa.clone()],
        );
        let out = HeuristicScheduler::new(Ordering::NodeCandidates).place(
            &state,
            std::slice::from_ref(&req),
            &[],
        );
        let mut st = cluster(6, 2);
        commit(&mut st, &[req], &out);
        let stats = violation_stats(&st, [&caa]);
        assert_eq!(stats.containers_violating, 0);
    }

    #[test]
    fn all_or_nothing_rollback() {
        // 3 containers of 16 GB in a 2-node cluster: at most 2 fit, so the
        // heuristic must report Unplaced and leave no partial allocation.
        let state = cluster(2, 1);
        let req = LraRequest::uniform(
            ApplicationId(1),
            3,
            Resources::new(16 * 1024, 1),
            vec![Tag::new("big")],
            vec![],
        );
        let out = HeuristicScheduler::new(Ordering::Submission).place(&state, &[req], &[]);
        assert!(matches!(out[0], PlacementOutcome::Unplaced { .. }));
    }

    #[test]
    fn tag_popularity_orders_constrained_first() {
        let constraints = vec![
            PlacementConstraint::anti_affinity("hot", "hot", NodeGroupId::node()),
            PlacementConstraint::affinity("hot", "cache", NodeGroupId::node()),
        ];
        let pop = tag_popularity(&constraints);
        assert_eq!(pop.get(&Tag::new("hot")), Some(&2));
        assert_eq!(pop.get(&Tag::new("cache")), Some(&1));
    }

    #[test]
    fn batch_awareness_satisfies_inter_app_affinity() {
        // Two LRAs submitted together; the second has affinity to the
        // first. Batch-aware greedy (unlike one-at-a-time J-Kube) places
        // the producer first (popularity) and then the consumer next to it.
        let state = cluster(6, 3);
        let caf = PlacementConstraint::affinity("consumer", "producer", NodeGroupId::rack());
        let producer = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("producer")],
            vec![],
        );
        let consumer = LraRequest::uniform(
            ApplicationId(2),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("consumer")],
            vec![caf.clone()],
        );
        let reqs = [producer, consumer];
        let out = HeuristicScheduler::new(Ordering::TagPopularity).place(&state, &reqs, &[]);
        let mut st = cluster(6, 3);
        commit(&mut st, &reqs, &out);
        let stats = violation_stats(&st, [&caf]);
        assert_eq!(
            stats.containers_violating, 0,
            "batch-aware heuristic should satisfy inter-app affinity"
        );
    }

    #[test]
    fn zero_capacity_node_scores_finite_and_loses() {
        // The 0/0 utilization-share class of NaN scores: a zero-capacity
        // node is feasible for a zero-demand container, and its balance
        // term divides by zero capacity. The scorer must produce a finite
        // score or None for it — a NaN score would poison the greedy
        // argmax (NaN neither wins nor loses a `>` comparison, so
        // whichever node is scanned first would stick) — and placement
        // must deterministically land on the real node.
        use medea_cluster::Node;
        let state = ClusterState::new(
            vec![
                Node::new(NodeId(0), Resources::new(0, 0)),
                Node::new(NodeId(1), Resources::new(16 * 1024, 16)),
            ],
            1,
        );
        let scorer = Scorer::new(ObjectiveWeights::default(), vec![]);
        let req_zero = ContainerRequest::new(Resources::new(0, 0), [Tag::new("z")]);
        let mut probe = state.clone();
        for n in [NodeId(0), NodeId(1)] {
            if let Some(s) = scorer.score(&mut probe, ApplicationId(7), &req_zero, n) {
                assert!(s.is_finite(), "score on {n:?} must never be NaN/inf");
            }
        }
        let req = LraRequest {
            app: ApplicationId(1),
            containers: vec![req_zero],
            constraints: vec![],
        };
        for ordering in [
            Ordering::Submission,
            Ordering::TagPopularity,
            Ordering::NodeCandidates,
        ] {
            let out =
                HeuristicScheduler::new(ordering).place(&state, std::slice::from_ref(&req), &[]);
            let pl = out[0].placement().unwrap();
            assert_eq!(pl.nodes, vec![NodeId(1)], "{ordering:?}");
        }
    }

    #[test]
    fn place_on_restricts_candidate_hosts() {
        let state = cluster(6, 3);
        let req = LraRequest::uniform(
            ApplicationId(1),
            3,
            Resources::new(1024, 1),
            vec![Tag::new("s")],
            vec![],
        );
        let allowed = [NodeId(2), NodeId(3)];
        let out = HeuristicScheduler::new(Ordering::Submission).place_on(
            &state,
            &[req],
            &[],
            Some(&allowed),
        );
        let pl = out[0].placement().unwrap();
        assert!(pl.nodes.iter().all(|n| allowed.contains(n)));
    }

    #[test]
    fn deployed_constraints_steer_placement() {
        let mut state = cluster(4, 2);
        state
            .allocate(
                ApplicationId(9),
                NodeId(0),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("svc")]),
                medea_cluster::ExecutionKind::LongRunning,
            )
            .unwrap();
        let deployed = PlacementConstraint::anti_affinity("svc", "noisy", NodeGroupId::node());
        let req = LraRequest::uniform(
            ApplicationId(2),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("noisy")],
            vec![],
        );
        let out = HeuristicScheduler::new(Ordering::Submission).place(&state, &[req], &[deployed]);
        let pl = out[0].placement().unwrap();
        assert!(pl.nodes.iter().all(|&n| n != NodeId(0)));
    }
}
