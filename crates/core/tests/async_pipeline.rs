//! Commit-time conflict tests for the propose/validate/commit pipeline.
//!
//! The LRA solve runs against a frozen snapshot while the live cluster
//! keeps mutating (§5.3); at commit time every proposed placement is
//! re-validated (§5.4). These tests drive the two phases by hand and
//! mutate the live state in between, covering the three drift classes:
//! capacity consumed by task containers, node crashes, and γ-cardinality
//! drift — each must re-queue exactly the conflicted entries and keep the
//! recovery accounting invariant (lost = replaced + unplaceable +
//! pending) intact mid-solve.

use std::sync::Arc;

use medea_cluster::{
    ApplicationId, ClusterState, ContainerRequest, ExecutionKind, NodeGroupId, Resources, Tag,
};
use medea_constraints::PlacementConstraint;
use medea_core::{LraAlgorithm, LraRequest, MedeaScheduler};
use medea_obs::MetricsRegistry;

fn lra(app: u64, count: usize, mem: u64, tag: &str) -> LraRequest {
    LraRequest::uniform(
        ApplicationId(app),
        count,
        Resources::new(mem, 1),
        vec![Tag::new(tag)],
        vec![],
    )
}

fn req(mem: u64, tag: &str) -> ContainerRequest {
    ContainerRequest::new(Resources::new(mem, 1), [Tag::new(tag)])
}

#[test]
fn propose_commit_same_tick_equals_tick() {
    let mk = || {
        let mut m = MedeaScheduler::new(
            ClusterState::homogeneous(4, Resources::new(8192, 8), 2),
            LraAlgorithm::Serial,
            10,
        );
        m.submit_lra(lra(1, 3, 1024, "a"), 0).unwrap();
        m.submit_lra(lra(2, 2, 2048, "b"), 0).unwrap();
        m
    };
    let mut via_tick = mk();
    let t = via_tick.tick(0);
    let mut via_phases = mk();
    let solve = via_phases.propose(0).expect("batch must propose");
    let p = via_phases.commit(0, solve);
    assert_eq!(t.len(), p.len());
    for (a, b) in t.iter().zip(&p) {
        assert_eq!(a.app, b.app);
        assert_eq!(a.nodes, b.nodes);
        assert_eq!(a.latency_ticks, b.latency_ticks);
    }
}

#[test]
fn single_solve_in_flight() {
    let mut m = MedeaScheduler::new(
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2),
        LraAlgorithm::Serial,
        10,
    );
    m.submit_lra(lra(1, 1, 1024, "a"), 0).unwrap();
    m.submit_lra(lra(2, 1, 1024, "b"), 0).unwrap();
    let solve = m.propose(0).expect("first propose runs");
    assert!(m.solve_inflight());
    // A second propose is refused while one is in flight, even past the
    // interval, and does not consume a cycle.
    m.submit_lra(lra(3, 1, 1024, "c"), 5).unwrap();
    assert!(m.propose(20).is_none());
    assert_eq!(m.stats().cycles, 1);
    let deployed = m.commit(7, solve);
    assert_eq!(deployed.len(), 2);
    assert!(!m.solve_inflight());
    // Commit-time, not propose-time, defines deployment latency.
    assert!(deployed.iter().all(|d| d.latency_ticks == 7));
}

#[test]
fn task_capacity_consumed_mid_solve_conflicts_exactly_the_victim() {
    // Two nodes that fit exactly one 4 GB LRA container each. Two
    // single-container LRAs are proposed, one per node; a task container
    // eats one node's capacity mid-solve. Only the LRA proposed on that
    // node may conflict.
    let mut m = MedeaScheduler::new(
        ClusterState::homogeneous(2, Resources::new(4096, 4), 1),
        LraAlgorithm::Serial,
        10,
    );
    m.submit_lra(lra(1, 1, 4096, "a"), 0).unwrap();
    m.submit_lra(lra(2, 1, 4096, "b"), 0).unwrap();
    let solve = m.propose(0).expect("batch proposes");
    let placements = solve.placements();
    assert_eq!(placements.len(), 2);
    let (victim_app, victim_node) = (placements[0].0, placements[0].1[0]);
    let survivor_app = placements[1].0;
    assert_ne!(placements[1].1[0], victim_node, "one LRA per node");

    // A task container grabs the victim node while the solve is in
    // flight (live state mutates; the snapshot the solver used did not).
    let task = m
        .state_mut()
        .allocate(
            ApplicationId(99),
            victim_node,
            &req(4096, "task"),
            ExecutionKind::Task,
        )
        .unwrap();

    let deployed = m.commit(5, solve);
    assert_eq!(deployed.len(), 1, "only the untouched placement commits");
    assert_eq!(deployed[0].app, survivor_app);
    assert_eq!(m.stats().commit_conflicts, 1);
    assert_eq!(m.pending_lras(), 1, "conflicted LRA is re-queued");
    // No partial allocation leaked: cluster holds the task container and
    // the survivor LRA only.
    assert_eq!(m.state().num_containers(), 2);

    // Once the task frees the capacity, the resubmitted LRA lands.
    m.state_mut().release(task).unwrap();
    let retry = m.tick(10);
    assert_eq!(retry.len(), 1);
    assert_eq!(retry[0].app, victim_app);
    assert_eq!(m.stats().lras_deployed, 2);
}

#[test]
fn node_crash_mid_solve_invalidates_and_recovery_accounting_holds() {
    // app1 spreads one container per node. app2's single container is
    // proposed while app1 is deployed; the node app2 targets crashes
    // mid-solve, killing app1's container there and invalidating app2's
    // proposal in the same stroke.
    let mut m = MedeaScheduler::new(
        ClusterState::homogeneous(2, Resources::new(8192, 8), 1),
        LraAlgorithm::Serial,
        10,
    );
    let spread = PlacementConstraint::anti_affinity("w", "w", NodeGroupId::node());
    m.submit_lra(
        LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("w")],
            vec![spread],
        ),
        0,
    )
    .unwrap();
    assert_eq!(m.tick(0).len(), 1);

    m.submit_lra(lra(2, 1, 1024, "v"), 5).unwrap();
    let solve = m.propose(10).expect("app2 proposes");
    let victim = solve.placements()[0].1[0];

    let report = m.node_lost(victim, 12);
    assert_eq!(report.lra_containers_lost, 1, "app1 lost its leg there");
    // Invariant holds *mid-solve*: 1 lost, 1 pending (the queued
    // recovery request), nothing replaced or unplaceable yet.
    let r = m.recovery_report();
    assert_eq!(r.containers_lost, 1);
    assert_eq!(r.containers_pending, 1);
    assert!(r.accounted());

    let deployed = m.commit(14, solve);
    assert!(deployed.is_empty(), "crashed-node placement must not leak");
    assert_eq!(m.stats().commit_conflicts, 1);
    assert_eq!(m.pending_lras(), 2, "app2 re-queued next to the recovery");
    assert!(m.recovery_report().accounted());

    // The recovery batch itself goes through the pipeline: while it is
    // in flight its containers still count as pending.
    let solve2 = m.propose(20).expect("recovery + resubmission propose");
    let r = m.recovery_report();
    assert_eq!(r.containers_pending, 1, "in-flight recovery is pending");
    assert!(r.accounted());
    let deployed = m.commit(22, solve2);
    assert_eq!(deployed.len(), 2);
    assert!(deployed.iter().any(|d| d.recovered));
    assert!(deployed
        .iter()
        .all(|d| d.nodes.iter().all(|&n| n != victim)));
    let r = m.recovery_report();
    assert_eq!(r.containers_replaced, 1);
    assert_eq!(r.containers_pending, 0);
    assert!(r.accounted());
}

#[test]
fn gamma_cardinality_drift_mid_solve_conflicts() {
    // app1's container is anti-affine to tag "noisy" on its node. At
    // propose time the chosen node is clean (baseline: zero violations);
    // a noisy container lands there mid-solve. Committing the stale
    // proposal would violate a constraint the solver had satisfied —
    // that is γ drift, and the entry must conflict and re-queue.
    let mut m = MedeaScheduler::new(
        ClusterState::homogeneous(2, Resources::new(8192, 8), 1),
        LraAlgorithm::Serial,
        10,
    );
    let avoid_noisy = PlacementConstraint::anti_affinity("b", "noisy", NodeGroupId::node());
    m.submit_lra(
        LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("b")],
            vec![avoid_noisy],
        ),
        0,
    )
    .unwrap();
    let solve = m.propose(0).expect("proposes");
    let chosen = solve.placements()[0].1[0];

    m.state_mut()
        .allocate(
            ApplicationId(9),
            chosen,
            &req(512, "noisy"),
            ExecutionKind::LongRunning,
        )
        .unwrap();

    let deployed = m.commit(5, solve);
    assert!(deployed.is_empty(), "drifted placement must conflict");
    assert_eq!(m.stats().commit_conflicts, 1);
    assert_eq!(m.pending_lras(), 1);
    // Rolled back cleanly: only the noisy container is live.
    assert_eq!(m.state().num_containers(), 1);

    // The retry solves against current state and avoids the noisy node.
    let retry = m.tick(10);
    assert_eq!(retry.len(), 1);
    assert_ne!(retry[0].nodes[0], chosen);
}

#[test]
fn unrelated_mutations_do_not_conflict() {
    // Drift detection is a baseline diff, not freshness paranoia: live
    // mutations that leave the proposed placement valid commit fine.
    let mut m = MedeaScheduler::new(
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2),
        LraAlgorithm::Serial,
        10,
    );
    m.submit_lra(lra(1, 2, 1024, "a"), 0).unwrap();
    let solve = m.propose(0).expect("proposes");
    // Plenty of headroom: small task containers on every node.
    for n in m.state().node_ids().collect::<Vec<_>>() {
        m.state_mut()
            .allocate(ApplicationId(50), n, &req(256, "t"), ExecutionKind::Task)
            .unwrap();
    }
    let deployed = m.commit(3, solve);
    assert_eq!(deployed.len(), 1);
    assert_eq!(m.stats().commit_conflicts, 0);
}

#[test]
fn pipeline_metrics_flow() {
    let registry = MetricsRegistry::new();
    let mut m = MedeaScheduler::new(
        ClusterState::homogeneous(2, Resources::new(4096, 4), 1),
        LraAlgorithm::Serial,
        10,
    )
    .with_metrics(Arc::clone(&registry));
    m.submit_lra(lra(1, 1, 4096, "a"), 0).unwrap();
    let solve = m.propose(0).unwrap();
    assert_eq!(registry.snapshot().gauge("core.solve_inflight"), Some(1));
    let chosen = solve.placements()[0].1[0];
    m.state_mut()
        .allocate(
            ApplicationId(9),
            chosen,
            &req(4096, "t"),
            ExecutionKind::Task,
        )
        .unwrap();
    let _ = m.commit(6, solve);
    let snap = registry.snapshot();
    assert_eq!(snap.gauge("core.solve_inflight"), Some(0));
    assert_eq!(snap.counter("core.commit_conflicts_total"), Some(1));
    let staleness = snap
        .histogram("core.placement_staleness_ticks")
        .expect("staleness histogram recorded");
    assert_eq!(staleness.count, 1);
    assert_eq!(staleness.max, 6, "committed 6 ticks after propose");
    // Queue depth was set exactly once, at cycle end, to the re-queued
    // entry count.
    assert_eq!(snap.gauge("core.queue_depth"), Some(1));
}
