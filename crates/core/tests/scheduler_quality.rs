//! Cross-algorithm placement-quality tests: the orderings the paper's
//! evaluation establishes must hold in this implementation on controlled
//! scenarios (deterministic, no statistical flakiness).

use medea_cluster::{
    ApplicationId, ClusterState, ContainerRequest, ExecutionKind, NodeGroupId, NodeId, Resources,
    Tag,
};
use medea_constraints::{violation_stats, Cardinality, PlacementConstraint, TagExpr};
use medea_core::{LraAlgorithm, LraRequest, LraScheduler};

fn commit(state: &mut ClusterState, reqs: &[LraRequest], alg: LraAlgorithm) -> usize {
    let scheduler = LraScheduler::new(alg);
    let mut constraints = Vec::new();
    let mut placed = 0;
    for batch in reqs.chunks(2) {
        let outcomes = scheduler.place(state, batch, &constraints);
        for (req, out) in batch.iter().zip(outcomes) {
            if let Some(pl) = out.placement() {
                for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                    state
                        .allocate(req.app, n, c, ExecutionKind::LongRunning)
                        .expect("proposal fits");
                }
                constraints.extend(req.constraints.iter().cloned());
                placed += 1;
            }
        }
    }
    placed
}

/// Workload with a tight cardinality cap: every placement is feasible
/// violation-free only with careful balancing.
fn capped_workload(n: usize) -> Vec<LraRequest> {
    (0..n)
        .map(|i| {
            LraRequest::uniform(
                ApplicationId(100 + i as u64),
                6,
                Resources::new(2048, 1),
                vec![Tag::new("w")],
                vec![PlacementConstraint::new(
                    "w",
                    "w",
                    Cardinality::at_most(2),
                    NodeGroupId::node(),
                )],
            )
        })
        .collect()
}

#[test]
fn constraint_aware_algorithms_beat_yarn_on_violations() {
    // 4 apps x 6 workers = 24 workers; 8 nodes x cap 3 = 24 slots: tight
    // but satisfiable.
    let reqs = capped_workload(4);
    let all_constraints: Vec<_> = reqs.iter().flat_map(|r| r.constraints.clone()).collect();
    let mut results = Vec::new();
    for alg in [
        LraAlgorithm::Ilp,
        LraAlgorithm::NodeCandidates,
        LraAlgorithm::TagPopularity,
        LraAlgorithm::Yarn,
    ] {
        let mut state = ClusterState::homogeneous(8, Resources::new(16 * 1024, 16), 2);
        let placed = commit(&mut state, &reqs, alg);
        assert_eq!(placed, 4, "{alg} must place everything");
        let v = violation_stats(&state, all_constraints.iter());
        results.push((alg, v.containers_violating));
    }
    let get = |a: LraAlgorithm| results.iter().find(|(x, _)| *x == a).unwrap().1;
    // Medea's algorithms achieve zero violations on a satisfiable
    // workload; YARN (constraint-unaware least-allocated) happens to
    // spread, so assert only the weak ordering for it.
    assert_eq!(get(LraAlgorithm::Ilp), 0);
    assert_eq!(get(LraAlgorithm::NodeCandidates), 0);
    assert_eq!(get(LraAlgorithm::TagPopularity), 0);
    assert!(get(LraAlgorithm::Yarn) >= get(LraAlgorithm::Ilp));
}

#[test]
fn jkube_plus_plus_beats_jkube_under_cardinality_pressure() {
    // Nodes pre-loaded unevenly so least-allocated spreading collides
    // with the cardinality cap unless the scheduler actually checks it.
    let build = || {
        let mut s = ClusterState::homogeneous(6, Resources::new(16 * 1024, 16), 2);
        // Make nodes 3-5 look most attractive to least-allocated by
        // loading nodes 0-2 with ballast.
        for n in 0..3u32 {
            s.allocate(
                ApplicationId(9),
                NodeId(n),
                &ContainerRequest::new(Resources::new(6 * 1024, 2), []),
                ExecutionKind::Task,
            )
            .unwrap();
        }
        s
    };
    let reqs = capped_workload(3); // 18 workers, cap 3/node over 6 nodes: exact fit.
    let all_constraints: Vec<_> = reqs.iter().flat_map(|r| r.constraints.clone()).collect();

    let mut jk = build();
    commit(&mut jk, &reqs, LraAlgorithm::JKube);
    let v_jk = violation_stats(&jk, all_constraints.iter()).containers_violating;

    let mut jkpp = build();
    commit(&mut jkpp, &reqs, LraAlgorithm::JKubePlusPlus);
    let v_jkpp = violation_stats(&jkpp, all_constraints.iter()).containers_violating;

    assert!(
        v_jkpp <= v_jk,
        "cardinality support must not hurt: J-Kube++ {v_jkpp} vs J-Kube {v_jk}"
    );
    assert_eq!(v_jkpp, 0, "J-Kube++ must satisfy the satisfiable cap");
}

#[test]
fn batch_ilp_handles_forward_references_one_at_a_time_cannot() {
    // The §7.4 periodicity scenario distilled: a consumer whose affinity
    // targets a producer submitted in the same batch but *later*.
    let consumer = LraRequest::uniform(
        ApplicationId(1),
        3,
        Resources::new(2048, 1),
        vec![Tag::new("cons")],
        vec![PlacementConstraint::affinity(
            TagExpr::tag(Tag::new("cons")),
            TagExpr::tag(Tag::new("prod")),
            NodeGroupId::rack(),
        )],
    );
    let producer = LraRequest::uniform(
        ApplicationId(2),
        3,
        Resources::new(2048, 1),
        vec![Tag::new("prod")],
        vec![],
    );
    let reqs = [consumer.clone(), producer];
    let scheduler = LraScheduler::new(LraAlgorithm::Ilp);
    let state = ClusterState::homogeneous(12, Resources::new(16 * 1024, 16), 4);
    let outcomes = scheduler.place(&state, &reqs, &[]);
    // Commit and verify the affinity holds at placement time — the batch
    // ILP co-locates the racks deliberately, not by repair.
    let mut committed = state.clone();
    for (req, out) in reqs.iter().zip(&outcomes) {
        let pl = out.placement().expect("both placed");
        for (c, &n) in req.containers.iter().zip(&pl.nodes) {
            committed
                .allocate(req.app, n, c, ExecutionKind::LongRunning)
                .unwrap();
        }
    }
    let v = violation_stats(&committed, consumer.constraints.iter());
    assert_eq!(
        v.containers_violating, 0,
        "batch ILP must satisfy the forward reference at placement time"
    );
}

#[test]
fn ilp_quality_is_never_below_its_heuristic_start() {
    // The anytime guarantee: on any scenario, ILP violations cannot
    // exceed NC violations (NC's placement seeds the search).
    for seed_nodes in [6usize, 10] {
        let reqs = capped_workload(3);
        let all_constraints: Vec<_> = reqs.iter().flat_map(|r| r.constraints.clone()).collect();
        let mut nc_state = ClusterState::homogeneous(seed_nodes, Resources::new(16 * 1024, 16), 2);
        commit(&mut nc_state, &reqs, LraAlgorithm::NodeCandidates);
        let v_nc = violation_stats(&nc_state, all_constraints.iter()).containers_violating;

        let mut ilp_state = ClusterState::homogeneous(seed_nodes, Resources::new(16 * 1024, 16), 2);
        commit(&mut ilp_state, &reqs, LraAlgorithm::Ilp);
        let v_ilp = violation_stats(&ilp_state, all_constraints.iter()).containers_violating;

        assert!(
            v_ilp <= v_nc,
            "{seed_nodes} nodes: ILP ({v_ilp}) must not be worse than NC ({v_nc})"
        );
    }
}
