//! Work-preserving restart suite: RM failover with journal restore,
//! in-flight solve requeueing, and anti-entropy reconciliation against
//! node reports.

use medea_cluster::{ApplicationId, ClusterState, ContainerId, NodeId, Resources, Tag};
use medea_core::{LraAlgorithm, LraRequest, MedeaScheduler, NodeReport, TaskJobRequest};
use medea_journal::{MemoryStorage, Wal};

fn cluster() -> ClusterState {
    ClusterState::homogeneous(4, Resources::new(8192, 8), 2)
}

fn lra(app: u64, count: usize, mem: u64, tag: &str) -> LraRequest {
    LraRequest::uniform(
        ApplicationId(app),
        count,
        Resources::new(mem, 1),
        vec![Tag::new(tag)],
        vec![],
    )
}

/// Ground-truth node reports: every node re-registers with exactly what
/// the scheduler believes it hosts (the zero-divergence baseline).
fn faithful_reports(m: &MedeaScheduler) -> Vec<NodeReport> {
    m.state()
        .node_ids()
        .map(|n| NodeReport {
            node: n,
            available: m.state().is_available(n),
            containers: m
                .state()
                .containers_on(n)
                .map(|c| c.to_vec())
                .unwrap_or_default(),
        })
        .collect()
}

#[test]
fn restart_requeues_inflight_solves_and_refuses_stale_commits() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
    m.submit_lra(lra(1, 2, 1024, "a"), 0).unwrap();
    m.submit_lra(lra(2, 1, 1024, "b"), 0).unwrap();
    let solve = m.propose(0).expect("solve should start");
    assert!(m.solve_inflight());

    let report = m.restart(5, &faithful_reports(&m)).unwrap();
    assert!(!report.restored_from_journal, "no journal attached");
    assert_eq!(report.inflight_solves_dropped, 1);
    assert_eq!(report.inflight_lras_requeued, 2);
    assert!(!m.solve_inflight(), "restart clears the inflight gate");
    assert!(report.audit_error.is_none());

    // The pre-restart solve is from a dead incarnation: committing it
    // must be a no-op, not a double placement.
    assert!(m.commit(5, solve).is_empty());
    assert_eq!(m.state().num_containers(), 0);

    // The requeued entries deploy at the next interval.
    let deployed = m.tick(10);
    assert_eq!(deployed.len(), 2);
    assert_eq!(m.state().num_containers(), 3);
}

#[test]
fn journaled_restart_rebuilds_identical_state() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::NodeCandidates, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 0).unwrap();
    m.submit_lra(lra(1, 3, 1024, "svc"), 0).unwrap();
    assert_eq!(m.tick(0).len(), 1);
    m.submit_tasks(
        TaskJobRequest::new(ApplicationId(9), Resources::new(512, 1), 2),
        1,
    )
    .unwrap();
    m.heartbeat(NodeId(0), 1);
    let before = m.state().digest();

    let report = m.restart(5, &faithful_reports(&m)).unwrap();
    assert!(report.restored_from_journal);
    assert!(report.replayed_ops > 0, "tail must have been replayed");
    assert_eq!(report.phantom_containers_released, 0);
    assert_eq!(report.unknown_containers_reported, 0);
    assert_eq!(report.nodes_marked_lost, 0);
    assert!(report.audit_error.is_none());
    assert_eq!(m.state().digest(), before, "zero-loss restart is exact");
    // The rebuilt state keeps journaling: a post-restart mutation
    // appends to the same WAL.
    let appends = m.journal_stats().records_appended;
    m.submit_tasks(
        TaskJobRequest::new(ApplicationId(10), Resources::new(512, 1), 1),
        6,
    )
    .unwrap();
    m.heartbeat(NodeId(1), 6);
    assert!(m.journal_stats().records_appended > appends);
}

#[test]
fn phantom_containers_route_through_recovery_and_stay_accounted() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::NodeCandidates, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 0).unwrap();
    m.submit_lra(lra(1, 2, 1024, "svc"), 0).unwrap();
    let deployed = m.tick(0);
    assert_eq!(deployed.len(), 1);
    let victim = deployed[0].containers[0];

    // The outage killed one container: its node re-registers without it.
    let mut reports = faithful_reports(&m);
    for r in &mut reports {
        r.containers.retain(|&c| c != victim);
    }
    let report = m.restart(5, &reports).unwrap();
    assert_eq!(report.phantom_containers_released, 1);
    assert_eq!(report.lost_lra_containers, 1);
    assert_eq!(report.lost_task_containers, 0);
    assert!(report.audit_error.is_none());
    let r = m.recovery_report();
    assert_eq!(r.containers_lost, 1);
    assert_eq!(r.containers_pending, 1, "phantom enters the recovery queue");
    assert!(r.accounted(), "lost = replaced + unplaceable + pending");

    // The recovery pipeline replaces it at the next interval.
    let redeployed = m.tick(10);
    assert_eq!(redeployed.len(), 1);
    assert!(redeployed[0].recovered);
    let r = m.recovery_report();
    assert_eq!(r.containers_replaced, 1);
    assert!(r.accounted());
}

#[test]
fn phantom_task_containers_repair_queue_accounting() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 0).unwrap();
    m.submit_tasks(
        TaskJobRequest::new(ApplicationId(7), Resources::new(1024, 1), 3),
        0,
    )
    .unwrap();
    let allocs = m.heartbeat(NodeId(2), 0);
    assert_eq!(allocs.len(), 3);

    let mut reports = faithful_reports(&m);
    for r in &mut reports {
        r.containers.retain(|&c| c != allocs[0].container);
    }
    let report = m.restart(5, &reports).unwrap();
    assert_eq!(report.lost_task_containers, 1);
    assert_eq!(report.lost_lra_containers, 0);
    assert_eq!(m.state().num_containers(), 2);
    // Task losses never enter LRA recovery accounting.
    assert_eq!(m.recovery_report().containers_lost, 0);
}

#[test]
fn silent_nodes_are_marked_lost() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::NodeCandidates, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 0).unwrap();
    m.submit_lra(lra(1, 2, 1024, "svc"), 0).unwrap();
    let deployed = m.tick(0);
    assert_eq!(deployed.len(), 1);
    let dead = deployed[0].nodes[0];
    let lost_here = deployed[0].nodes.iter().filter(|&&n| n == dead).count();

    // One node never re-registers after the failover.
    let reports: Vec<NodeReport> = faithful_reports(&m)
        .into_iter()
        .filter(|r| r.node != dead)
        .collect();
    let report = m.restart(5, &reports).unwrap();
    assert_eq!(report.nodes_marked_lost, 1);
    assert!(!m.state().is_available(dead));
    let r = m.recovery_report();
    assert_eq!(r.containers_lost, lost_here);
    assert!(r.accounted());

    // Replacements avoid the dead node.
    let redeployed = m.tick(10);
    assert_eq!(redeployed.len(), 1);
    assert!(redeployed[0].nodes.iter().all(|&n| n != dead));
}

#[test]
fn unknown_reported_containers_are_counted_not_adopted() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 0).unwrap();
    let mut reports = faithful_reports(&m);
    reports[0].containers.push(ContainerId(999));
    let report = m.restart(5, &reports).unwrap();
    assert_eq!(report.unknown_containers_reported, 1);
    assert_eq!(m.state().num_containers(), 0);
    assert!(report.audit_error.is_none());
}

#[test]
fn recovery_invariant_survives_restart_mid_solve() {
    // Lose a node, let the recovery batch go in flight, then crash the
    // RM mid-solve: the lost containers must stay accounted (pending)
    // across the restart boundary and still be replaced afterwards.
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::NodeCandidates, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 0).unwrap();
    m.submit_lra(lra(1, 2, 1024, "svc"), 0).unwrap();
    let deployed = m.tick(0);
    let victim_node = deployed[0].nodes[0];
    let lost = m.node_lost(victim_node, 5).lra_containers_lost;
    assert!(lost > 0);

    let solve = m.propose(10).expect("recovery batch solves");
    assert!(m.recovery_report().accounted(), "pending counts in-flight");
    let report = m.restart(12, &faithful_reports(&m)).unwrap();
    assert_eq!(report.inflight_lras_requeued, 1);
    assert!(m.recovery_report().accounted(), "accounted across restart");
    assert!(m.commit(12, solve).is_empty(), "stale solve refused");

    // The requeue went through §5.4 resubmission: recovery entries back
    // off (base 10 ticks) before their next attempt.
    let redeployed = m.tick(30);
    assert_eq!(redeployed.len(), 1);
    assert!(redeployed[0].recovered);
    let r = m.recovery_report();
    assert_eq!(r.containers_replaced, lost);
    assert!(r.accounted());
}

#[test]
fn checkpoint_cadence_bounds_the_replay_tail() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 20)
        .unwrap();
    assert_eq!(m.journal_stats().checkpoints_installed, 1, "initial");

    m.submit_lra(lra(1, 2, 1024, "a"), 0).unwrap();
    assert_eq!(m.tick(0).len(), 1);
    // The cadence fires inside the scheduling entry point even when the
    // queue is empty.
    m.tick(20);
    assert_eq!(m.journal_stats().checkpoints_installed, 2, "periodic");

    // Mutations after the checkpoint form the only replay tail.
    m.submit_lra(lra(2, 1, 1024, "b"), 21).unwrap();
    assert_eq!(m.tick(30).len(), 1);
    let report = m.restart(31, &faithful_reports(&m)).unwrap();
    assert!(report.restored_from_journal);
    assert_eq!(report.replayed_ops, 1, "checkpoint absorbed earlier ops");
    assert_eq!(m.state().num_containers(), 3);
}

#[test]
fn explicit_checkpoint_truncates_tail_to_zero() {
    let mut m = MedeaScheduler::new(cluster(), LraAlgorithm::Serial, 10);
    m.attach_journal(Wal::new(MemoryStorage::new()), 0).unwrap();
    m.submit_lra(lra(1, 3, 1024, "a"), 0).unwrap();
    assert_eq!(m.tick(0).len(), 1);
    m.checkpoint(1).unwrap();
    let report = m.restart(2, &faithful_reports(&m)).unwrap();
    assert_eq!(report.replayed_ops, 0);
    assert_eq!(m.state().num_containers(), 3);
}
