//! Cross-shard commit-conflict reconciliation (§5.4 applied to sharded
//! rounds): two shard solves of the same round cannot see each other's
//! tentative placements, so interactions between them must surface at
//! commit time — as γ-cardinality drift past the propose-time baseline,
//! or as a capacity failure — and roll back exactly the conflicting
//! entry, which is resubmitted and deploys on the next interval.

use medea_cluster::{
    ApplicationId, ClusterState, Node, NodeGroupId, NodeId, Resources, ShardConfig, Tag,
};
use medea_constraints::PlacementConstraint;
use medea_core::{LraAlgorithm, LraRequest, MedeaScheduler};

/// Drift class 1: γ-cardinality. A deployed anti-affinity constraint
/// ranges over a "zone" group spanning both shards; two unconstrained
/// "q"-tagged apps are round-robined to different shards, each solve's
/// baseline sees zero other "q" containers, and whichever commits second
/// finds the zone occupied — γ drifted past its baseline. Exactly that
/// one entry rolls back and resubmits; the retry absorbs the (soft)
/// violation because its new baseline already includes the survivor.
#[test]
fn spanning_cardinality_rolls_back_one_victim_and_resubmits() {
    let mut state = ClusterState::homogeneous(4, Resources::new(16 * 1024, 16), 2);
    state.register_group(
        NodeGroupId::new("zone"),
        vec![(0..4u32).map(NodeId).collect()],
    );
    let mut m = MedeaScheduler::new(state, LraAlgorithm::Serial, 10)
        .with_sharding(ShardConfig::with_shards(2));

    // The guard app owns the spanning constraint: at most zero *other*
    // "q" containers per zone. Its own container is not "q"-tagged, so
    // the first "q" placement is clean and the second violates.
    m.submit_lra(
        LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("guard")],
            vec![PlacementConstraint::anti_affinity(
                "q",
                "q",
                NodeGroupId::new("zone"),
            )],
        ),
        0,
    )
    .unwrap();
    assert_eq!(m.tick(0).len(), 1, "guard app deploys");

    // Two unconstrained "q" apps: no footprint, so they round-robin into
    // different shards and solve against disjoint node sets.
    for app in [2u64, 3] {
        m.submit_lra(
            LraRequest::uniform(
                ApplicationId(app),
                1,
                Resources::new(1024, 1),
                vec![Tag::new("q")],
                vec![],
            ),
            10,
        )
        .unwrap();
    }
    let deployed = m.tick(10);
    assert_eq!(
        deployed.len(),
        1,
        "exactly one of the two q apps survives the round"
    );
    assert_eq!(m.stats().commit_conflicts, 1);
    assert_eq!(
        m.stats().shard_resubmissions,
        1,
        "the conflict is attributed to the sharded round"
    );
    assert_eq!(m.pending_lras(), 1, "the victim is requeued, not dropped");
    assert_eq!(m.stats().lras_deployed, 2);
    let survivor = deployed[0].app;

    // Retry: the victim's new baseline includes the survivor's container,
    // so the (soft) violation no longer counts as drift and it deploys.
    let retried = m.tick(20);
    assert_eq!(retried.len(), 1);
    assert_ne!(retried[0].app, survivor);
    assert_eq!(m.stats().commit_conflicts, 1, "no second conflict");
    assert_eq!(m.stats().lras_deployed, 3);
    assert_eq!(m.pending_lras(), 0);
}

/// Drift class 2: capacity. A shard solve and the cross-shard residual
/// solve of the same round both pick the roomiest node; the shard solve
/// commits first and consumes the capacity, so the residual entry fails
/// allocation at commit, rolls back, and lands on the other node at the
/// next interval.
#[test]
fn shard_and_residual_capacity_collision_resubmits_residual() {
    // Heterogeneous two-node cluster, one node per rack/shard: node 0 is
    // the roomier one both solves will want.
    let mut state = ClusterState::new(
        [
            Node::new(NodeId(0), Resources::new(8192, 8)),
            Node::new(NodeId(1), Resources::new(6144, 8)),
        ],
        2,
    );
    state.register_group(NodeGroupId::new("zone"), vec![vec![NodeId(0), NodeId(1)]]);
    let mut m = MedeaScheduler::new(state, LraAlgorithm::Serial, 10)
        .with_sharding(ShardConfig::with_shards(2));

    // app 1 carries a (trivially satisfied) constraint over the spanning
    // zone group: unaligned, so it routes to the residual solve over the
    // full node set.
    m.submit_lra(
        LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(5120, 1),
            vec![Tag::new("s1")],
            vec![PlacementConstraint::cardinality(
                "s1",
                "s1",
                0,
                10,
                NodeGroupId::new("zone"),
            )],
        ),
        0,
    )
    .unwrap();
    // app 2 is unconstrained: round-robined into the freest shard, which
    // is node 0's.
    m.submit_lra(
        LraRequest::uniform(
            ApplicationId(2),
            1,
            Resources::new(5120, 1),
            vec![Tag::new("s2")],
            vec![],
        ),
        0,
    )
    .unwrap();

    let deployed = m.tick(0);
    assert_eq!(deployed.len(), 1);
    assert_eq!(deployed[0].app, ApplicationId(2), "the shard solve wins");
    assert_eq!(deployed[0].nodes, vec![NodeId(0)]);
    assert_eq!(m.stats().commit_conflicts, 1);
    assert_eq!(m.stats().shard_resubmissions, 1);
    assert_eq!(m.pending_lras(), 1);

    // Retry: node 0 no longer fits 5 GB, so the residual entry takes
    // node 1.
    let retried = m.tick(10);
    assert_eq!(retried.len(), 1);
    assert_eq!(retried[0].app, ApplicationId(1));
    assert_eq!(retried[0].nodes, vec![NodeId(1)]);
    assert_eq!(m.stats().commit_conflicts, 1, "no second conflict");
    assert_eq!(m.pending_lras(), 0);
}

/// Degenerate plans must never panic the propose path: sharding enabled
/// over a cluster whose group structure cannot actually be partitioned
/// (a single rack, or no registered groups at all) has to collapse to a
/// correct single-solve round.
#[test]
fn degenerate_single_rack_plan_runs_as_one_solve() {
    // One rack: the shard plan has a single basis set, so the round must
    // take the monolithic path even with sharding requested.
    let state = ClusterState::homogeneous(4, Resources::new(8192, 8), 1);
    let mut m = MedeaScheduler::new(state, LraAlgorithm::Serial, 10)
        .with_sharding(ShardConfig::with_shards(4));
    for app in 1..=3u64 {
        m.submit_lra(
            LraRequest::uniform(
                ApplicationId(app),
                2,
                Resources::new(1024, 1),
                vec![Tag::new("svc")],
                vec![],
            ),
            0,
        )
        .unwrap();
    }
    let deployed = m.tick(0);
    assert_eq!(deployed.len(), 3);
    assert_eq!(m.stats().shard_resubmissions, 0);
}

#[test]
fn groupless_cluster_with_sharding_enabled_places_normally() {
    // No registered groups at all: ShardPlan::build sees zero basis
    // sets. The round must degrade gracefully, not index into an empty
    // shard table.
    use medea_cluster::NodeGroups;
    let nodes: Vec<Node> = (0..4u32)
        .map(|i| Node::new(NodeId(i), Resources::new(8192, 8)))
        .collect();
    let state = ClusterState::with_groups(nodes, NodeGroups::new(4));
    let mut m = MedeaScheduler::new(state, LraAlgorithm::Serial, 10)
        .with_sharding(ShardConfig::with_shards(8));
    m.submit_lra(
        LraRequest::uniform(
            ApplicationId(1),
            3,
            Resources::new(1024, 1),
            vec![Tag::new("svc")],
            vec![],
        ),
        0,
    )
    .unwrap();
    let deployed = m.tick(0);
    assert_eq!(deployed.len(), 1);
    assert_eq!(m.state().num_containers(), 3);
}
