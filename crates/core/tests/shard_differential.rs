//! Differential gate for sharded solving: when every batch entry's
//! constraint footprint pins it inside one shard (zero cross-shard
//! contention), the sharded round must produce *identical* placements to
//! the monolithic solve — same apps on the same nodes — with zero commit
//! conflicts.
//!
//! Why equality (not mere equivalence) holds: candidate scoring sees the
//! full cluster state in both modes (only the candidate host list is
//! restricted), shard node lists preserve ascending node-id order (the
//! same order a full scan visits), and `place_best` breaks score ties
//! first-wins. An affinity-pinned entry's best-scoring host is its
//! anchor's node in both modes, so restricting the scan to the anchor's
//! shard changes nothing.

use std::collections::BTreeMap;

use medea_cluster::{
    ApplicationId, ClusterState, ContainerRequest, ExecutionKind, NodeGroupId, NodeId, Resources,
    ShardConfig, Tag,
};
use medea_constraints::PlacementConstraint;
use medea_core::{LraAlgorithm, LraRequest, MedeaScheduler};

const NODES: usize = 32;
const RACKS: usize = 4;

/// Deterministic PRNG (splitmix-style LCG step) so the 32 seeds are
/// reproducible without any randomness dependency.
fn next(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// 32 nodes in 4 racks with one "anchor{r}"-tagged container pre-placed
/// in each rack (node 8r), giving affinity constraints a unique carrier
/// shard to pin to.
fn cluster_with_anchors() -> ClusterState {
    let mut state = ClusterState::homogeneous(NODES, Resources::new(16 * 1024, 16), RACKS);
    for r in 0..RACKS {
        state
            .allocate(
                ApplicationId(100 + r as u64),
                NodeId((r * NODES / RACKS) as u32),
                &ContainerRequest::new(
                    Resources::new(1024, 1),
                    vec![Tag::new(format!("anchor{r}"))],
                ),
                ExecutionKind::LongRunning,
            )
            .unwrap();
    }
    state
}

fn seeded_requests(seed: u64) -> Vec<LraRequest> {
    let mut s = seed.wrapping_add(0x9e3779b97f4a7c15);
    let n_apps = 4 + (next(&mut s) % 5) as usize; // 4..=8 LRAs
    (0..n_apps)
        .map(|i| {
            let target = (next(&mut s) as usize) % RACKS;
            let containers = 1 + (next(&mut s) % 2) as usize; // 1..=2
            let svc = format!("svc_{seed}_{i}");
            LraRequest::uniform(
                ApplicationId(1 + i as u64),
                containers,
                // Zero vcores: memory is the only capacity axis, so no
                // seed can exhaust an anchor node and force a tie-break
                // among non-anchor hosts.
                Resources::new(512, 0),
                vec![Tag::new(svc.clone())],
                vec![
                    // Pins the entry: the anchor tag's only carrier is
                    // node 8*target, i.e. exactly one shard.
                    PlacementConstraint::affinity(
                        svc.as_str(),
                        format!("anchor{target}").as_str(),
                        NodeGroupId::node(),
                    ),
                    // Trivially satisfied; exercises multi-constraint
                    // routing over an aligned (rack) group without
                    // affecting the placement.
                    PlacementConstraint::cardinality(
                        svc.as_str(),
                        svc.as_str(),
                        0,
                        100,
                        NodeGroupId::rack(),
                    ),
                ],
            )
        })
        .collect()
}

/// Runs one scheduler over the request set and returns app -> sorted
/// placement nodes.
fn placements(mut m: MedeaScheduler, requests: &[LraRequest]) -> (BTreeMap<u64, Vec<u32>>, usize) {
    for r in requests {
        m.submit_lra(r.clone(), 0).unwrap();
    }
    let deployed = m.tick(0);
    let map = deployed
        .iter()
        .map(|d| {
            let mut nodes: Vec<u32> = d.nodes.iter().map(|n| n.0).collect();
            nodes.sort_unstable();
            (d.app.0, nodes)
        })
        .collect();
    let conflicts = m.stats().commit_conflicts + m.stats().shard_resubmissions;
    (map, conflicts)
}

#[test]
fn sharded_placements_match_unsharded_over_32_seeds() {
    for seed in 0..32u64 {
        let requests = seeded_requests(seed);

        let unsharded = MedeaScheduler::new(cluster_with_anchors(), LraAlgorithm::Serial, 10);
        let (base, base_conflicts) = placements(unsharded, &requests);

        let sharded = MedeaScheduler::new(cluster_with_anchors(), LraAlgorithm::Serial, 10)
            .with_sharding(ShardConfig::with_shards(RACKS));
        let (split, split_conflicts) = placements(sharded, &requests);

        assert_eq!(
            base.len(),
            requests.len(),
            "seed {seed}: unsharded left apps undeployed"
        );
        assert_eq!(
            base, split,
            "seed {seed}: sharded placements diverged from unsharded"
        );
        assert_eq!(base_conflicts, 0, "seed {seed}: unsharded conflicts");
        assert_eq!(
            split_conflicts, 0,
            "seed {seed}: sharded round conflicted despite zero cross-shard contention"
        );
    }
}

#[test]
fn pinned_entries_land_on_their_anchor_rack() {
    // Spot-check the routing itself: every app ends up in the rack of the
    // anchor its affinity names, under both modes.
    let requests = seeded_requests(7);
    let sharded = MedeaScheduler::new(cluster_with_anchors(), LraAlgorithm::Serial, 10)
        .with_sharding(ShardConfig::with_shards(RACKS));
    let (split, _) = placements(sharded, &requests);
    for r in &requests {
        let nodes = &split[&r.app.0];
        // The affinity target is "anchor{t}"; its carrier node is 8t, so
        // the whole deployment must sit in rack t (nodes 8t..8t+8).
        let rack = nodes[0] as usize / (NODES / RACKS);
        assert!(
            nodes.iter().all(|&n| n as usize / (NODES / RACKS) == rack),
            "app {} straddles racks: {nodes:?}",
            r.app.0
        );
    }
}
