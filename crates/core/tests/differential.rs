//! Differential optimality tests: on exhaustively enumerable instances
//! (≤ 6 nodes, ≤ 8 containers), the ILP scheduler's placement must score
//! exactly the brute-force optimum of the Eq. 1 objective, and the greedy
//! heuristic must stay within its stated bound (never better than the
//! optimum, and — because the ILP is seeded with the heuristic incumbent
//! and runs with `gap = 0` — never better than the ILP either).
//!
//! The ground-truth evaluator mirrors the Fig. 5 model exactly (with
//! `w3 = 0` to drop the fragmentation component, whose candidate-count
//! normalization depends on the model's internal candidate selection):
//!
//! - objective = `w1 · placed/k − (w2/m) · Σ weight · extent`, where `m`
//!   is the number of relevance-filtered, deduplicated constraints;
//! - a (constraint, node) block charges only when a placed subject
//!   container sits on the node;
//! - a leaf's extent is `shortfall/cmin + excess/max(cmax, 1)` with the
//!   model's self-exclusion adjustment (`self_m = 1` when any new subject
//!   container also matches the target expression).
//!
//! ~50 fixed `medea-rand` seeds keep the suite deterministic.

use medea_cluster::{ApplicationId, ClusterState, IndexConfig, NodeGroupId, Resources, Tag};
use medea_constraints::{Cardinality, PlacementConstraint};
use medea_core::{
    place_with_ilp_status, HeuristicScheduler, IlpConfig, IlpSolveStatus, LraRequest,
    ObjectiveWeights, Ordering, PlacementOutcome,
};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use std::time::Duration;

const SEEDS: u64 = 50;
/// Cap on the assignment-space size so debug-mode enumeration stays fast.
const MAX_SPACE: u64 = 60_000;
const TOL: f64 = 1e-6;

struct Instance {
    state: ClusterState,
    requests: Vec<LraRequest>,
}

fn random_instance(seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_nodes = rng.random_range(2..7usize);
    let racks = rng.random_range(1..3usize).min(n_nodes);
    let node_mem = *rng.choose(&[4096u64, 6144, 8192]).unwrap();
    let state = ClusterState::homogeneous(n_nodes, Resources::new(node_mem, 8), racks);

    let tag_pool = ["a", "b", "c"];
    let k = rng.random_range(1..3usize);
    let mut requests = Vec::new();
    let mut budget = 8usize;
    for ri in 0..k {
        // Resample the container count until the full enumeration space
        // (including earlier requests) stays under MAX_SPACE.
        let mut count;
        loop {
            count = rng.random_range(1..5usize).min(budget.max(1));
            let space: u64 = requests
                .iter()
                .map(|r: &LraRequest| 1 + (n_nodes as u64).pow(r.num_containers() as u32))
                .product::<u64>()
                * (1 + (n_nodes as u64).pow(count as u32));
            if space <= MAX_SPACE {
                break;
            }
        }
        budget -= count;
        let mem = *rng.choose(&[1024u64, 2048, 3072]).unwrap();
        let tag = Tag::new(tag_pool[rng.random_range(0..tag_pool.len())]);
        requests.push(LraRequest::uniform(
            ApplicationId(ri as u64 + 1),
            count,
            Resources::new(mem, 1),
            vec![tag],
            Vec::new(),
        ));
    }

    // Soft single-leaf node-level constraints over the tags in use, with
    // weights 1-3 (the evaluator only handles single conjuncts, which is
    // all these constructors produce).
    let used: Vec<&str> = tag_pool.to_vec();
    let n_constraints = rng.random_range(0..4usize);
    for i in 0..n_constraints {
        let subject = *rng.choose(&used).unwrap();
        let target = *rng.choose(&used).unwrap();
        let cardinality = *rng
            .choose(&[
                Cardinality::anti_affinity(),
                Cardinality::affinity(),
                Cardinality::at_most(1),
                Cardinality::at_most(2),
                Cardinality::range(1, 2),
            ])
            .unwrap();
        let weight = rng.random_range(1..4usize) as f64;
        let c = PlacementConstraint::new(subject, target, cardinality, NodeGroupId::node())
            .with_weight(weight);
        let ri = i % requests.len();
        requests[ri].constraints.push(c);
    }
    Instance { state, requests }
}

/// Effective tags of each container (request tags + automatic `appid:`),
/// flattened in the model's global-container order.
fn effective_tags(requests: &[LraRequest]) -> Vec<Vec<Tag>> {
    let mut out = Vec::new();
    for r in requests {
        for c in &r.containers {
            let mut tags = c.tags.clone();
            let auto = Tag::app_id(r.app);
            if !tags.contains(&auto) {
                tags.push(auto);
            }
            out.push(tags);
        }
    }
    out
}

/// The scheduler's relevance filter + dedup, reproduced for `m`.
fn active_constraints(requests: &[LraRequest], tags: &[Vec<Tag>]) -> Vec<PlacementConstraint> {
    let mut active: Vec<PlacementConstraint> = Vec::new();
    for c in requests.iter().flat_map(|r| r.constraints.iter()) {
        let relevant = tags.iter().any(|t| {
            c.subject.matches_tags(t) || c.expr.leaves().any(|l| l.target.matches_tags(t))
        });
        if relevant && !active.contains(c) {
            active.push(c.clone());
        }
    }
    active
}

/// Ground-truth Eq. 1 score (with `w3 = 0`) of one full assignment;
/// `NEG_INFINITY` when the assignment violates capacity.
/// `assignment[gci] = Some(node index)`, all-or-nothing already enforced
/// by the enumerator/extractor.
fn score(
    instance: &Instance,
    weights: &ObjectiveWeights,
    tags: &[Vec<Tag>],
    active: &[PlacementConstraint],
    assignment: &[Option<usize>],
) -> f64 {
    let n_nodes = instance.state.num_nodes();
    let k = instance.requests.len() as f64;

    // Capacity feasibility.
    let mut mem = vec![0u64; n_nodes];
    let mut cpu = vec![0u64; n_nodes];
    let mut gci = 0usize;
    let mut placed_requests = 0usize;
    for r in &instance.requests {
        let mut placed = 0usize;
        for c in &r.containers {
            if let Some(ni) = assignment[gci] {
                mem[ni] += c.resources.memory_mb;
                cpu[ni] += c.resources.vcores as u64;
                placed += 1;
            }
            gci += 1;
        }
        assert!(
            placed == 0 || placed == r.containers.len(),
            "enumerator must respect all-or-nothing"
        );
        if placed == r.containers.len() && !r.containers.is_empty() {
            placed_requests += 1;
        }
    }
    for ni in 0..n_nodes {
        let free = instance
            .state
            .free(medea_cluster::NodeId(ni as u32))
            .unwrap();
        if mem[ni] > free.memory_mb || cpu[ni] > free.vcores as u64 {
            return f64::NEG_INFINITY;
        }
    }

    // Violation extent, mirroring the model's per-(constraint, node-set)
    // blocks for node-level groups (each node is its own set).
    let m = active.len().max(1) as f64;
    let mut viol = 0.0;
    for c in active {
        let subj: Vec<bool> = tags.iter().map(|t| c.subject.matches_tags(t)).collect();
        for leaf in c.expr.leaves() {
            let targ: Vec<bool> = tags.iter().map(|t| leaf.target.matches_tags(t)).collect();
            // Static self-exclusion: any new subject also matches the
            // target (regardless of where it is placed).
            let self_m = subj.iter().zip(&targ).any(|(&s, &t)| s && t) as u32 as f64;
            for ni in 0..n_nodes {
                let subject_here = assignment
                    .iter()
                    .enumerate()
                    .any(|(g, a)| *a == Some(ni) && subj[g]);
                if !subject_here {
                    continue;
                }
                let count = assignment
                    .iter()
                    .enumerate()
                    .filter(|(g, a)| **a == Some(ni) && targ[*g])
                    .count() as f64;
                let mut extent = 0.0;
                if leaf.cardinality.min > 0 {
                    let cmin = leaf.cardinality.min as f64;
                    extent += (cmin + self_m - count).max(0.0) / cmin;
                }
                if let Some(cmax) = leaf.cardinality.max {
                    let cmax = cmax as f64;
                    extent += (count - cmax - self_m).max(0.0) / cmax.max(1.0);
                }
                viol += c.weight * extent;
            }
        }
    }

    weights.w1 * placed_requests as f64 / k - weights.w2 / m * viol
}

/// Brute-force maximum over every all-or-nothing assignment.
fn brute_force_best(
    instance: &Instance,
    weights: &ObjectiveWeights,
    tags: &[Vec<Tag>],
    active: &[PlacementConstraint],
) -> f64 {
    let n_nodes = instance.state.num_nodes();
    let counts: Vec<usize> = instance
        .requests
        .iter()
        .map(|r| r.num_containers())
        .collect();
    let total: usize = counts.iter().sum();

    // Per-request options: unplaced, or any node vector of length t_r.
    let mut options: Vec<Vec<Vec<Option<usize>>>> = Vec::new();
    for &t in &counts {
        let mut opts: Vec<Vec<Option<usize>>> = vec![vec![None; t]];
        let mut idx = vec![0usize; t];
        loop {
            opts.push(idx.iter().map(|&n| Some(n)).collect());
            // Odometer increment over node indices.
            let mut pos = 0;
            loop {
                if pos == t {
                    break;
                }
                idx[pos] += 1;
                if idx[pos] < n_nodes {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
            if pos == t {
                break;
            }
        }
        options.push(opts);
    }

    let mut best = f64::NEG_INFINITY;
    let mut pick = vec![0usize; options.len()];
    let mut assignment = vec![None; total];
    loop {
        let mut gci = 0usize;
        for (ri, opts) in options.iter().enumerate() {
            for &a in &opts[pick[ri]] {
                assignment[gci] = a;
                gci += 1;
            }
        }
        let s = score(instance, weights, tags, active, &assignment);
        if s > best {
            best = s;
        }
        // Odometer over per-request picks.
        let mut pos = 0;
        loop {
            if pos == options.len() {
                return best;
            }
            pick[pos] += 1;
            if pick[pos] < options[pos].len() {
                break;
            }
            pick[pos] = 0;
            pos += 1;
        }
    }
}

/// Converts scheduler outcomes into the evaluator's assignment vector.
fn assignment_of(requests: &[LraRequest], outcomes: &[PlacementOutcome]) -> Vec<Option<usize>> {
    let mut out = Vec::new();
    for (r, o) in requests.iter().zip(outcomes) {
        match o.placement() {
            Some(p) => {
                assert_eq!(p.nodes.len(), r.containers.len());
                out.extend(p.nodes.iter().map(|n| Some(n.0 as usize)));
            }
            None => out.extend(std::iter::repeat_n(None, r.containers.len())),
        }
    }
    out
}

#[test]
fn ilp_matches_brute_force_optimum_and_heuristic_is_admissible() {
    let weights = ObjectiveWeights {
        w3: 0.0,
        ..ObjectiveWeights::default()
    };
    let cfg = IlpConfig {
        weights,
        gap: 0.0,
        time_limit: Duration::from_secs(30),
        node_limit: 5_000_000,
        warm_cache: None,
        ..IlpConfig::default()
    };

    for seed in 0..SEEDS {
        let instance = random_instance(seed);
        let tags = effective_tags(&instance.requests);
        let active = active_constraints(&instance.requests, &tags);
        let best = brute_force_best(&instance, &weights, &tags, &active);
        assert!(best.is_finite(), "seed {seed}: all-unplaced is feasible");

        let (outcomes, status) =
            place_with_ilp_status(&instance.state, &instance.requests, &[], &cfg);
        assert_eq!(
            status,
            IlpSolveStatus::Solved,
            "seed {seed}: ILP must not degrade on tiny instances"
        );
        let ilp_score = score(
            &instance,
            &weights,
            &tags,
            &active,
            &assignment_of(&instance.requests, &outcomes),
        );
        assert!(
            (ilp_score - best).abs() <= TOL,
            "seed {seed}: ILP score {ilp_score} != brute-force optimum {best}"
        );

        // Heuristic bound: a feasible placement never above the optimum,
        // and the gap-0 ILP (seeded with the heuristic incumbent) is
        // heuristic-or-better.
        let mut heuristic = HeuristicScheduler::new(Ordering::NodeCandidates);
        heuristic.weights = weights;
        let h_out = heuristic.place(&instance.state, &instance.requests, &[]);
        let h_score = score(
            &instance,
            &weights,
            &tags,
            &active,
            &assignment_of(&instance.requests, &h_out),
        );
        assert!(
            h_score.is_finite(),
            "seed {seed}: heuristic placement must be capacity-feasible"
        );
        assert!(
            h_score <= best + TOL,
            "seed {seed}: heuristic score {h_score} exceeds the optimum {best}"
        );
        assert!(
            ilp_score >= h_score - TOL,
            "seed {seed}: ILP ({ilp_score}) must be heuristic-or-better ({h_score})"
        );
    }
}

/// Metamorphic property: the incremental index is a pure acceleration
/// structure, so running the same workload with indexes enabled vs
/// disabled ([`IndexConfig::disabled()`]) must produce identical
/// placements, container by container, for every seed — through both
/// the greedy heuristic and the gap-0 ILP.
#[test]
fn index_mode_never_changes_placements() {
    let weights = ObjectiveWeights {
        w3: 0.0,
        ..ObjectiveWeights::default()
    };
    let cfg = IlpConfig {
        weights,
        gap: 0.0,
        time_limit: Duration::from_secs(30),
        node_limit: 5_000_000,
        warm_cache: None,
        ..IlpConfig::default()
    };

    for seed in 0..SEEDS {
        let instance = random_instance(seed);
        let indexed = instance
            .state
            .clone()
            .with_index_config(IndexConfig::enabled());
        let scanned = instance
            .state
            .clone()
            .with_index_config(IndexConfig::disabled());
        assert!(indexed.index_enabled() && !scanned.index_enabled());

        let mut h_on = HeuristicScheduler::new(Ordering::NodeCandidates);
        h_on.weights = weights;
        let mut h_off = HeuristicScheduler::new(Ordering::NodeCandidates);
        h_off.weights = weights;
        let a = assignment_of(
            &instance.requests,
            &h_on.place(&indexed, &instance.requests, &[]),
        );
        let b = assignment_of(
            &instance.requests,
            &h_off.place(&scanned, &instance.requests, &[]),
        );
        assert_eq!(
            a, b,
            "seed {seed}: heuristic placements diverge by index mode"
        );

        // The ILP path (candidate selection + warm starts) every few
        // seeds: identical candidates in, identical solution out.
        if seed % 5 == 0 {
            let (on_out, on_status) =
                place_with_ilp_status(&indexed, &instance.requests, &[], &cfg);
            let (off_out, off_status) =
                place_with_ilp_status(&scanned, &instance.requests, &[], &cfg);
            assert_eq!(on_status, off_status, "seed {seed}: ILP status diverges");
            assert_eq!(
                assignment_of(&instance.requests, &on_out),
                assignment_of(&instance.requests, &off_out),
                "seed {seed}: ILP placements diverge by index mode"
            );
        }
    }
}

#[test]
fn evaluator_sanity_anti_affinity_pair() {
    // Two "w" containers with node anti-affinity: spreading scores 1,
    // stacking charges one violated (constraint, node) block.
    let state = ClusterState::homogeneous(2, Resources::new(8192, 8), 1);
    let caa = PlacementConstraint::anti_affinity("w", "w", NodeGroupId::node());
    let req = LraRequest::uniform(
        ApplicationId(1),
        2,
        Resources::new(1024, 1),
        vec![Tag::new("w")],
        vec![caa],
    );
    let instance = Instance {
        state,
        requests: vec![req],
    };
    let weights = ObjectiveWeights {
        w3: 0.0,
        ..ObjectiveWeights::default()
    };
    let tags = effective_tags(&instance.requests);
    let active = active_constraints(&instance.requests, &tags);
    let spread = score(&instance, &weights, &tags, &active, &[Some(0), Some(1)]);
    assert!((spread - 1.0).abs() < 1e-12, "spread scores w1: {spread}");
    let stacked = score(&instance, &weights, &tags, &active, &[Some(0), Some(0)]);
    // count = 2, cmax = 0, self_m = 1 -> excess 1 on one node; w2/m = 0.5.
    assert!(
        (stacked - (1.0 - 0.5)).abs() < 1e-12,
        "stacked charges one excess: {stacked}"
    );
    assert!(
        (brute_force_best(&instance, &weights, &tags, &active) - 1.0).abs() < 1e-12,
        "optimum spreads"
    );
}
