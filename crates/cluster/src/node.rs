//! Cluster nodes.

use std::fmt;

use crate::resources::Resources;
use crate::tags::Tag;

/// Identifier of a cluster node (dense index into the cluster state).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node_{:04}", self.0)
    }
}

/// Static description of a cluster node.
///
/// Dynamic state (free resources, running containers, dynamic tags) lives
/// in [`crate::ClusterState`]; the static tags here model machine
/// attributes such as `gpu` or `ssd` (§4.1: "a subset of a node tag set can
/// also be defined statically ... our tag model can also express the static
/// machine attributes offered by existing schedulers").
#[derive(Debug, Clone)]
pub struct Node {
    /// Node identifier.
    pub id: NodeId,
    /// Hostname for diagnostics.
    pub hostname: String,
    /// Total allocatable resources.
    pub capacity: Resources,
    /// Static machine-attribute tags (e.g. `gpu`).
    pub static_tags: Vec<Tag>,
}

impl Node {
    /// Creates a node with the given capacity and no static tags.
    pub fn new(id: NodeId, capacity: Resources) -> Self {
        Node {
            id,
            hostname: format!("host-{:04}", id.0),
            capacity,
            static_tags: Vec::new(),
        }
    }

    /// Adds static machine-attribute tags.
    pub fn with_static_tags(mut self, tags: impl IntoIterator<Item = Tag>) -> Self {
        self.static_tags.extend(tags);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let n = Node::new(NodeId(3), Resources::new(1024, 4)).with_static_tags([Tag::new("gpu")]);
        assert_eq!(n.id.index(), 3);
        assert_eq!(n.hostname, "host-0003");
        assert_eq!(n.static_tags, vec![Tag::new("gpu")]);
    }
}
