//! Versioned cluster snapshots for asynchronous placement (§5.3).
//!
//! Medea's LRA scheduler runs **off the critical path**: the ILP solves
//! against a frozen copy of the cluster while the live state keeps
//! mutating under task-container traffic. At commit time the proposed
//! placements are re-validated against live state and conflicts are
//! resubmitted (§5.4). [`ClusterSnapshot`] is the frozen copy: a clone of
//! [`ClusterState`] stamped with the state's mutation epoch, so the commit
//! path can ask *what changed while the solver ran* in O(changed) via the
//! state's bounded change log (falling back to an O(nodes) generation
//! comparison when the log has been trimmed).

use crate::node::NodeId;
use crate::state::ClusterState;

/// A frozen, versioned copy of the cluster taken at a mutation epoch.
///
/// Capture cost is O(cluster) (a deep clone — the same cost the paper's
/// Medea pays to hand the solver a consistent view); diffing against the
/// live state afterwards is O(changed nodes) while the live state's
/// change log still covers the capture epoch.
///
/// # Examples
///
/// ```
/// use medea_cluster::{ApplicationId, ClusterSnapshot, ClusterState,
///     ContainerRequest, ExecutionKind, NodeId, Resources};
///
/// let mut live = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
/// let snap = ClusterSnapshot::capture(&live);
/// assert!(snap.is_fresh(&live));
/// live.allocate(
///     ApplicationId(1), NodeId(2),
///     &ContainerRequest::new(Resources::new(1024, 1), []),
///     ExecutionKind::Task,
/// ).unwrap();
/// assert!(!snap.is_fresh(&live));
/// assert_eq!(snap.changed_nodes(&live), vec![NodeId(2)]);
/// ```
#[derive(Debug, Clone)]
pub struct ClusterSnapshot {
    state: ClusterState,
    epoch: u64,
}

impl ClusterSnapshot {
    /// Freezes the live state at its current epoch.
    pub fn capture(live: &ClusterState) -> Self {
        ClusterSnapshot {
            state: live.clone(),
            epoch: live.epoch(),
        }
    }

    /// The frozen state the solver runs against.
    pub fn state(&self) -> &ClusterState {
        &self.state
    }

    /// Mutable access to the frozen state: the propose phase applies the
    /// solver's own placements here to establish the commit-time
    /// validation baseline. Mutations affect only the snapshot.
    pub fn state_mut(&mut self) -> &mut ClusterState {
        &mut self.state
    }

    /// The mutation epoch the snapshot was captured at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether the live state has not mutated since capture.
    pub fn is_fresh(&self, live: &ClusterState) -> bool {
        live.epoch() == self.epoch
    }

    /// Number of live mutations applied since capture (staleness in
    /// mutation events, not ticks).
    ///
    /// Staleness is only defined against the state lineage the snapshot
    /// was captured from. Comparing against a *rebuilt* state (whose
    /// epoch counter restarted and may sit below the capture epoch) is a
    /// caller bug; this debug-asserts on the inversion rather than
    /// silently reporting 0, and saturates in release builds.
    pub fn staleness_events(&self, live: &ClusterState) -> u64 {
        debug_assert!(
            live.epoch() >= self.epoch,
            "snapshot epoch {} is ahead of live epoch {}: staleness queried \
             against a state the snapshot was not captured from",
            self.epoch,
            live.epoch(),
        );
        live.epoch().saturating_sub(self.epoch)
    }

    /// Nodes the live state mutated since capture, ascending and
    /// deduplicated. O(changed) via the change log when it still covers
    /// the capture epoch, O(nodes) generation comparison otherwise.
    pub fn changed_nodes(&self, live: &ClusterState) -> Vec<NodeId> {
        live.nodes_changed_since(self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{ApplicationId, ContainerRequest, ExecutionKind};
    use crate::resources::Resources;
    use crate::tags::Tag;

    fn cluster() -> ClusterState {
        ClusterState::homogeneous(8, Resources::new(8192, 8), 2)
    }

    fn req(mem: u64) -> ContainerRequest {
        ContainerRequest::new(Resources::new(mem, 1), [Tag::new("s")])
    }

    #[test]
    fn fresh_snapshot_has_no_diff() {
        let live = cluster();
        let snap = ClusterSnapshot::capture(&live);
        assert!(snap.is_fresh(&live));
        assert_eq!(snap.staleness_events(&live), 0);
        assert!(snap.changed_nodes(&live).is_empty());
    }

    #[test]
    fn mutations_surface_as_changed_nodes() {
        let mut live = cluster();
        let snap = ClusterSnapshot::capture(&live);
        let id = live
            .allocate(ApplicationId(1), NodeId(3), &req(1024), ExecutionKind::Task)
            .unwrap();
        live.allocate(ApplicationId(1), NodeId(5), &req(1024), ExecutionKind::Task)
            .unwrap();
        live.release(id).unwrap();
        assert_eq!(snap.staleness_events(&live), 3);
        // Deduplicated and ascending: node 3 mutated twice.
        assert_eq!(snap.changed_nodes(&live), vec![NodeId(3), NodeId(5)]);
        // The snapshot itself is frozen.
        assert_eq!(snap.state().num_containers(), 0);
    }

    #[test]
    fn snapshot_mutations_do_not_touch_live() {
        let live = cluster();
        let mut snap = ClusterSnapshot::capture(&live);
        snap.state_mut()
            .allocate(ApplicationId(9), NodeId(0), &req(512), ExecutionKind::Task)
            .unwrap();
        assert_eq!(live.num_containers(), 0);
        assert!(snap.is_fresh(&live), "live epoch must be untouched");
    }

    #[test]
    fn availability_and_node_tags_count_as_changes() {
        let mut live = cluster();
        let snap = ClusterSnapshot::capture(&live);
        live.set_available(NodeId(1), false).unwrap();
        live.add_node_tag(NodeId(6), Tag::new("fault_domain"))
            .unwrap();
        assert_eq!(snap.changed_nodes(&live), vec![NodeId(1), NodeId(6)]);
        // Re-marking the same availability is a no-op, not a new change.
        let e = live.epoch();
        live.set_available(NodeId(1), false).unwrap();
        assert_eq!(live.epoch(), e);
        // Removing an absent tag is a no-op too.
        live.remove_node_tag(NodeId(0), &Tag::new("ghost")).unwrap();
        assert_eq!(live.epoch(), e);
    }

    #[test]
    fn probes_do_not_advance_the_epoch() {
        let mut live = cluster();
        let before = live.epoch();
        let id = live
            .probe_allocate(ApplicationId(1), NodeId(0), &req(256), ExecutionKind::Task)
            .unwrap();
        live.probe_release(id).unwrap();
        assert_eq!(live.epoch(), before);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ahead of live epoch")]
    fn staleness_against_older_lineage_is_rejected() {
        // Capture from a mutated state, then query staleness against a
        // fresh (rebuilt) state whose epoch counter is behind the capture
        // epoch. saturating_sub would silently report 0 — debug builds
        // must flag the inversion instead.
        let mut live = cluster();
        live.allocate(ApplicationId(1), NodeId(0), &req(64), ExecutionKind::Task)
            .unwrap();
        let snap = ClusterSnapshot::capture(&live);
        let rebuilt = cluster();
        let _ = snap.staleness_events(&rebuilt);
    }

    #[test]
    fn change_log_overflow_falls_back_to_generation_scan() {
        let mut live = cluster();
        let snap = ClusterSnapshot::capture(&live);
        // Far more mutations than the log retains, all on two nodes.
        for _ in 0..6_000 {
            let id = live
                .allocate(ApplicationId(1), NodeId(2), &req(64), ExecutionKind::Task)
                .unwrap();
            live.release(id).unwrap();
            let id = live
                .allocate(ApplicationId(1), NodeId(7), &req(64), ExecutionKind::Task)
                .unwrap();
            live.release(id).unwrap();
        }
        assert_eq!(snap.changed_nodes(&live), vec![NodeId(2), NodeId(7)]);
        // A later snapshot still gets O(changed) answers from the log.
        let late = ClusterSnapshot::capture(&live);
        live.allocate(ApplicationId(2), NodeId(4), &req(64), ExecutionKind::Task)
            .unwrap();
        assert_eq!(late.changed_nodes(&live), vec![NodeId(4)]);
    }

    #[test]
    fn group_registration_marks_every_node_changed() {
        let mut live = cluster();
        let snap = ClusterSnapshot::capture(&live);
        live.register_group(
            crate::groups::NodeGroupId::new("zone"),
            vec![(0..4).map(NodeId).collect(), (4..8).map(NodeId).collect()],
        );
        assert_eq!(snap.changed_nodes(&live).len(), 8);
    }
}
