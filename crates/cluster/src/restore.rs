//! Checkpoint/restore of [`ClusterState`] over the `medea-journal` WAL.
//!
//! The durable history of a cluster is `checkpoint + log tail`:
//! [`ClusterState::checkpoint_doc`] serializes the full state (taken
//! from a consistent snapshot by the scheduler layer) into a
//! [`CheckpointDoc`], and every subsequent non-probe mutation appends
//! one epoch-stamped [`JournalRecord`]. Restore inverts both:
//! [`ClusterState::from_checkpoint`] rebuilds the base state — nodes,
//! groups, allocations replayed in container-id order so per-node and
//! per-app insertion orders reproduce, node tag multisets diffed back
//! to the stored truth, index and γ caches rebuilt — and
//! [`ClusterState::apply_record`] replays the tail with the mutation
//! epoch pinned so each record's own touch lands exactly on the epoch
//! it was logged at. The result is bit-for-bit the pre-crash semantic
//! state: [`ClusterState::digest`] of the restored state equals the
//! digest of the original at the same epoch (the property the 64-seed
//! round-trip suite checks), and [`ClusterState::check_index_consistency`]
//! plus [`ClusterState::check_allocation_consistency`] hold.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use medea_journal::{CheckpointAlloc, CheckpointDoc, CheckpointGroup, CheckpointNode};
use medea_journal::{JournalError, JournalOp, JournalRecord, Wal};

use crate::container::{ApplicationId, ContainerId, ContainerRequest, ExecutionKind};
use crate::groups::{NodeGroupId, NodeGroups};
use crate::node::{Node, NodeId};
use crate::resources::Resources;
use crate::state::ClusterState;
use crate::tags::Tag;

/// Errors from checkpoint restore and log replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The journal has no installed checkpoint to restore from.
    MissingCheckpoint,
    /// The journal itself failed to load (storage or corruption).
    Journal(JournalError),
    /// The checkpoint or a log record is internally inconsistent with
    /// the state being rebuilt (e.g. a placement that no longer fits,
    /// a release of an unknown container, an epoch that does not line
    /// up). A journal this wrong is not replayed partially.
    Invalid(String),
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::MissingCheckpoint => write!(f, "no checkpoint installed in journal"),
            RestoreError::Journal(e) => write!(f, "journal load failed: {e}"),
            RestoreError::Invalid(msg) => write!(f, "inconsistent journal: {msg}"),
        }
    }
}

impl std::error::Error for RestoreError {}

impl From<JournalError> for RestoreError {
    fn from(e: JournalError) -> Self {
        RestoreError::Journal(e)
    }
}

impl ClusterState {
    /// Attaches a shared write-ahead journal: from now on every
    /// non-probe mutation appends one epoch-stamped record. The caller
    /// (normally the scheduler layer) is responsible for installing a
    /// checkpoint covering the state *as of attachment* — mutations
    /// before the attach are not in the log.
    pub fn attach_wal(&mut self, wal: Arc<Mutex<Wal>>) {
        self.journal = Some(wal);
    }

    /// Detaches the journal, returning the handle if one was attached.
    pub fn detach_wal(&mut self) -> Option<Arc<Mutex<Wal>>> {
        self.journal.take()
    }

    /// The attached journal handle, if any.
    pub fn wal(&self) -> Option<&Arc<Mutex<Wal>>> {
        self.journal.as_ref()
    }

    /// Serializes the complete state into a checkpoint document.
    ///
    /// Nodes carry their **full** tag multiset (sorted), not a delta:
    /// `remove_node_tag` may have consumed occurrences contributed by
    /// static tags or allocations, so the truth is not derivable from
    /// the parts. Allocations are emitted in ascending container-id
    /// order, which is also their insertion order everywhere.
    pub fn checkpoint_doc(&self) -> CheckpointDoc {
        let nodes = self
            .nodes
            .iter()
            .zip(&self.node_state)
            .enumerate()
            .map(|(i, (node, dyn_state))| {
                let mut tags: Vec<(String, u32)> = dyn_state
                    .tags
                    .iter()
                    .map(|(t, c)| (t.as_str().to_string(), c))
                    .collect();
                tags.sort();
                CheckpointNode {
                    node: i as u32,
                    hostname: node.hostname.clone(),
                    memory_mb: node.capacity.memory_mb,
                    vcores: node.capacity.vcores,
                    static_tags: node
                        .static_tags
                        .iter()
                        .map(|t| t.as_str().to_string())
                        .collect(),
                    tags,
                    available: dyn_state.available,
                }
            })
            .collect();
        let mut groups: Vec<CheckpointGroup> = self
            .groups
            .group_ids()
            .filter_map(|g| {
                let sets = self.groups.sets_of(g).ok()?;
                Some(CheckpointGroup {
                    group: g.as_str().to_string(),
                    sets: sets
                        .iter()
                        .map(|set| set.iter().map(|n| n.0).collect())
                        .collect(),
                })
            })
            .collect();
        groups.sort_by(|a, b| a.group.cmp(&b.group));
        let mut allocs: Vec<CheckpointAlloc> = self
            .allocations
            .values()
            .map(|a| CheckpointAlloc {
                container: a.id.0,
                app: a.app.0,
                node: a.node.0,
                memory_mb: a.resources.memory_mb,
                vcores: a.resources.vcores,
                long_running: matches!(a.kind, ExecutionKind::LongRunning),
                tags: a.tags.iter().map(|t| t.as_str().to_string()).collect(),
            })
            .collect();
        allocs.sort_by_key(|a| a.container);
        CheckpointDoc {
            epoch: self.epoch,
            next_container: self.next_container,
            nodes,
            groups,
            allocs,
        }
    }

    /// Rebuilds a full `ClusterState` from a checkpoint document. The
    /// restored state has no journal attached (re-attach explicitly)
    /// and index mode enabled per the default config; use
    /// [`ClusterState::set_index_config`] afterwards to change it.
    pub fn from_checkpoint(doc: &CheckpointDoc) -> Result<ClusterState, RestoreError> {
        // Nodes must be the dense 0..n range, ascending.
        for (i, n) in doc.nodes.iter().enumerate() {
            if n.node as usize != i {
                return Err(RestoreError::Invalid(format!(
                    "checkpoint node ids not dense: slot {i} holds id {}",
                    n.node
                )));
            }
        }
        let nodes: Vec<Node> = doc
            .nodes
            .iter()
            .map(|n| Node {
                id: NodeId(n.node),
                hostname: n.hostname.clone(),
                capacity: Resources::new(n.memory_mb, n.vcores),
                static_tags: n.static_tags.iter().map(Tag::new).collect(),
            })
            .collect();
        let mut groups = NodeGroups::new(nodes.len());
        for g in &doc.groups {
            groups.register(
                NodeGroupId::new(&g.group),
                g.sets
                    .iter()
                    .map(|set| set.iter().map(|&n| NodeId(n)).collect())
                    .collect(),
            );
        }
        let mut state = ClusterState::with_groups(nodes, groups);

        // Replay allocations in ascending container-id order with the id
        // counter pinned, so assigned ids — and with them the insertion
        // order of every per-node and per-app container list — reproduce
        // exactly. The `appid:` auto-tag is already in the stored tag
        // list, so `allocate` does not add a second occurrence.
        let mut prev = None;
        for a in &doc.allocs {
            if prev.is_some() && prev >= Some(a.container) {
                return Err(RestoreError::Invalid(format!(
                    "checkpoint allocs not strictly ascending at container {}",
                    a.container
                )));
            }
            prev = Some(a.container);
            state.next_container = a.container;
            let request = ContainerRequest::new(
                Resources::new(a.memory_mb, a.vcores),
                a.tags.iter().map(Tag::new),
            );
            let kind = if a.long_running {
                ExecutionKind::LongRunning
            } else {
                ExecutionKind::Task
            };
            state
                .allocate(ApplicationId(a.app), NodeId(a.node), &request, kind)
                .map_err(|e| {
                    RestoreError::Invalid(format!("replaying container {}: {e}", a.container))
                })?;
        }
        state.next_container = doc.next_container;

        // Diff each node's rebuilt tag multiset back to the stored
        // truth. Static tags + allocation tags overshoot when
        // `remove_node_tag` had consumed occurrences they contributed,
        // and undershoot node-level marks (fault domains): both
        // directions repair through the normal mutators so the index
        // and γ caches stay coherent.
        for n in &doc.nodes {
            let node = NodeId(n.node);
            let target: HashMap<Tag, u32> = n
                .tags
                .iter()
                .map(|(t, c)| (Tag::new(t.as_str()), *c))
                .collect();
            let current: Vec<(Tag, u32)> = state
                .node_tags(node)
                .map_err(|e| RestoreError::Invalid(format!("node {node}: {e}")))?
                .iter()
                .map(|(t, c)| (t.clone(), c))
                .collect();
            for (tag, have) in &current {
                let want = target.get(tag).copied().unwrap_or(0);
                for _ in want..*have {
                    state
                        .remove_node_tag(node, tag)
                        .map_err(|e| RestoreError::Invalid(format!("node {node}: {e}")))?;
                }
            }
            for (tag, want) in &target {
                let have = current
                    .iter()
                    .find(|(t, _)| t == tag)
                    .map(|(_, c)| *c)
                    .unwrap_or(0);
                for _ in have..*want {
                    state
                        .add_node_tag(node, tag.clone())
                        .map_err(|e| RestoreError::Invalid(format!("node {node}: {e}")))?;
                }
            }
        }

        // Availability last: allocations must replay onto available
        // nodes even when the node was marked down at capture time
        // (unavailability keeps containers by design).
        for n in &doc.nodes {
            state
                .set_available(NodeId(n.node), n.available)
                .map_err(|e| RestoreError::Invalid(format!("node {}: {e}", n.node)))?;
        }

        // Pin the mutation clock to the checkpoint epoch. Per-node
        // generations collapse to the checkpoint epoch (conservative:
        // a snapshot diff against an older epoch reports every node as
        // changed) and the change log restarts empty at that floor.
        state.epoch = doc.epoch;
        for g in &mut state.node_generation {
            *g = doc.epoch;
        }
        state.change_log.clear();
        state.change_log_floor = doc.epoch;
        Ok(state)
    }

    /// Replays one journal record. Records at or below the current
    /// epoch are skipped (already covered by the checkpoint). The
    /// epoch is pinned to `record.epoch - 1` first, so the mutation's
    /// own touch lands exactly on `record.epoch`; a record that fails
    /// to land there (a mutation that was a no-op, which the journal
    /// never emits) is reported as corruption.
    pub fn apply_record(&mut self, record: &JournalRecord) -> Result<bool, RestoreError> {
        if record.epoch <= self.epoch {
            return Ok(false);
        }
        self.epoch = record.epoch - 1;
        let invalid = |e: &dyn std::fmt::Display| {
            RestoreError::Invalid(format!("replaying record at epoch {}: {e}", record.epoch))
        };
        match &record.op {
            JournalOp::Place {
                container,
                app,
                node,
                memory_mb,
                vcores,
                long_running,
                tags,
            } => {
                self.next_container = *container;
                let request = ContainerRequest::new(
                    Resources::new(*memory_mb, *vcores),
                    tags.iter().map(Tag::new),
                );
                let kind = if *long_running {
                    ExecutionKind::LongRunning
                } else {
                    ExecutionKind::Task
                };
                self.allocate(ApplicationId(*app), NodeId(*node), &request, kind)
                    .map_err(|e| invalid(&e))?;
            }
            JournalOp::Release { container } => {
                self.release(ContainerId(*container))
                    .map_err(|e| invalid(&e))?;
            }
            JournalOp::NodeTagAdd { node, tag } => {
                self.add_node_tag(NodeId(*node), Tag::new(tag))
                    .map_err(|e| invalid(&e))?;
            }
            JournalOp::NodeTagRemove { node, tag } => {
                let tag = Tag::new(tag);
                if self.gamma(NodeId(*node), &tag) == 0 {
                    return Err(invalid(&format!(
                        "tag `{}` not present on node {node} at removal",
                        tag.as_str()
                    )));
                }
                self.remove_node_tag(NodeId(*node), &tag)
                    .map_err(|e| invalid(&e))?;
            }
            JournalOp::SetAvailable { node, available } => {
                if self.is_available(NodeId(*node)) == *available {
                    return Err(invalid(&format!(
                        "availability of node {node} already {available}"
                    )));
                }
                self.set_available(NodeId(*node), *available)
                    .map_err(|e| invalid(&e))?;
            }
            JournalOp::RegisterGroup { group, sets } => {
                self.register_group(
                    NodeGroupId::new(group),
                    sets.iter()
                        .map(|set| set.iter().map(|&n| NodeId(n)).collect())
                        .collect(),
                );
            }
        }
        if self.epoch != record.epoch {
            return Err(RestoreError::Invalid(format!(
                "record at epoch {} left state at epoch {} (non-unit mutation)",
                record.epoch, self.epoch
            )));
        }
        Ok(true)
    }

    /// Restore = checkpoint + log-tail replay. Returns the state and
    /// the number of records actually replayed (records already covered
    /// by the checkpoint are skipped, not counted).
    pub fn restore(
        doc: &CheckpointDoc,
        log: &[JournalRecord],
    ) -> Result<(ClusterState, usize), RestoreError> {
        let mut state = ClusterState::from_checkpoint(doc)?;
        let mut replayed = 0usize;
        for record in log {
            if state.apply_record(record)? {
                replayed += 1;
            }
        }
        Ok((state, replayed))
    }

    /// Convenience: load a [`Wal`] and restore from it. Fails with
    /// [`RestoreError::MissingCheckpoint`] if no checkpoint was ever
    /// installed (the journal alone does not describe topology).
    pub fn restore_from_wal(wal: &Wal) -> Result<(ClusterState, usize), RestoreError> {
        let (doc, log) = wal.load()?;
        let doc = doc.ok_or(RestoreError::MissingCheckpoint)?;
        ClusterState::restore(&doc, &log)
    }

    /// A canonical, deterministic description of the *semantic* state:
    /// per-node free/availability/tags/containers, every allocation,
    /// per-app container lists, the id counter, the group γ caches, and
    /// the mutation epoch. Two states with equal digests place
    /// identically under every scheduler policy. Performance metadata
    /// (change log, per-node generations, index counters) is excluded —
    /// restore collapses those conservatively.
    pub fn digest(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "epoch={} next_container={}",
            self.epoch, self.next_container
        );
        for (i, (node, dyn_state)) in self.nodes.iter().zip(&self.node_state).enumerate() {
            let mut tags: Vec<(String, u32)> = dyn_state
                .tags
                .iter()
                .map(|(t, c)| (t.as_str().to_string(), c))
                .collect();
            tags.sort();
            let _ = write!(
                out,
                "node {i} host={} cap={}/{} free={}/{} avail={} tags=[",
                node.hostname,
                node.capacity.memory_mb,
                node.capacity.vcores,
                dyn_state.free.memory_mb,
                dyn_state.free.vcores,
                dyn_state.available
            );
            for (j, (t, c)) in tags.iter().enumerate() {
                if j > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{t}:{c}");
            }
            let _ = write!(out, "] containers=[");
            for (j, c) in dyn_state.containers.iter().enumerate() {
                if j > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{}", c.0);
            }
            let _ = writeln!(out, "]");
        }
        let mut allocs: Vec<&crate::state::Allocation> = self.allocations.values().collect();
        allocs.sort_by_key(|a| a.id);
        for a in allocs {
            let _ = write!(
                out,
                "alloc {} app={} node={} res={}/{} kind={:?} tags=[",
                a.id.0, a.app.0, a.node.0, a.resources.memory_mb, a.resources.vcores, a.kind
            );
            for (j, t) in a.tags.iter().enumerate() {
                if j > 0 {
                    out.push(' ');
                }
                out.push_str(t.as_str());
            }
            let _ = writeln!(out, "]");
        }
        let mut apps: Vec<(&ApplicationId, &Vec<ContainerId>)> =
            self.app_containers.iter().collect();
        apps.sort_by_key(|(a, _)| a.0);
        for (app, containers) in apps {
            let _ = write!(out, "app {} containers=[", app.0);
            for (j, c) in containers.iter().enumerate() {
                if j > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "{}", c.0);
            }
            let _ = writeln!(out, "]");
        }
        let mut groups: Vec<&NodeGroupId> = self.group_tags.keys().collect();
        groups.sort_by_key(|g| g.as_str());
        for g in groups {
            if let Some(sets) = self.group_tags.get(g) {
                for (si, multiset) in sets.iter().enumerate() {
                    let mut tags: Vec<(String, u32)> = multiset
                        .iter()
                        .map(|(t, c)| (t.as_str().to_string(), c))
                        .collect();
                    tags.sort();
                    let _ = write!(out, "group {} set {si} gamma=[", g.as_str());
                    for (j, (t, c)) in tags.iter().enumerate() {
                        if j > 0 {
                            out.push(' ');
                        }
                        let _ = write!(out, "{t}:{c}");
                    }
                    let _ = writeln!(out, "]");
                }
            }
        }
        out
    }

    /// Cross-checks the allocation bookkeeping: the allocations map,
    /// per-node container lists, per-app container lists, free-resource
    /// accounting, and the id counter must all agree. Together with
    /// [`ClusterState::check_index_consistency`] this is the full state
    /// invariant the restart auditor runs after every reconciliation.
    pub fn check_allocation_consistency(&self) -> Result<(), String> {
        let mut per_node_seen: Vec<usize> = vec![0; self.nodes.len()];
        let mut per_app_seen: HashMap<ApplicationId, usize> = HashMap::new();
        for (id, alloc) in &self.allocations {
            if *id != alloc.id {
                return Err(format!("allocation {} keyed under {}", alloc.id.0, id.0));
            }
            if id.0 >= self.next_container {
                return Err(format!(
                    "container {} >= next_container {}",
                    id.0, self.next_container
                ));
            }
            let node_state = self
                .node_state
                .get(alloc.node.index())
                .ok_or_else(|| format!("container {} on unknown node {}", id.0, alloc.node.0))?;
            if !node_state.containers.contains(id) {
                return Err(format!(
                    "container {} missing from node {}'s container list",
                    id.0, alloc.node.0
                ));
            }
            per_node_seen[alloc.node.index()] += 1;
            let app_list = self
                .app_containers
                .get(&alloc.app)
                .ok_or_else(|| format!("app {} has no container list", alloc.app.0))?;
            if !app_list.contains(id) {
                return Err(format!(
                    "container {} missing from app {}'s container list",
                    id.0, alloc.app.0
                ));
            }
            *per_app_seen.entry(alloc.app).or_default() += 1;
        }
        for (i, (node, dyn_state)) in self.nodes.iter().zip(&self.node_state).enumerate() {
            if dyn_state.containers.len() != per_node_seen[i] {
                return Err(format!(
                    "node {i} lists {} containers, allocations say {}",
                    dyn_state.containers.len(),
                    per_node_seen[i]
                ));
            }
            let used: Resources = dyn_state
                .containers
                .iter()
                .filter_map(|c| self.allocations.get(c))
                .map(|a| a.resources)
                .sum();
            let expect_free = node.capacity.checked_sub(&used).ok_or_else(|| {
                format!("node {i}: allocations exceed capacity ({used} allocated)")
            })?;
            if expect_free != dyn_state.free {
                return Err(format!(
                    "node {i}: free {} disagrees with capacity - allocations = {expect_free}",
                    dyn_state.free
                ));
            }
        }
        for (app, list) in &self.app_containers {
            let seen = per_app_seen.get(app).copied().unwrap_or(0);
            if list.len() != seen {
                return Err(format!(
                    "app {} lists {} containers, allocations say {seen}",
                    app.0,
                    list.len()
                ));
            }
            if list.is_empty() {
                return Err(format!("app {} has an empty container list", app.0));
            }
        }
        Ok(())
    }
}
