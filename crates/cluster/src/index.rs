//! Incremental cluster indexes: inverted tag→node postings with per-node
//! cardinality counts, and per-resource free-capacity orderings.
//!
//! Every scheduling round used to answer "which nodes carry tag `t`?" and
//! "which nodes have at least `r` free?" by scanning all nodes (or all
//! allocations), making a round O(nodes × constraints) — the §6 evaluation
//! runs at 400 nodes, but production clusters (§2.1, Fig. 1) are tens of
//! thousands of machines. [`ClusterIndex`] maintains those answers
//! incrementally: every allocate/release/retag updates the affected
//! postings in O(tags · log nodes), and queries walk only the nodes that
//! can match.
//!
//! Determinism contract: every query must return *exactly* what the naive
//! full scan returns, in the same order (node ids ascending, or the
//! documented free-capacity order). `ClusterState` enforces this by
//! routing queries through scan fallbacks when the index is disabled via
//! [`IndexConfig::disabled`]; the differential suite in
//! `tests/index_differential.rs` checks equality after every mutation.

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::resources::Resources;
use crate::tags::{Tag, TagMultiset};

/// Enables or disables the incremental index layer of a cluster state.
///
/// Disabled mode is an escape hatch for differential testing (and for
/// ruling the index out when debugging a placement): all queries fall
/// back to naive full scans that return identical results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexConfig {
    /// Whether the incremental indexes are maintained and queried.
    pub enabled: bool,
}

impl IndexConfig {
    /// Indexes maintained incrementally and used for queries (default).
    pub fn enabled() -> Self {
        IndexConfig { enabled: true }
    }

    /// No index maintenance; queries use naive full scans.
    pub fn disabled() -> Self {
        IndexConfig { enabled: false }
    }
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig::enabled()
    }
}

/// Counters describing index maintenance and query work, exposed as the
/// `cluster.index_*` metrics and by the scale benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexStats {
    /// Whether the index is enabled.
    pub enabled: bool,
    /// Distinct tags currently holding at least one posting.
    pub distinct_tags: usize,
    /// Incremental posting/ordering mutations applied since creation.
    pub update_ops: u64,
    /// Full rebuilds (creation, re-enabling, group re-registration).
    pub rebuilds: u64,
    /// Nodes visited by index queries (posting entries walked, or nodes
    /// scanned by the disabled-mode fallbacks).
    pub nodes_visited: u64,
}

/// The incremental index structures of a [`crate::ClusterState`].
///
/// All maps are ordered (`BTreeMap`/`BTreeSet`) so query iteration order
/// is deterministic and matches the scan fallbacks.
#[derive(Debug, Clone, Default)]
pub(crate) struct ClusterIndex {
    enabled: bool,
    /// Inverted tag index: tag → node id → tag cardinality `γ_n(t)`.
    /// Only nodes with `γ_n(t) > 0` appear.
    tag_nodes: HashMap<Tag, BTreeMap<u32, u32>>,
    /// Free-memory ordering: `(free_memory_mb, free_vcores, node)`.
    free_mem: BTreeSet<(u64, u32, u32)>,
    /// Free-vcore ordering: `(free_vcores, free_memory_mb, node)`.
    free_vcores: BTreeSet<(u32, u64, u32)>,
    update_ops: u64,
    rebuilds: u64,
    /// Query-side work counter; `Cell` because queries take `&self`.
    nodes_visited: Cell<u64>,
}

impl ClusterIndex {
    /// Creates an index in the given mode; call [`ClusterIndex::rebuild`]
    /// afterwards when enabled.
    pub(crate) fn new(config: IndexConfig) -> Self {
        ClusterIndex {
            enabled: config.enabled,
            ..ClusterIndex::default()
        }
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn stats(&self) -> IndexStats {
        IndexStats {
            enabled: self.enabled,
            distinct_tags: self.tag_nodes.len(),
            update_ops: self.update_ops,
            rebuilds: self.rebuilds,
            nodes_visited: self.nodes_visited.get(),
        }
    }

    pub(crate) fn note_visited(&self, n: u64) {
        self.nodes_visited.set(self.nodes_visited.get() + n);
    }

    /// Rebuilds every structure from scratch (O(nodes × tags)).
    pub(crate) fn rebuild<'a>(
        &mut self,
        nodes: impl Iterator<Item = (u32, &'a TagMultiset, Resources)>,
    ) {
        self.tag_nodes.clear();
        self.free_mem.clear();
        self.free_vcores.clear();
        self.rebuilds += 1;
        if !self.enabled {
            return;
        }
        for (node, tags, free) in nodes {
            for (t, c) in tags.iter() {
                self.tag_nodes.entry(t.clone()).or_default().insert(node, c);
            }
            self.free_mem.insert((free.memory_mb, free.vcores, node));
            self.free_vcores.insert((free.vcores, free.memory_mb, node));
        }
    }

    /// Switches modes, rebuilding (when enabling) or dropping (when
    /// disabling) the structures.
    pub(crate) fn set_config<'a>(
        &mut self,
        config: IndexConfig,
        nodes: impl Iterator<Item = (u32, &'a TagMultiset, Resources)>,
    ) {
        self.enabled = config.enabled;
        self.rebuild(nodes);
    }

    /// Registers one more occurrence of `tag` on `node`.
    pub(crate) fn tag_added(&mut self, node: u32, tag: &Tag) {
        if !self.enabled {
            return;
        }
        self.update_ops += 1;
        *self
            .tag_nodes
            .entry(tag.clone())
            .or_default()
            .entry(node)
            .or_insert(0) += 1;
    }

    /// Removes one occurrence of `tag` from `node`; postings that reach
    /// zero are dropped so no stale entries survive.
    pub(crate) fn tag_removed(&mut self, node: u32, tag: &Tag) {
        if !self.enabled {
            return;
        }
        self.update_ops += 1;
        let Some(postings) = self.tag_nodes.get_mut(tag) else {
            return;
        };
        if let Some(c) = postings.get_mut(&node) {
            if *c > 1 {
                *c -= 1;
            } else {
                postings.remove(&node);
            }
        }
        if postings.is_empty() {
            self.tag_nodes.remove(tag);
        }
    }

    /// Moves `node` from `old` to `new` in the free-capacity orderings.
    pub(crate) fn free_changed(&mut self, node: u32, old: Resources, new: Resources) {
        if !self.enabled || old == new {
            return;
        }
        self.update_ops += 1;
        self.free_mem.remove(&(old.memory_mb, old.vcores, node));
        self.free_mem.insert((new.memory_mb, new.vcores, node));
        self.free_vcores.remove(&(old.vcores, old.memory_mb, node));
        self.free_vcores.insert((new.vcores, new.memory_mb, node));
    }

    /// `γ_n(t)` according to the postings (0 when absent).
    pub(crate) fn tag_count(&self, node: u32, tag: &Tag) -> u32 {
        self.tag_nodes
            .get(tag)
            .and_then(|p| p.get(&node).copied())
            .unwrap_or(0)
    }

    /// Postings of one tag (node-ascending), if any.
    pub(crate) fn postings(&self, tag: &Tag) -> Option<&BTreeMap<u32, u32>> {
        self.tag_nodes.get(tag)
    }

    /// Nodes carrying *all* the given tags, ascending. Starts from the
    /// rarest tag's postings and probes the rest, so the work is bounded
    /// by the smallest posting list, not the cluster size.
    pub(crate) fn nodes_with_all_tags(&self, tags: &[Tag]) -> Vec<u32> {
        let Some(smallest) = tags
            .iter()
            .map(|t| self.tag_nodes.get(t).map(|p| p.len()).unwrap_or(0))
            .enumerate()
            .min_by_key(|&(_, len)| len)
            .map(|(i, _)| &tags[i])
        else {
            return Vec::new();
        };
        let Some(base) = self.tag_nodes.get(smallest) else {
            return Vec::new();
        };
        self.note_visited(base.len() as u64);
        base.keys()
            .copied()
            .filter(|&n| tags.iter().all(|t| self.tag_count(n, t) > 0))
            .collect()
    }

    /// Nodes ordered by free memory descending; ties broken by free
    /// vcores descending, then node id descending (the exact reverse of
    /// the ascending `(mem, vcores, node)` ordering, so the scan fallback
    /// can reproduce it).
    pub(crate) fn nodes_by_free_memory(&self) -> Vec<u32> {
        self.note_visited(self.free_mem.len() as u64);
        self.free_mem.iter().rev().map(|&(_, _, n)| n).collect()
    }

    /// Nodes whose free memory is at least `min_mem`, ascending by node
    /// id (order-normalized so the scan fallback matches trivially).
    pub(crate) fn nodes_with_free_memory_at_least(&self, min_mem: u64) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .free_mem
            .range((min_mem, 0, 0)..)
            .map(|&(_, _, n)| n)
            .collect();
        self.note_visited(out.len() as u64);
        out.sort_unstable();
        out
    }

    /// Verifies the index against ground truth; returns the first
    /// discrepancy found.
    pub(crate) fn check_consistency<'a>(
        &self,
        nodes: impl Iterator<Item = (u32, &'a TagMultiset, Resources)> + Clone,
    ) -> Result<(), String> {
        if !self.enabled {
            return Ok(());
        }
        let mut expected_tags: HashMap<Tag, BTreeMap<u32, u32>> = HashMap::new();
        let mut expected_mem: BTreeSet<(u64, u32, u32)> = BTreeSet::new();
        let mut expected_vc: BTreeSet<(u32, u64, u32)> = BTreeSet::new();
        for (node, tags, free) in nodes {
            for (t, c) in tags.iter() {
                expected_tags.entry(t.clone()).or_default().insert(node, c);
            }
            expected_mem.insert((free.memory_mb, free.vcores, node));
            expected_vc.insert((free.vcores, free.memory_mb, node));
        }
        for (t, postings) in &self.tag_nodes {
            if postings.is_empty() {
                return Err(format!("stale empty posting list for tag '{t}'"));
            }
            let Some(exp) = expected_tags.get(t) else {
                return Err(format!("stale tag '{t}' indexed on {:?}", postings));
            };
            if exp != postings {
                return Err(format!(
                    "tag '{t}': index {postings:?} != ground truth {exp:?}"
                ));
            }
        }
        for t in expected_tags.keys() {
            if !self.tag_nodes.contains_key(t) {
                return Err(format!("tag '{t}' present on nodes but not indexed"));
            }
        }
        if self.free_mem != expected_mem {
            return Err("free-memory ordering diverged from node state".to_string());
        }
        if self.free_vcores != expected_vc {
            return Err("free-vcore ordering diverged from node state".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Tag {
        Tag::new(s)
    }

    fn r(mem: u64, vc: u32) -> Resources {
        Resources::new(mem, vc)
    }

    #[test]
    fn postings_add_remove_roundtrip() {
        let mut ix = ClusterIndex::new(IndexConfig::enabled());
        ix.tag_added(3, &t("hb"));
        ix.tag_added(3, &t("hb"));
        ix.tag_added(5, &t("hb"));
        assert_eq!(ix.tag_count(3, &t("hb")), 2);
        assert_eq!(ix.nodes_with_all_tags(&[t("hb")]), vec![3, 5]);
        ix.tag_removed(3, &t("hb"));
        assert_eq!(ix.tag_count(3, &t("hb")), 1);
        ix.tag_removed(3, &t("hb"));
        assert_eq!(ix.nodes_with_all_tags(&[t("hb")]), vec![5]);
        ix.tag_removed(5, &t("hb"));
        assert!(ix.postings(&t("hb")).is_none(), "empty postings dropped");
    }

    #[test]
    fn intersection_starts_from_rarest() {
        let mut ix = ClusterIndex::new(IndexConfig::enabled());
        for n in 0..100 {
            ix.tag_added(n, &t("common"));
        }
        ix.tag_added(7, &t("rare"));
        ix.tag_added(9, &t("rare"));
        let before = ix.stats().nodes_visited;
        assert_eq!(
            ix.nodes_with_all_tags(&[t("common"), t("rare")]),
            vec![7, 9]
        );
        // Only the rare postings were walked, not the 100 common ones.
        assert_eq!(ix.stats().nodes_visited - before, 2);
    }

    #[test]
    fn free_orderings_follow_updates() {
        let mut ix = ClusterIndex::new(IndexConfig::enabled());
        ix.rebuild(
            [
                (0u32, &TagMultiset::new(), r(4096, 4)),
                (1, &TagMultiset::new(), r(8192, 8)),
                (2, &TagMultiset::new(), r(4096, 2)),
            ]
            .into_iter(),
        );
        assert_eq!(ix.nodes_by_free_memory(), vec![1, 0, 2]);
        ix.free_changed(1, r(8192, 8), r(1024, 8));
        assert_eq!(ix.nodes_by_free_memory(), vec![0, 2, 1]);
        assert_eq!(ix.nodes_with_free_memory_at_least(4096), vec![0, 2]);
    }

    #[test]
    fn disabled_index_stays_empty() {
        let mut ix = ClusterIndex::new(IndexConfig::disabled());
        ix.tag_added(0, &t("x"));
        ix.free_changed(0, r(10, 1), r(5, 1));
        assert_eq!(ix.stats().update_ops, 0);
        assert_eq!(ix.stats().distinct_tags, 0);
        assert!(ix.check_consistency(std::iter::empty()).is_ok());
    }

    #[test]
    fn consistency_detects_staleness() {
        let mut ix = ClusterIndex::new(IndexConfig::enabled());
        let tags: TagMultiset = [t("a")].into_iter().collect();
        ix.rebuild([(0u32, &tags, r(100, 1))].into_iter());
        assert!(ix
            .check_consistency([(0u32, &tags, r(100, 1))].into_iter())
            .is_ok());
        // Ground truth moved without the index hearing about it.
        let empty = TagMultiset::new();
        assert!(ix
            .check_consistency([(0u32, &empty, r(100, 1))].into_iter())
            .is_err());
        assert!(ix
            .check_consistency([(0u32, &tags, r(50, 1))].into_iter())
            .is_err());
    }
}
