//! Containers, container requests, and application identities.

use std::fmt;

use crate::resources::Resources;
use crate::tags::Tag;

/// Identifier of an application (LRA or task-based job).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ApplicationId(pub u64);

impl fmt::Display for ApplicationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app_{:06}", self.0)
    }
}

/// Identifier of an allocated container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "container_{:08}", self.0)
    }
}

/// Whether a container is long-running (LRA) or a short task.
///
/// The distinction routes requests between Medea's two schedulers (§3):
/// LRA requests carry placement constraints and go through the LRA
/// scheduler; task requests go straight to the task-based scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecutionKind {
    /// Long-running container (hours to months).
    LongRunning,
    /// Short-lived task container (seconds to minutes).
    Task,
}

/// A single container request: resource demand plus the tags the container
/// will carry once allocated (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerRequest {
    /// Resource demand of the container.
    pub resources: Resources,
    /// Tags the container carries; the scheduler automatically adds the
    /// `appid:` tag of the owning application.
    pub tags: Vec<Tag>,
}

impl ContainerRequest {
    /// Creates a request with the given demand and tags.
    pub fn new(resources: Resources, tags: impl IntoIterator<Item = Tag>) -> Self {
        ContainerRequest {
            resources,
            tags: tags.into_iter().collect(),
        }
    }

    /// Returns `true` if the request carries the given tag.
    pub fn has_tag(&self, tag: &Tag) -> bool {
        self.tags.contains(tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_tags() {
        let r = ContainerRequest::new(Resources::new(2048, 1), [Tag::new("hb"), Tag::new("hb_rs")]);
        assert!(r.has_tag(&Tag::new("hb")));
        assert!(!r.has_tag(&Tag::new("hb_m")));
    }

    #[test]
    fn display_formats() {
        assert_eq!(ApplicationId(23).to_string(), "app_000023");
        assert_eq!(ContainerId(7).to_string(), "container_00000007");
    }
}
