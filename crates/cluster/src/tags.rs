//! Container tags and tag multisets (the paper's §4.1 tag model).
//!
//! Tags are cheap-to-clone interned strings attached to container requests.
//! A node's *tag set* is the union of the tags of the containers currently
//! running on it, with multiplicity: the *tag cardinality function*
//! `γ_n(t)` counts how many containers on node `n` carry tag `t`.
//! [`TagMultiset`] implements exactly that bookkeeping, and extends to node
//! sets (racks, upgrade domains) by multiset union.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::container::ApplicationId;

/// An interned container tag, e.g. `hb`, `hb_m`, or `appid:0023`.
///
/// Cloning is cheap (reference counted). Tags compare by string value.
///
/// # Examples
///
/// ```
/// use medea_cluster::Tag;
///
/// let a = Tag::new("hb");
/// let b = Tag::new("hb");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "hb");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(Arc<str>);

impl Tag {
    /// Creates a tag from a string.
    pub fn new(s: impl AsRef<str>) -> Self {
        Tag(Arc::from(s.as_ref()))
    }

    /// The predefined per-application tag `appid:<id>` (paper §4.2: "we
    /// automatically attach some predefined tags to each container, e.g.,
    /// the ID of the LRA that it belongs to").
    pub fn app_id(app: ApplicationId) -> Self {
        Tag::new(format!("appid:{}", app.0))
    }

    /// Returns the tag's string form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns `true` if this tag is in the reserved `appid:` namespace.
    pub fn is_app_id(&self) -> bool {
        self.0.starts_with("appid:")
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Tag {
    fn from(s: &str) -> Self {
        Tag::new(s)
    }
}

impl From<String> for Tag {
    fn from(s: String) -> Self {
        Tag::new(s)
    }
}

/// A multiset of tags: the tag cardinality function `γ` of §4.1.
///
/// # Examples
///
/// ```
/// use medea_cluster::{Tag, TagMultiset};
///
/// // Two HBase containers on one node: a master and a region server.
/// let mut gamma = TagMultiset::new();
/// gamma.add_all([Tag::new("hb"), Tag::new("hb_m")]);
/// gamma.add_all([Tag::new("hb"), Tag::new("hb_rs")]);
/// assert_eq!(gamma.count(&Tag::new("hb")), 2);
/// assert_eq!(gamma.count(&Tag::new("hb_m")), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagMultiset {
    counts: HashMap<Tag, u32>,
}

impl TagMultiset {
    /// Creates an empty multiset.
    pub fn new() -> Self {
        TagMultiset::default()
    }

    /// Adds one occurrence of a tag.
    pub fn add(&mut self, tag: Tag) {
        *self.counts.entry(tag).or_insert(0) += 1;
    }

    /// Adds one occurrence of each tag in the iterator.
    pub fn add_all(&mut self, tags: impl IntoIterator<Item = Tag>) {
        for t in tags {
            self.add(t);
        }
    }

    /// Removes one occurrence of a tag.
    ///
    /// Returns `false` (leaving the multiset unchanged) if the tag is not
    /// present — the caller is expected to keep allocation bookkeeping
    /// consistent, so this signals a logic error upstream.
    pub fn remove(&mut self, tag: &Tag) -> bool {
        match self.counts.get_mut(tag) {
            Some(c) if *c > 1 => {
                *c -= 1;
                true
            }
            Some(_) => {
                self.counts.remove(tag);
                true
            }
            None => false,
        }
    }

    /// Removes one occurrence of each tag in the iterator; returns `false`
    /// if any tag was missing (all removals are still attempted).
    pub fn remove_all<'a>(&mut self, tags: impl IntoIterator<Item = &'a Tag>) -> bool {
        let mut ok = true;
        for t in tags {
            ok &= self.remove(t);
        }
        ok
    }

    /// The cardinality `γ(t)` of a tag.
    pub fn count(&self, tag: &Tag) -> u32 {
        self.counts.get(tag).copied().unwrap_or(0)
    }

    /// Returns `true` if the tag occurs at least once.
    pub fn contains(&self, tag: &Tag) -> bool {
        self.count(tag) > 0
    }

    /// Number of distinct tags.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Returns `true` if no tags are present.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(tag, cardinality)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tag, u32)> {
        self.counts.iter().map(|(t, &c)| (t, c))
    }

    /// Multiset union (component-wise sum), used to derive the tag set of
    /// a node group from its member nodes.
    pub fn merge(&mut self, other: &TagMultiset) {
        for (t, c) in other.iter() {
            *self.counts.entry(t.clone()).or_insert(0) += c;
        }
    }

    /// Returns the union of the given multisets.
    pub fn union<'a>(sets: impl IntoIterator<Item = &'a TagMultiset>) -> TagMultiset {
        let mut out = TagMultiset::new();
        for s in sets {
            out.merge(s);
        }
        out
    }
}

impl FromIterator<Tag> for TagMultiset {
    fn from_iter<I: IntoIterator<Item = Tag>>(iter: I) -> Self {
        let mut m = TagMultiset::new();
        m.add_all(iter);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: &str) -> Tag {
        Tag::new(s)
    }

    #[test]
    fn paper_example_gamma() {
        // §4.1 example: master {hb, hb_m} and region server {hb, hb_rs} on
        // node n1 give γ(hb)=2, γ(hb_m)=γ(hb_rs)=1.
        let mut n1 = TagMultiset::new();
        n1.add_all([t("hb"), t("hb_m")]);
        n1.add_all([t("hb"), t("hb_rs")]);
        assert_eq!(n1.count(&t("hb")), 2);
        assert_eq!(n1.count(&t("hb_m")), 1);
        assert_eq!(n1.count(&t("hb_rs")), 1);
        assert_eq!(n1.count(&t("spark")), 0);

        // Rack r1 = n1 ∪ n2 where n2 has {hb, hb_rs}: γ_r1(hb)=3.
        let n2: TagMultiset = [t("hb"), t("hb_rs")].into_iter().collect();
        let r1 = TagMultiset::union([&n1, &n2]);
        assert_eq!(r1.count(&t("hb")), 3);
        assert_eq!(r1.count(&t("hb_m")), 1);
        assert_eq!(r1.count(&t("hb_rs")), 2);
    }

    #[test]
    fn add_remove_roundtrip() {
        let mut m = TagMultiset::new();
        m.add(t("a"));
        m.add(t("a"));
        assert!(m.remove(&t("a")));
        assert_eq!(m.count(&t("a")), 1);
        assert!(m.remove(&t("a")));
        assert_eq!(m.count(&t("a")), 0);
        assert!(!m.remove(&t("a")));
        assert!(m.is_empty());
    }

    #[test]
    fn remove_all_reports_missing() {
        let mut m: TagMultiset = [t("x")].into_iter().collect();
        assert!(!m.remove_all([&t("x"), &t("y")]));
        assert!(m.is_empty());
    }

    #[test]
    fn app_id_namespace() {
        let tag = Tag::app_id(ApplicationId(23));
        assert_eq!(tag.as_str(), "appid:23");
        assert!(tag.is_app_id());
        assert!(!t("hb").is_app_id());
    }
}
