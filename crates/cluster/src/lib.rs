//! Cluster model substrate for the Medea scheduler.
//!
//! This crate reproduces the cluster-state layer the paper builds on
//! (Apache Hadoop YARN's resource-manager view of the cluster, §6):
//! nodes with vector resources, logical node groups (racks, fault and
//! upgrade domains, service units — §2.3/§4.1), container tags with the
//! tag-cardinality function `γ` (§4.1), and allocation bookkeeping with
//! capacity enforcement.
//!
//! Higher layers build on it: `medea-constraints` defines placement
//! constraints over tags and node groups, and `medea-core` implements the
//! schedulers that read and mutate [`ClusterState`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod container;
mod groups;
mod index;
mod node;
mod resources;
mod restore;
mod shard;
mod snapshot;
mod state;
mod tags;

pub use container::{ApplicationId, ContainerId, ContainerRequest, ExecutionKind};
pub use groups::{GroupError, NodeGroupId, NodeGroups, NodeSetIndex};
pub use index::{IndexConfig, IndexStats};
pub use node::{Node, NodeId};
pub use resources::Resources;
pub use restore::RestoreError;
pub use shard::{ShardConfig, ShardPlan};
pub use snapshot::ClusterSnapshot;
pub use state::{Allocation, ClusterError, ClusterState, UtilizationStats};
pub use tags::{Tag, TagMultiset};
