//! Node groups: logical, possibly overlapping categories of node sets
//! (§4.1 — `node`, `rack`, fault/upgrade domains, service units).
//!
//! Node groups let constraints target "a rack" or "an upgrade domain"
//! without enumerating machines, which is what makes Medea's constraints
//! high-level (requirement R2): the cluster operator registers groups once,
//! and constraints remain valid as the cluster changes.

use std::collections::HashMap;
use std::fmt;

use crate::node::NodeId;

/// Identifier of a registered node group (e.g. `rack`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeGroupId(String);

impl NodeGroupId {
    /// Creates a group identifier from a name.
    pub fn new(name: impl Into<String>) -> Self {
        NodeGroupId(name.into())
    }

    /// The predefined `node` group: one singleton set per cluster node.
    pub fn node() -> Self {
        NodeGroupId::new("node")
    }

    /// The predefined `rack` group.
    pub fn rack() -> Self {
        NodeGroupId::new("rack")
    }

    /// The conventional upgrade-domain group used in the paper's examples.
    pub fn upgrade_domain() -> Self {
        NodeGroupId::new("upgrade_domain")
    }

    /// The service-unit group of the paper's Microsoft clusters (§2.3).
    pub fn service_unit() -> Self {
        NodeGroupId::new("service_unit")
    }

    /// Returns the group name.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Whether this is the implicit `node` group (singleton sets that are
    /// synthesized on the fly rather than stored).
    pub fn is_node(&self) -> bool {
        self.0 == "node"
    }
}

impl fmt::Display for NodeGroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Index of a node set within its group.
pub type NodeSetIndex = usize;

/// Errors from the node-group registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupError {
    /// The group name is not registered.
    UnknownGroup(NodeGroupId),
}

impl fmt::Display for GroupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroupError::UnknownGroup(g) => write!(f, "unknown node group '{g}'"),
        }
    }
}

impl std::error::Error for GroupError {}

/// Registry of node groups and their member node sets.
///
/// Within a group, sets may overlap (a node may belong to several sets);
/// across groups they routinely do (every node is in some rack *and* some
/// upgrade domain). The predefined `node` group is maintained implicitly.
///
/// # Examples
///
/// ```
/// use medea_cluster::{NodeGroups, NodeGroupId, NodeId};
///
/// let mut groups = NodeGroups::new(4);
/// groups.register(
///     NodeGroupId::rack(),
///     vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
/// );
/// let rack_of_2 = groups.sets_containing(&NodeGroupId::rack(), NodeId(2)).unwrap();
/// assert_eq!(rack_of_2, vec![1]);
/// ```
#[derive(Debug, Clone)]
pub struct NodeGroups {
    num_nodes: usize,
    /// Group -> list of node sets.
    sets: HashMap<NodeGroupId, Vec<Vec<NodeId>>>,
    /// Group -> node index -> set indices containing the node.
    membership: HashMap<NodeGroupId, Vec<Vec<NodeSetIndex>>>,
}

impl NodeGroups {
    /// Creates a registry for a cluster of `num_nodes` nodes with only the
    /// predefined `node` group.
    pub fn new(num_nodes: usize) -> Self {
        NodeGroups {
            num_nodes,
            sets: HashMap::new(),
            membership: HashMap::new(),
        }
    }

    /// Number of nodes this registry covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Registers (or replaces) a group given its node sets.
    ///
    /// Node ids outside the cluster are ignored when building the
    /// membership index.
    pub fn register(&mut self, group: NodeGroupId, node_sets: Vec<Vec<NodeId>>) {
        let mut member: Vec<Vec<NodeSetIndex>> = vec![Vec::new(); self.num_nodes];
        for (si, set) in node_sets.iter().enumerate() {
            for &n in set {
                if (n.0 as usize) < self.num_nodes {
                    member[n.0 as usize].push(si);
                }
            }
        }
        self.membership.insert(group.clone(), member);
        self.sets.insert(group, node_sets);
    }

    /// Convenience: registers a group as an equal partition of the cluster
    /// into `parts` contiguous sets (how the simulator builds racks).
    pub fn register_partition(&mut self, group: NodeGroupId, parts: usize) {
        let parts = parts.max(1);
        let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); parts];
        for i in 0..self.num_nodes {
            sets[i * parts / self.num_nodes.max(1)].push(NodeId(i as u32));
        }
        self.register(group, sets);
    }

    /// Returns `true` if the group is known (including `node`).
    pub fn is_registered(&self, group: &NodeGroupId) -> bool {
        group == &NodeGroupId::node() || self.sets.contains_key(group)
    }

    /// Returns the node sets of a group.
    ///
    /// The `node` group is synthesized on the fly as singletons.
    pub fn sets_of(&self, group: &NodeGroupId) -> Result<Vec<Vec<NodeId>>, GroupError> {
        if group == &NodeGroupId::node() {
            return Ok((0..self.num_nodes)
                .map(|i| vec![NodeId(i as u32)])
                .collect());
        }
        self.sets
            .get(group)
            .cloned()
            .ok_or_else(|| GroupError::UnknownGroup(group.clone()))
    }

    /// Returns the indices of the group's sets that contain `node`.
    pub fn sets_containing(
        &self,
        group: &NodeGroupId,
        node: NodeId,
    ) -> Result<Vec<NodeSetIndex>, GroupError> {
        if group == &NodeGroupId::node() {
            return Ok(vec![node.0 as usize]);
        }
        let member = self
            .membership
            .get(group)
            .ok_or_else(|| GroupError::UnknownGroup(group.clone()))?;
        Ok(member.get(node.0 as usize).cloned().unwrap_or_default())
    }

    /// Returns the members of one set of a group.
    pub fn set_members(
        &self,
        group: &NodeGroupId,
        set: NodeSetIndex,
    ) -> Result<Vec<NodeId>, GroupError> {
        if group == &NodeGroupId::node() {
            return Ok(vec![NodeId(set as u32)]);
        }
        let sets = self
            .sets
            .get(group)
            .ok_or_else(|| GroupError::UnknownGroup(group.clone()))?;
        Ok(sets.get(set).cloned().unwrap_or_default())
    }

    /// Borrowed variant of [`NodeGroups::sets_containing`]: the set indices
    /// containing `node`, without cloning. Returns `None` for the implicit
    /// `node` group (whose sets are synthesized, not stored) and for
    /// unknown groups — callers on hot paths special-case `node` and fall
    /// back to the cloning accessor otherwise.
    pub fn sets_containing_ref(
        &self,
        group: &NodeGroupId,
        node: NodeId,
    ) -> Option<&[NodeSetIndex]> {
        self.membership
            .get(group)?
            .get(node.0 as usize)
            .map(|v| v.as_slice())
    }

    /// Borrowed variant of [`NodeGroups::set_members`]; same `None` cases
    /// as [`NodeGroups::sets_containing_ref`], plus out-of-range set
    /// indices.
    pub fn set_members_ref(&self, group: &NodeGroupId, set: NodeSetIndex) -> Option<&[NodeId]> {
        self.sets.get(group)?.get(set).map(|v| v.as_slice())
    }

    /// Number of sets in a group.
    pub fn num_sets(&self, group: &NodeGroupId) -> Result<usize, GroupError> {
        if group == &NodeGroupId::node() {
            return Ok(self.num_nodes);
        }
        self.sets
            .get(group)
            .map(|s| s.len())
            .ok_or_else(|| GroupError::UnknownGroup(group.clone()))
    }

    /// Lists all registered group ids (excluding the implicit `node`).
    pub fn group_ids(&self) -> impl Iterator<Item = &NodeGroupId> {
        self.sets.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_group_is_implicit() {
        let g = NodeGroups::new(3);
        assert!(g.is_registered(&NodeGroupId::node()));
        assert_eq!(g.num_sets(&NodeGroupId::node()).unwrap(), 3);
        assert_eq!(
            g.sets_containing(&NodeGroupId::node(), NodeId(2)).unwrap(),
            vec![2]
        );
        assert_eq!(
            g.set_members(&NodeGroupId::node(), 1).unwrap(),
            vec![NodeId(1)]
        );
    }

    #[test]
    fn unknown_group_errors() {
        let g = NodeGroups::new(2);
        let err = g.sets_of(&NodeGroupId::rack()).unwrap_err();
        assert_eq!(err, GroupError::UnknownGroup(NodeGroupId::rack()));
    }

    #[test]
    fn partition_covers_all_nodes() {
        let mut g = NodeGroups::new(10);
        g.register_partition(NodeGroupId::rack(), 3);
        let sets = g.sets_of(&NodeGroupId::rack()).unwrap();
        assert_eq!(sets.len(), 3);
        let total: usize = sets.iter().map(|s| s.len()).sum();
        assert_eq!(total, 10);
        for n in 0..10 {
            let m = g.sets_containing(&NodeGroupId::rack(), NodeId(n)).unwrap();
            assert_eq!(m.len(), 1);
        }
    }

    #[test]
    fn overlapping_sets_within_group() {
        let mut g = NodeGroups::new(4);
        g.register(
            NodeGroupId::new("zone"),
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(1), NodeId(2)]],
        );
        assert_eq!(
            g.sets_containing(&NodeGroupId::new("zone"), NodeId(1))
                .unwrap(),
            vec![0, 1]
        );
        assert!(g
            .sets_containing(&NodeGroupId::new("zone"), NodeId(3))
            .unwrap()
            .is_empty());
    }

    #[test]
    fn reregistering_replaces() {
        let mut g = NodeGroups::new(4);
        g.register_partition(NodeGroupId::rack(), 2);
        g.register_partition(NodeGroupId::rack(), 4);
        assert_eq!(g.num_sets(&NodeGroupId::rack()).unwrap(), 4);
    }
}
