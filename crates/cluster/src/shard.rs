//! Cluster sharding for partitioned LRA solving.
//!
//! Partitioned solving is the standard escape hatch for batch placement
//! at cluster scales where one monolithic solve is too slow: split the
//! node set into shards along fault-domain boundaries, solve each shard's
//! sub-batch against only its own nodes, and reconcile the few
//! cross-shard interactions at commit time. [`ShardPlan`] is the
//! partitioning layer: it groups whole racks (or service units, when
//! registered) into shards, so every group set of the sharding basis is
//! contained in exactly one shard and constraints scoped to those groups
//! never straddle a shard boundary.
//!
//! The plan is a cheap O(nodes) value rebuilt per scheduling round from
//! the current group registry — it holds no live references and does not
//! go stale while a solve is in flight.

use std::collections::HashMap;

use crate::groups::{NodeGroupId, NodeGroups};
use crate::node::NodeId;

/// Configuration of sharded solving (consumed by the scheduler layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Whether sharded solving is enabled at all.
    pub enabled: bool,
    /// Desired shard count; clamped to the number of basis group sets
    /// (a shard must contain whole racks/service units).
    pub target_shards: usize,
}

impl ShardConfig {
    /// Sharding disabled (the default): one monolithic solve per round.
    pub fn disabled() -> Self {
        ShardConfig {
            enabled: false,
            target_shards: 1,
        }
    }

    /// Sharding enabled with the given target shard count.
    pub fn with_shards(target_shards: usize) -> Self {
        ShardConfig {
            enabled: true,
            target_shards: target_shards.max(1),
        }
    }
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig::disabled()
    }
}

/// A partition of the cluster's nodes into shards along group
/// boundaries.
///
/// Shards are built from the *sharding basis*: the service-unit group
/// when one is registered, the rack group otherwise (racks always exist —
/// [`crate::ClusterState::new`] registers them). Basis sets are assigned
/// contiguously, so shard node lists inherit the ascending node-id order
/// of the underlying partition — the same order a full node scan visits,
/// which keeps tie-breaking identical between sharded and unsharded
/// solves.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    /// Nodes per shard, ascending node ids within each shard.
    shards: Vec<Vec<NodeId>>,
    /// Dense node index → shard index.
    node_shard: Vec<usize>,
    /// Whether every set of a registered group lies within one shard.
    aligned: HashMap<NodeGroupId, bool>,
}

impl ShardPlan {
    /// Builds a plan over the registry's groups targeting
    /// `target_shards` shards (clamped to the basis set count).
    pub fn build(groups: &NodeGroups, target_shards: usize) -> ShardPlan {
        let n = groups.num_nodes();
        let basis = if groups.is_registered(&NodeGroupId::service_unit()) {
            NodeGroupId::service_unit()
        } else {
            NodeGroupId::rack()
        };
        let sets = groups
            .sets_of(&basis)
            .unwrap_or_else(|_| vec![(0..n as u32).map(NodeId).collect()]);
        let num_sets = sets.len().max(1);
        let k = target_shards.clamp(1, num_sets);

        let mut shards: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        let mut node_shard = vec![0usize; n];
        let mut covered = vec![false; n];
        for (i, set) in sets.iter().enumerate() {
            let shard = i * k / num_sets;
            for &node in set {
                shards[shard].push(node);
                if let Some(slot) = node_shard.get_mut(node.index()) {
                    *slot = shard;
                }
                if let Some(c) = covered.get_mut(node.index()) {
                    *c = true;
                }
            }
        }
        // Nodes outside every basis set (custom registries) fall into
        // shard 0 so the plan always covers the cluster.
        for (i, c) in covered.iter().enumerate() {
            if !c {
                shards[0].push(NodeId(i as u32));
            }
        }
        for shard in &mut shards {
            shard.sort_unstable();
            shard.dedup();
        }

        // A group is shard-aligned when none of its sets straddles a
        // shard boundary: constraints scoped to it can be evaluated and
        // satisfied entirely within one shard's solve.
        let mut aligned = HashMap::new();
        for g in groups.group_ids() {
            let ok = groups.sets_of(g).map(|sets| {
                sets.iter().all(|set| {
                    let mut it = set.iter().map(|n| node_shard.get(n.index()).copied());
                    match it.next() {
                        Some(first) => it.all(|s| s == first),
                        None => true,
                    }
                })
            });
            aligned.insert(g.clone(), ok.unwrap_or(false));
        }

        ShardPlan {
            shards,
            node_shard,
            aligned,
        }
    }

    /// Number of shards in the plan (>= 1).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The nodes of one shard, ascending by node id.
    pub fn nodes(&self, shard: usize) -> &[NodeId] {
        self.shards
            .get(shard)
            .map(|v| v.as_slice())
            .unwrap_or_default()
    }

    /// The shard containing a node.
    pub fn shard_of(&self, node: NodeId) -> Option<usize> {
        self.node_shard.get(node.index()).copied()
    }

    /// Whether every set of `group` is contained in a single shard. The
    /// implicit per-node group is always aligned (singleton sets);
    /// unknown groups report unaligned (the conservative answer: their
    /// constraints go to the cross-shard residual solve).
    pub fn is_aligned(&self, group: &NodeGroupId) -> bool {
        if group.is_node() {
            return true;
        }
        self.aligned.get(group).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups(n: usize, racks: usize) -> NodeGroups {
        let mut g = NodeGroups::new(n);
        g.register_partition(NodeGroupId::rack(), racks);
        g
    }

    #[test]
    fn shards_cover_cluster_and_preserve_ascending_order() {
        let plan = ShardPlan::build(&groups(16, 4), 2);
        assert_eq!(plan.num_shards(), 2);
        let mut all: Vec<NodeId> = Vec::new();
        for s in 0..plan.num_shards() {
            let nodes = plan.nodes(s);
            assert!(nodes.windows(2).all(|w| w[0] < w[1]), "ascending order");
            for &n in nodes {
                assert_eq!(plan.shard_of(n), Some(s));
            }
            all.extend_from_slice(nodes);
        }
        all.sort_unstable();
        assert_eq!(all, (0..16u32).map(NodeId).collect::<Vec<_>>());
    }

    #[test]
    fn target_clamped_to_basis_sets() {
        // 3 racks cannot produce more than 3 whole-rack shards.
        let plan = ShardPlan::build(&groups(12, 3), 8);
        assert_eq!(plan.num_shards(), 3);
        // And no rack straddles a shard.
        assert!(plan.is_aligned(&NodeGroupId::rack()));
    }

    #[test]
    fn service_unit_basis_preferred_when_registered() {
        let mut g = groups(12, 2);
        g.register(NodeGroupId::service_unit(), {
            let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); 4];
            for i in 0..12u32 {
                sets[(i / 3) as usize].push(NodeId(i));
            }
            sets
        });
        let plan = ShardPlan::build(&g, 4);
        assert_eq!(plan.num_shards(), 4);
        assert!(plan.is_aligned(&NodeGroupId::service_unit()));
        // 2 racks of 6 nodes each fit exactly into pairs of SU shards?
        // No: rack {0..5} spans shards {0,1}. Misaligned, as reported.
        assert!(!plan.is_aligned(&NodeGroupId::rack()));
    }

    #[test]
    fn alignment_of_node_and_unknown_groups() {
        let plan = ShardPlan::build(&groups(8, 2), 2);
        assert!(plan.is_aligned(&NodeGroupId::node()));
        assert!(!plan.is_aligned(&NodeGroupId::new("ghost")));
    }

    #[test]
    fn spanning_custom_group_is_unaligned() {
        let mut g = groups(8, 2);
        g.register(
            NodeGroupId::new("zone"),
            vec![(0..8u32).map(NodeId).collect()],
        );
        let plan = ShardPlan::build(&g, 2);
        assert!(!plan.is_aligned(&NodeGroupId::new("zone")));
        // A custom group nested inside one shard is aligned.
        let mut g2 = groups(8, 2);
        g2.register(
            NodeGroupId::new("cell"),
            vec![vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]],
        );
        let plan2 = ShardPlan::build(&g2, 2);
        assert!(plan2.is_aligned(&NodeGroupId::new("cell")));
    }

    #[test]
    fn single_shard_plan_is_degenerate_but_valid() {
        let plan = ShardPlan::build(&groups(4, 2), 1);
        assert_eq!(plan.num_shards(), 1);
        assert_eq!(plan.nodes(0).len(), 4);
        assert!(plan.is_aligned(&NodeGroupId::rack()));
    }
}
