//! Container resource vectors.
//!
//! The paper's ILP uses a single scalar per node "for simplicity" (§5.2,
//! footnote 6) but the evaluated deployment allocates `<memory, vcores>`
//! containers (§7.1). We model the two-dimensional vector everywhere and
//! expose the scalar projection ([`Resources::scalar`]) that the ILP uses.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A resource vector: memory in MB and virtual cores.
///
/// # Examples
///
/// ```
/// use medea_cluster::Resources;
///
/// let node = Resources::new(16 * 1024, 8);
/// let container = Resources::new(2 * 1024, 1);
/// assert!(container.fits_in(&node));
/// assert_eq!(node.checked_sub(&container).unwrap().memory_mb, 14 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Resources {
    /// Memory in megabytes.
    pub memory_mb: u64,
    /// Virtual cores.
    pub vcores: u32,
}

impl Resources {
    /// Creates a resource vector.
    pub const fn new(memory_mb: u64, vcores: u32) -> Self {
        Resources { memory_mb, vcores }
    }

    /// The zero vector.
    pub const ZERO: Resources = Resources::new(0, 0);

    /// Returns `true` if both components are zero.
    pub fn is_zero(&self) -> bool {
        self.memory_mb == 0 && self.vcores == 0
    }

    /// Returns `true` if `self` fits within `capacity` component-wise.
    pub fn fits_in(&self, capacity: &Resources) -> bool {
        self.memory_mb <= capacity.memory_mb && self.vcores <= capacity.vcores
    }

    /// Component-wise subtraction; `None` if any component underflows.
    pub fn checked_sub(&self, other: &Resources) -> Option<Resources> {
        Some(Resources {
            memory_mb: self.memory_mb.checked_sub(other.memory_mb)?,
            vcores: self.vcores.checked_sub(other.vcores)?,
        })
    }

    /// Component-wise subtraction saturating at zero.
    pub fn saturating_sub(&self, other: &Resources) -> Resources {
        Resources {
            memory_mb: self.memory_mb.saturating_sub(other.memory_mb),
            vcores: self.vcores.saturating_sub(other.vcores),
        }
    }

    /// Component-wise minimum.
    pub fn min(&self, other: &Resources) -> Resources {
        Resources {
            memory_mb: self.memory_mb.min(other.memory_mb),
            vcores: self.vcores.min(other.vcores),
        }
    }

    /// Multiplies both components by an integer factor.
    pub fn times(&self, k: u64) -> Resources {
        Resources {
            memory_mb: self.memory_mb * k,
            vcores: (self.vcores as u64 * k).min(u32::MAX as u64) as u32,
        }
    }

    /// Scalar projection used by the ILP capacity rows (memory, per the
    /// paper's single-scalar simplification; see module docs).
    pub fn scalar(&self) -> f64 {
        self.memory_mb as f64
    }

    /// Dominant utilization share of `self` relative to `capacity`, in
    /// `[0, 1]` (used for load metrics and least-allocated scoring).
    ///
    /// Returns `0.0` when `capacity` is zero in both components.
    pub fn dominant_share(&self, capacity: &Resources) -> f64 {
        let mem = if capacity.memory_mb > 0 {
            self.memory_mb as f64 / capacity.memory_mb as f64
        } else {
            0.0
        };
        let cpu = if capacity.vcores > 0 {
            self.vcores as f64 / capacity.vcores as f64
        } else {
            0.0
        };
        mem.max(cpu)
    }

    /// Memory share of `self` relative to `capacity`, in `[0, 1]`.
    pub fn memory_share(&self, capacity: &Resources) -> f64 {
        if capacity.memory_mb == 0 {
            0.0
        } else {
            self.memory_mb as f64 / capacity.memory_mb as f64
        }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, rhs: Resources) -> Resources {
        Resources {
            memory_mb: self.memory_mb + rhs.memory_mb,
            vcores: self.vcores + rhs.vcores,
        }
    }
}

impl AddAssign for Resources {
    fn add_assign(&mut self, rhs: Resources) {
        self.memory_mb += rhs.memory_mb;
        self.vcores += rhs.vcores;
    }
}

impl Sub for Resources {
    type Output = Resources;
    /// # Panics
    ///
    /// Panics on underflow; use [`Resources::checked_sub`] when the
    /// operands are not known to be ordered.
    fn sub(self, rhs: Resources) -> Resources {
        self.checked_sub(&rhs)
            .expect("resource subtraction underflow")
    }
}

impl SubAssign for Resources {
    fn sub_assign(&mut self, rhs: Resources) {
        *self = *self - rhs;
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Resources {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{} MB, {} vcores>", self.memory_mb, self.vcores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_requires_both_components() {
        let cap = Resources::new(1024, 2);
        assert!(Resources::new(1024, 2).fits_in(&cap));
        assert!(!Resources::new(1025, 1).fits_in(&cap));
        assert!(!Resources::new(512, 3).fits_in(&cap));
    }

    #[test]
    fn checked_sub_underflow() {
        let a = Resources::new(100, 1);
        let b = Resources::new(200, 0);
        assert_eq!(a.checked_sub(&b), None);
        assert_eq!(b.checked_sub(&a), None); // vcores underflow
        assert_eq!(
            Resources::new(200, 2).checked_sub(&a),
            Some(Resources::new(100, 1))
        );
    }

    #[test]
    fn dominant_share_picks_max() {
        let cap = Resources::new(1000, 10);
        let u = Resources::new(500, 8);
        assert!((u.dominant_share(&cap) - 0.8).abs() < 1e-12);
        let u2 = Resources::new(900, 1);
        assert!((u2.dominant_share(&cap) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn dominant_share_zero_capacity() {
        assert_eq!(Resources::new(5, 5).dominant_share(&Resources::ZERO), 0.0);
    }

    #[test]
    fn sum_and_times() {
        let total: Resources = vec![Resources::new(1, 1); 5].into_iter().sum();
        assert_eq!(total, Resources::new(5, 5));
        assert_eq!(Resources::new(2, 3).times(4), Resources::new(8, 12));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_panics_on_underflow() {
        let _ = Resources::new(1, 0) - Resources::new(2, 0);
    }
}
