//! Live cluster state: allocations, free resources, and dynamic tag sets.
//!
//! `ClusterState` is the single source of truth shared by Medea's two
//! schedulers (§3, Fig. 4 "Cluster State"): the task-based scheduler
//! performs *all* actual allocations against it, which is how Medea avoids
//! the conflicting-placement problem of multi-level schedulers.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::{Arc, Mutex};

use medea_journal::{JournalOp, JournalRecord, Wal};

use crate::container::{ApplicationId, ContainerId, ContainerRequest, ExecutionKind};
use crate::groups::{NodeGroupId, NodeGroups};
use crate::index::{ClusterIndex, IndexConfig, IndexStats};
use crate::node::{Node, NodeId};
use crate::resources::Resources;
use crate::tags::{Tag, TagMultiset};

/// A live, allocated container.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Container identifier.
    pub id: ContainerId,
    /// Owning application.
    pub app: ApplicationId,
    /// Hosting node.
    pub node: NodeId,
    /// Allocated resources.
    pub resources: Resources,
    /// Tags carried by this container (includes the automatic `appid:`).
    pub tags: Vec<Tag>,
    /// Long-running or task container.
    pub kind: ExecutionKind,
}

/// Errors from allocation and release operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The node id is out of range.
    UnknownNode(NodeId),
    /// The container id is not currently allocated.
    UnknownContainer(ContainerId),
    /// The node lacks free resources for the request.
    InsufficientResources {
        /// Target node.
        node: NodeId,
        /// Free resources at the time of the request.
        free: Resources,
        /// Requested resources.
        requested: Resources,
    },
    /// The node is marked unavailable (failed, upgrading).
    NodeUnavailable(NodeId),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::UnknownNode(n) => write!(f, "unknown node {n}"),
            ClusterError::UnknownContainer(c) => write!(f, "unknown container {c}"),
            ClusterError::InsufficientResources {
                node,
                free,
                requested,
            } => write!(
                f,
                "insufficient resources on {node}: free {free}, requested {requested}"
            ),
            ClusterError::NodeUnavailable(n) => write!(f, "node {n} is unavailable"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-node dynamic state.
#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    pub(crate) free: Resources,
    pub(crate) tags: TagMultiset,
    pub(crate) containers: Vec<ContainerId>,
    pub(crate) available: bool,
}

/// Aggregate utilization metrics used by the global-objective experiments
/// (§7.4): fragmentation and load imbalance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationStats {
    /// Fraction of *fragmented* nodes: free resources below the
    /// fragmentation threshold while the node is not fully utilized.
    pub fragmented_fraction: f64,
    /// Coefficient of variation of per-node memory utilization.
    pub memory_cv: f64,
    /// Mean per-node memory utilization in `[0, 1]`.
    pub mean_memory_utilization: f64,
}

/// Live cluster state: nodes, groups, and allocations.
///
/// # Examples
///
/// ```
/// use medea_cluster::{ClusterState, Node, NodeId, Resources, ContainerRequest,
///     ApplicationId, ExecutionKind, Tag};
///
/// let nodes = (0..4).map(|i| Node::new(NodeId(i), Resources::new(8192, 8)));
/// let mut cluster = ClusterState::new(nodes, 2);
/// let req = ContainerRequest::new(Resources::new(2048, 1), [Tag::new("hb")]);
/// let c = cluster
///     .allocate(ApplicationId(1), NodeId(0), &req, ExecutionKind::LongRunning)
///     .unwrap();
/// assert_eq!(cluster.gamma(NodeId(0), &Tag::new("hb")), 1);
/// cluster.release(c).unwrap();
/// assert_eq!(cluster.gamma(NodeId(0), &Tag::new("hb")), 0);
/// ```
#[derive(Debug)]
pub struct ClusterState {
    pub(crate) nodes: Vec<Node>,
    pub(crate) node_state: Vec<NodeState>,
    pub(crate) groups: NodeGroups,
    pub(crate) allocations: HashMap<ContainerId, Allocation>,
    pub(crate) app_containers: HashMap<ApplicationId, Vec<ContainerId>>,
    pub(crate) next_container: u64,
    /// Per-group, per-set tag multisets, maintained incrementally on
    /// allocate/release so that `γ_𝒮(t)` queries over racks and other
    /// large node sets are O(1) instead of O(|𝒮|). Rebuilt whenever the
    /// group registry changes (see [`ClusterState::register_group`]).
    pub(crate) group_tags: HashMap<NodeGroupId, Vec<TagMultiset>>,
    /// Incremental tag/free-capacity indexes (see [`crate::index`]),
    /// maintained in O(Δ) on every allocate/release/retag.
    index: ClusterIndex,
    /// One-entry memo of the last `appid:` tag built by `allocate`.
    last_app_tag: Option<(ApplicationId, Tag)>,
    /// Global mutation epoch: incremented by every state-changing
    /// operation (allocate, release, tag/availability changes). Snapshots
    /// record it at capture so the commit path can measure staleness.
    pub(crate) epoch: u64,
    /// Per-node generation stamp: the epoch of the node's last mutation.
    pub(crate) node_generation: Vec<u64>,
    /// Bounded log of recent `(epoch, node)` mutations, newest at the
    /// back, enabling O(changed) snapshot diffs.
    pub(crate) change_log: VecDeque<(u64, u32)>,
    /// Smallest `since` epoch the change log still answers exactly;
    /// diffs older than this fall back to the generation scan.
    pub(crate) change_log_floor: u64,
    /// Attached write-ahead journal, if any (see [`crate::restore`]).
    /// Every *non-probe* mutation appends one epoch-stamped record.
    /// Deliberately absent from clones: snapshots and other copies are
    /// scratch state whose mutations must never reach the log — only the
    /// live state journals.
    pub(crate) journal: Option<Arc<Mutex<Wal>>>,
    /// Threshold below which a non-idle node counts as fragmented
    /// (default: 2 GB / 1 core, the paper's §7.4 definition).
    pub fragmentation_threshold: Resources,
}

impl Clone for ClusterState {
    fn clone(&self) -> Self {
        ClusterState {
            nodes: self.nodes.clone(),
            node_state: self.node_state.clone(),
            groups: self.groups.clone(),
            allocations: self.allocations.clone(),
            app_containers: self.app_containers.clone(),
            next_container: self.next_container,
            group_tags: self.group_tags.clone(),
            index: self.index.clone(),
            last_app_tag: self.last_app_tag.clone(),
            epoch: self.epoch,
            node_generation: self.node_generation.clone(),
            change_log: self.change_log.clone(),
            change_log_floor: self.change_log_floor,
            // The journal is intentionally NOT cloned: a clone is scratch
            // state (snapshot, what-if copy) and journaling its mutations
            // would corrupt the durable history of the live state.
            journal: None,
            fragmentation_threshold: self.fragmentation_threshold,
        }
    }
}

/// Retained change-log entries; beyond this, old entries are trimmed and
/// diffs older than the trimmed range degrade to an O(nodes) scan.
const CHANGE_LOG_CAP: usize = 4096;

impl ClusterState {
    /// Creates a cluster from nodes, registering a `rack` partition with
    /// `racks` racks.
    pub fn new(nodes: impl IntoIterator<Item = Node>, racks: usize) -> Self {
        let nodes: Vec<Node> = nodes.into_iter().collect();
        let mut groups = NodeGroups::new(nodes.len());
        groups.register_partition(NodeGroupId::rack(), racks);
        Self::with_groups(nodes, groups)
    }

    /// Creates a cluster with a custom group registry.
    pub fn with_groups(nodes: Vec<Node>, groups: NodeGroups) -> Self {
        let node_state = nodes
            .iter()
            .map(|n| NodeState {
                free: n.capacity,
                tags: n.static_tags.iter().cloned().collect(),
                containers: Vec::new(),
                available: true,
            })
            .collect();
        let num_nodes = nodes.len();
        let mut state = ClusterState {
            nodes,
            node_state,
            groups,
            allocations: HashMap::new(),
            app_containers: HashMap::new(),
            next_container: 0,
            group_tags: HashMap::new(),
            index: ClusterIndex::new(IndexConfig::default()),
            last_app_tag: None,
            epoch: 0,
            node_generation: vec![0; num_nodes],
            change_log: VecDeque::new(),
            change_log_floor: 0,
            journal: None,
            fragmentation_threshold: Resources::new(2048, 1),
        };
        state.rebuild_group_tags();
        state.rebuild_index();
        state
    }

    /// Appends one journal record at the current epoch, if a journal is
    /// attached. Best-effort: storage failures are counted in
    /// [`medea_journal::JournalStats::append_errors`], not propagated —
    /// placement must not start failing because the journal's disk did.
    fn record(&self, op: JournalOp) {
        if let Some(journal) = &self.journal {
            let mut wal = match journal.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            wal.append_best_effort(&JournalRecord {
                epoch: self.epoch,
                op,
            });
        }
    }

    /// Rebuilds the incremental indexes from scratch (O(nodes × tags)).
    fn rebuild_index(&mut self) {
        self.index.rebuild(
            self.node_state
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, &s.tags, s.free)),
        );
    }

    /// Records a mutation of `node`: bumps the global epoch, stamps the
    /// node's generation, and appends to the bounded change log.
    fn touch(&mut self, node: NodeId) {
        self.epoch += 1;
        if let Some(g) = self.node_generation.get_mut(node.index()) {
            *g = self.epoch;
        }
        self.change_log.push_back((self.epoch, node.0));
        while self.change_log.len() > CHANGE_LOG_CAP {
            if let Some((e, _)) = self.change_log.pop_front() {
                // Entries at epoch <= e are gone: only diffs since >= e
                // remain exact.
                self.change_log_floor = e;
            }
        }
    }

    /// Records a mutation affecting every node (group topology changes):
    /// one epoch bump, all generations stamped, change log reset.
    fn touch_all(&mut self) {
        self.epoch += 1;
        for g in &mut self.node_generation {
            *g = self.epoch;
        }
        self.change_log.clear();
        self.change_log_floor = self.epoch;
    }

    /// The global mutation epoch (see [`crate::ClusterSnapshot`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The epoch of a node's last mutation (0 = never mutated).
    pub fn node_generation(&self, node: NodeId) -> u64 {
        self.node_generation.get(node.index()).copied().unwrap_or(0)
    }

    /// Captures a versioned snapshot of this state (see
    /// [`crate::ClusterSnapshot::capture`]).
    pub fn snapshot(&self) -> crate::ClusterSnapshot {
        crate::ClusterSnapshot::capture(self)
    }

    /// Nodes mutated after epoch `since`, ascending and deduplicated.
    /// O(changed) via the change log while it covers `since`; O(nodes)
    /// generation comparison once the log has been trimmed past it.
    pub fn nodes_changed_since(&self, since: u64) -> Vec<NodeId> {
        if since >= self.epoch {
            return Vec::new();
        }
        // `since >= floor` (not `>`) is exact, including at the boundary
        // where an overflow pop just set `change_log_floor` to the popped
        // entry's epoch: epochs are unique (every `touch` bumps the global
        // epoch before logging), so the popped entry is the only one at
        // epoch == floor, and a query at `since == floor` only needs
        // entries with epoch > floor — all of which are still in the log.
        // After `touch_all` the log is empty with floor == epoch, and
        // `since == floor` is already handled by the early return above.
        // Only `since < floor` can have lost entries and must fall back to
        // the generation scan.
        if since >= self.change_log_floor {
            let mut out: Vec<u32> = self
                .change_log
                .iter()
                .rev()
                .take_while(|&&(e, _)| e > since)
                .map(|&(_, n)| n)
                .collect();
            out.sort_unstable();
            out.dedup();
            return out.into_iter().map(NodeId).collect();
        }
        self.node_generation
            .iter()
            .enumerate()
            .filter(|&(_, &g)| g > since)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Switches the index layer on or off (see [`IndexConfig`]); enabling
    /// rebuilds from current state, disabling drops the structures and
    /// routes every query through its naive full-scan fallback.
    pub fn set_index_config(&mut self, config: IndexConfig) {
        self.index.set_config(
            config,
            self.node_state
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, &s.tags, s.free)),
        );
    }

    /// Builder form of [`ClusterState::set_index_config`].
    pub fn with_index_config(mut self, config: IndexConfig) -> Self {
        self.set_index_config(config);
        self
    }

    /// Whether the incremental indexes are enabled.
    pub fn index_enabled(&self) -> bool {
        self.index.is_enabled()
    }

    /// Maintenance/query counters of the index layer (the `cluster.index_*`
    /// metrics).
    pub fn index_stats(&self) -> IndexStats {
        self.index.stats()
    }

    /// Registers (or replaces) a node group and refreshes the per-set tag
    /// caches. Use this instead of mutating the registry directly so the
    /// `γ_𝒮` caches stay coherent.
    pub fn register_group(&mut self, group: NodeGroupId, node_sets: Vec<Vec<NodeId>>) {
        let journal_op = self.journal.is_some().then(|| JournalOp::RegisterGroup {
            group: group.as_str().to_string(),
            sets: node_sets
                .iter()
                .map(|set| set.iter().map(|n| n.0).collect())
                .collect(),
        });
        self.groups.register(group, node_sets);
        self.rebuild_group_tags();
        // Group topology feeds every γ_𝒮 query: snapshots taken before
        // this point must see the whole cluster as changed.
        self.touch_all();
        if let Some(op) = journal_op {
            self.record(op);
        }
    }

    /// Rebuilds every group's per-set tag multiset from current state.
    fn rebuild_group_tags(&mut self) {
        let group_ids: Vec<NodeGroupId> = self.groups.group_ids().cloned().collect();
        self.group_tags.clear();
        for g in group_ids {
            let Ok(sets) = self.groups.sets_of(&g) else {
                continue;
            };
            let multisets: Vec<TagMultiset> = sets
                .iter()
                .map(|members| {
                    let sets: Vec<&TagMultiset> = members
                        .iter()
                        .filter_map(|n| self.node_state.get(n.index()).map(|s| &s.tags))
                        .collect();
                    TagMultiset::union(sets)
                })
                .collect();
            self.group_tags.insert(g, multisets);
        }
    }

    /// `γ_𝒮(t)` for set `set_idx` of `group`, O(1) for registered groups
    /// (falls back to scanning the set's members otherwise). The implicit
    /// `node` group delegates to [`ClusterState::gamma`].
    pub fn gamma_in_set(&self, group: &NodeGroupId, set_idx: usize, tag: &Tag) -> u32 {
        if group == &NodeGroupId::node() {
            return self.gamma(NodeId(set_idx as u32), tag);
        }
        if let Some(sets) = self.group_tags.get(group) {
            return sets.get(set_idx).map(|m| m.count(tag)).unwrap_or(0);
        }
        self.groups
            .set_members(group, set_idx)
            .map(|members| self.gamma_set(&members, tag))
            .unwrap_or(0)
    }

    /// Builds a homogeneous cluster: `n` nodes of equal `capacity` in
    /// `racks` racks (the shape of every experiment in §7).
    pub fn homogeneous(n: usize, capacity: Resources, racks: usize) -> Self {
        ClusterState::new((0..n).map(|i| Node::new(NodeId(i as u32), capacity)), racks)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(|i| NodeId(i as u32))
    }

    /// Returns the static description of a node.
    pub fn node(&self, id: NodeId) -> Result<&Node, ClusterError> {
        self.nodes
            .get(id.index())
            .ok_or(ClusterError::UnknownNode(id))
    }

    /// Returns the node-group registry.
    pub fn groups(&self) -> &NodeGroups {
        &self.groups
    }

    /// Free resources on a node.
    pub fn free(&self, id: NodeId) -> Result<Resources, ClusterError> {
        self.node_state
            .get(id.index())
            .map(|s| s.free)
            .ok_or(ClusterError::UnknownNode(id))
    }

    /// Whether a node is currently available for scheduling.
    pub fn is_available(&self, id: NodeId) -> bool {
        self.node_state
            .get(id.index())
            .map(|s| s.available)
            .unwrap_or(false)
    }

    /// Marks a node available or unavailable (failures, upgrades §2.3).
    ///
    /// Unavailability does not release containers: the resilience
    /// experiments count containers on unavailable nodes as unavailable.
    pub fn set_available(&mut self, id: NodeId, available: bool) -> Result<(), ClusterError> {
        let state = self
            .node_state
            .get_mut(id.index())
            .ok_or(ClusterError::UnknownNode(id))?;
        if state.available != available {
            state.available = available;
            self.touch(id);
            self.record(JournalOp::SetAvailable {
                node: id.0,
                available,
            });
        }
        Ok(())
    }

    /// Adds a node-level tag occurrence (not attached to any container),
    /// keeping the per-group `γ_𝒮` caches coherent. Used by the recovery
    /// pipeline to mark fault domains (e.g. `fault_domain` on every node
    /// of a failing service unit) so re-placement constraints can steer
    /// away from them.
    pub fn add_node_tag(&mut self, node: NodeId, tag: Tag) -> Result<(), ClusterError> {
        let state = self
            .node_state
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        state.tags.add(tag.clone());
        self.touch(node);
        self.record(JournalOp::NodeTagAdd {
            node: node.0,
            tag: tag.as_str().to_string(),
        });
        self.index.tag_added(node.0, &tag);
        for (g, sets) in self.group_tags.iter_mut() {
            if let Some(indices) = self.groups.sets_containing_ref(g, node) {
                for &si in indices {
                    if let Some(m) = sets.get_mut(si) {
                        m.add(tag.clone());
                    }
                }
            }
        }
        Ok(())
    }

    /// Removes one occurrence of a node-level tag added by
    /// [`ClusterState::add_node_tag`]. Removing a tag that is not present
    /// is a no-op (the multiset ignores it).
    pub fn remove_node_tag(&mut self, node: NodeId, tag: &Tag) -> Result<(), ClusterError> {
        let state = self
            .node_state
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        // Only propagate to the caches when the node actually carried the
        // tag: the group multisets are unions over member nodes, so an
        // unconditional remove would steal an occurrence contributed by a
        // sibling node.
        if !state.tags.remove(tag) {
            return Ok(());
        }
        self.touch(node);
        self.record(JournalOp::NodeTagRemove {
            node: node.0,
            tag: tag.as_str().to_string(),
        });
        self.index.tag_removed(node.0, tag);
        for (g, sets) in self.group_tags.iter_mut() {
            if let Some(indices) = self.groups.sets_containing_ref(g, node) {
                for &si in indices {
                    if let Some(m) = sets.get_mut(si) {
                        m.remove(tag);
                    }
                }
            }
        }
        Ok(())
    }

    /// Releases every container on a node (crash semantics: the machine is
    /// lost, so its containers are gone too). Returns the released
    /// allocations so callers can rebuild bookkeeping and re-place lost
    /// long-running containers.
    ///
    /// Unlike [`ClusterState::set_available`], which models a node that is
    /// temporarily unreachable but keeps its containers, this models hard
    /// loss — the recovery pipeline uses both: mark unavailable, then
    /// release and re-place.
    pub fn release_node(&mut self, node: NodeId) -> Result<Vec<Allocation>, ClusterError> {
        let ids: Vec<ContainerId> = self
            .node_state
            .get(node.index())
            .ok_or(ClusterError::UnknownNode(node))?
            .containers
            .clone();
        Ok(ids
            .into_iter()
            .filter_map(|id| self.release(id).ok())
            .collect())
    }

    /// The dynamic tag multiset of a node (`𝒯_n` with cardinalities, §4.1).
    pub fn node_tags(&self, id: NodeId) -> Result<&TagMultiset, ClusterError> {
        self.node_state
            .get(id.index())
            .map(|s| &s.tags)
            .ok_or(ClusterError::UnknownNode(id))
    }

    /// Tag cardinality `γ_n(t)` on a node (0 for unknown nodes).
    pub fn gamma(&self, id: NodeId, tag: &Tag) -> u32 {
        self.node_state
            .get(id.index())
            .map(|s| s.tags.count(tag))
            .unwrap_or(0)
    }

    /// Tag cardinality `γ_𝒮(t)` over a set of nodes (§4.1 tag-set union).
    pub fn gamma_set(&self, set: &[NodeId], tag: &Tag) -> u32 {
        set.iter().map(|&n| self.gamma(n, tag)).sum()
    }

    /// Nodes with `γ_n(t) > 0`, in ascending node-id order. Indexed:
    /// O(result) via the tag postings; disabled: full scan with identical
    /// output.
    pub fn nodes_with_tag(&self, tag: &Tag) -> Vec<NodeId> {
        if self.index.is_enabled() {
            let Some(postings) = self.index.postings(tag) else {
                return Vec::new();
            };
            self.index.note_visited(postings.len() as u64);
            return postings.keys().map(|&n| NodeId(n)).collect();
        }
        self.index.note_visited(self.nodes.len() as u64);
        self.node_ids()
            .filter(|&n| self.gamma(n, tag) > 0)
            .collect()
    }

    /// Nodes carrying at least one occurrence of *every* given tag, in
    /// ascending node-id order; an empty tag list matches all nodes.
    /// Indexed queries walk only the rarest tag's postings.
    pub fn nodes_with_all_tags(&self, tags: &[Tag]) -> Vec<NodeId> {
        if tags.is_empty() {
            return self.node_ids().collect();
        }
        if self.index.is_enabled() {
            return self
                .index
                .nodes_with_all_tags(tags)
                .into_iter()
                .map(NodeId)
                .collect();
        }
        self.index.note_visited(self.nodes.len() as u64);
        self.node_ids()
            .filter(|&n| tags.iter().all(|t| self.gamma(n, t) > 0))
            .collect()
    }

    /// All nodes ordered by free memory descending, ties broken by free
    /// vcores descending then node id descending (identical in both index
    /// modes).
    pub fn nodes_by_free_memory(&self) -> Vec<NodeId> {
        if self.index.is_enabled() {
            return self
                .index
                .nodes_by_free_memory()
                .into_iter()
                .map(NodeId)
                .collect();
        }
        self.index.note_visited(self.nodes.len() as u64);
        let mut keyed: Vec<(u64, u32, u32)> = self
            .node_state
            .iter()
            .enumerate()
            .map(|(i, s)| (s.free.memory_mb, s.free.vcores, i as u32))
            .collect();
        keyed.sort_unstable();
        keyed.into_iter().rev().map(|(_, _, n)| NodeId(n)).collect()
    }

    /// Nodes with at least `min_memory_mb` free, ascending by node id.
    /// Indexed: a range walk of the free-capacity ordering.
    pub fn nodes_with_free_memory_at_least(&self, min_memory_mb: u64) -> Vec<NodeId> {
        if self.index.is_enabled() {
            return self
                .index
                .nodes_with_free_memory_at_least(min_memory_mb)
                .into_iter()
                .map(NodeId)
                .collect();
        }
        self.index.note_visited(self.nodes.len() as u64);
        self.node_ids()
            .filter(|&n| self.node_state[n.index()].free.memory_mb >= min_memory_mb)
            .collect()
    }

    /// Verifies every incremental structure — tag postings, free-capacity
    /// orderings, and the per-group `γ_𝒮` caches — against a full
    /// recomputation from node state. Returns the first discrepancy; used
    /// by the differential/chaos test suites as the state invariant.
    pub fn check_index_consistency(&self) -> Result<(), String> {
        self.index.check_consistency(
            self.node_state
                .iter()
                .enumerate()
                .map(|(i, s)| (i as u32, &s.tags, s.free)),
        )?;
        for (g, cached) in &self.group_tags {
            let sets = self
                .groups
                .sets_of(g)
                .map_err(|_| format!("group '{g}' cached but not registered"))?;
            if sets.len() != cached.len() {
                return Err(format!(
                    "group '{g}': {} cached sets, {} registered",
                    cached.len(),
                    sets.len()
                ));
            }
            for (si, members) in sets.iter().enumerate() {
                let truth = TagMultiset::union(
                    members
                        .iter()
                        .filter_map(|n| self.node_state.get(n.index()).map(|s| &s.tags)),
                );
                if truth != cached[si] {
                    return Err(format!("group '{g}' set {si}: γ_𝒮 cache diverged"));
                }
            }
        }
        Ok(())
    }

    /// Containers currently on a node.
    pub fn containers_on(&self, id: NodeId) -> Result<&[ContainerId], ClusterError> {
        self.node_state
            .get(id.index())
            .map(|s| s.containers.as_slice())
            .ok_or(ClusterError::UnknownNode(id))
    }

    /// Containers of an application, in allocation order.
    pub fn app_containers(&self, app: ApplicationId) -> &[ContainerId] {
        self.app_containers
            .get(&app)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Looks up a live allocation.
    pub fn allocation(&self, id: ContainerId) -> Result<&Allocation, ClusterError> {
        self.allocations
            .get(&id)
            .ok_or(ClusterError::UnknownContainer(id))
    }

    /// All live allocations in arbitrary order.
    pub fn allocations(&self) -> impl Iterator<Item = &Allocation> {
        self.allocations.values()
    }

    /// Number of live containers.
    pub fn num_containers(&self) -> usize {
        self.allocations.len()
    }

    /// Allocates a container on a node, updating free resources and the
    /// node's tag multiset (the `appid:` tag is attached automatically).
    pub fn allocate(
        &mut self,
        app: ApplicationId,
        node: NodeId,
        request: &ContainerRequest,
        kind: ExecutionKind,
    ) -> Result<ContainerId, ClusterError> {
        self.allocate_inner(app, node, request, kind, false)
    }

    /// Tentative allocation for scorers: identical checks, γ multisets,
    /// and group caches as [`ClusterState::allocate`] — so every
    /// constraint-cardinality query sees the container — but skips the
    /// structures no constraint check reads (tag postings, free-capacity
    /// orderings, per-app container list). Those stay consistent with the
    /// *pre-probe* state, so the probe MUST be undone with
    /// [`ClusterState::probe_release`] before any index query runs.
    pub fn probe_allocate(
        &mut self,
        app: ApplicationId,
        node: NodeId,
        request: &ContainerRequest,
        kind: ExecutionKind,
    ) -> Result<ContainerId, ClusterError> {
        self.allocate_inner(app, node, request, kind, true)
    }

    fn allocate_inner(
        &mut self,
        app: ApplicationId,
        node: NodeId,
        request: &ContainerRequest,
        kind: ExecutionKind,
        probe: bool,
    ) -> Result<ContainerId, ClusterError> {
        let state = self
            .node_state
            .get_mut(node.index())
            .ok_or(ClusterError::UnknownNode(node))?;
        if !state.available {
            return Err(ClusterError::NodeUnavailable(node));
        }
        if !request.resources.fits_in(&state.free) {
            return Err(ClusterError::InsufficientResources {
                node,
                free: state.free,
                requested: request.resources,
            });
        }
        let mut tags = request.tags.clone();
        // Memoized: scoring probes allocate for the same app thousands of
        // times per round, and `Tag::app_id` formats a fresh string.
        let auto = match &self.last_app_tag {
            Some((a, t)) if *a == app => t.clone(),
            _ => {
                let t = Tag::app_id(app);
                self.last_app_tag = Some((app, t.clone()));
                t
            }
        };
        if !tags.contains(&auto) {
            tags.push(auto);
        }
        let old_free = state.free;
        state.free = state
            .free
            .checked_sub(&request.resources)
            .expect("fits_in checked above");
        state.tags.add_all(tags.iter().cloned());
        let new_free = state.free;
        // Maintain the incremental indexes (skipped for probes: nothing a
        // constraint check reads lives there, and the probe is rolled back
        // before any index query runs). Probes also leave the mutation
        // epoch untouched — they are net no-ops by contract.
        if !probe {
            self.touch(node);
            for t in &tags {
                self.index.tag_added(node.0, t);
            }
            self.index.free_changed(node.0, old_free, new_free);
        }
        // Maintain the per-group γ caches.
        for (g, sets) in self.group_tags.iter_mut() {
            if let Some(indices) = self.groups.sets_containing_ref(g, node) {
                for &si in indices {
                    if let Some(m) = sets.get_mut(si) {
                        m.add_all(tags.iter().cloned());
                    }
                }
            }
        }
        let state = self
            .node_state
            .get_mut(node.index())
            .expect("checked above");
        let id = ContainerId(self.next_container);
        self.next_container += 1;
        state.containers.push(id);
        self.allocations.insert(
            id,
            Allocation {
                id,
                app,
                node,
                resources: request.resources,
                tags,
                kind,
            },
        );
        if !probe {
            self.app_containers.entry(app).or_default().push(id);
            if self.journal.is_some() {
                if let Some(alloc) = self.allocations.get(&id) {
                    self.record(JournalOp::Place {
                        container: id.0,
                        app: app.0,
                        node: node.0,
                        memory_mb: alloc.resources.memory_mb,
                        vcores: alloc.resources.vcores,
                        long_running: matches!(kind, ExecutionKind::LongRunning),
                        tags: alloc.tags.iter().map(|t| t.as_str().to_string()).collect(),
                    });
                }
            }
        }
        Ok(id)
    }

    /// Releases a container, returning its resources and removing its tags.
    pub fn release(&mut self, id: ContainerId) -> Result<Allocation, ClusterError> {
        self.release_inner(id, false)
    }

    /// Undoes a [`ClusterState::probe_allocate`], restoring every
    /// structure the probe touched.
    pub fn probe_release(&mut self, id: ContainerId) -> Result<Allocation, ClusterError> {
        self.release_inner(id, true)
    }

    fn release_inner(&mut self, id: ContainerId, probe: bool) -> Result<Allocation, ClusterError> {
        let alloc = self
            .allocations
            .remove(&id)
            .ok_or(ClusterError::UnknownContainer(id))?;
        let state = &mut self.node_state[alloc.node.index()];
        let old_free = state.free;
        state.free += alloc.resources;
        // Only occurrences still present on the node propagate outward:
        // `remove_node_tag` may have consumed one of this container's
        // occurrences already, and decrementing the group caches or the
        // postings for a tag the node no longer carries would steal an
        // occurrence contributed by a sibling node. `missing` stays an
        // unallocated empty Vec in the common (and every probe's) case,
        // keeping the scoring hot path allocation-free.
        let mut missing: Vec<&Tag> = Vec::new();
        for t in &alloc.tags {
            if !state.tags.remove(t) {
                missing.push(t);
            }
        }
        // Per-tag removal credits: duplicates in the tag list must skip
        // exactly as many occurrences as failed to remove.
        let removed: Option<Vec<&Tag>> = if missing.is_empty() {
            None
        } else {
            let mut skip = missing;
            let mut out = Vec::with_capacity(alloc.tags.len());
            for t in &alloc.tags {
                if let Some(pos) = skip.iter().position(|m| *m == t) {
                    skip.swap_remove(pos);
                } else {
                    out.push(t);
                }
            }
            Some(out)
        };
        // Probes always release the most recent allocation on the node, so
        // this is normally an O(1) pop.
        if state.containers.last() == Some(&id) {
            state.containers.pop();
        } else {
            state.containers.retain(|&c| c != id);
        }
        let new_free = state.free;
        // Maintain the incremental indexes.
        if !probe {
            self.touch(alloc.node);
            match &removed {
                None => {
                    for t in &alloc.tags {
                        self.index.tag_removed(alloc.node.0, t);
                    }
                }
                Some(r) => {
                    for &t in r {
                        self.index.tag_removed(alloc.node.0, t);
                    }
                }
            }
            self.index.free_changed(alloc.node.0, old_free, new_free);
        }
        // Maintain the per-group γ caches.
        for (g, sets) in self.group_tags.iter_mut() {
            if let Some(indices) = self.groups.sets_containing_ref(g, alloc.node) {
                for &si in indices {
                    if let Some(m) = sets.get_mut(si) {
                        match &removed {
                            None => m.remove_all(alloc.tags.iter()),
                            Some(r) => m.remove_all(r.iter().copied()),
                        };
                    }
                }
            }
        }
        if !probe {
            if let Some(v) = self.app_containers.get_mut(&alloc.app) {
                v.retain(|&c| c != id);
                if v.is_empty() {
                    self.app_containers.remove(&alloc.app);
                }
            }
            self.record(JournalOp::Release { container: id.0 });
        }
        Ok(alloc)
    }

    /// Releases every container of an application; returns how many were
    /// released.
    pub fn release_app(&mut self, app: ApplicationId) -> usize {
        let ids: Vec<ContainerId> = self.app_containers(app).to_vec();
        let n = ids.len();
        for id in ids {
            let _ = self.release(id);
        }
        n
    }

    /// Cluster-wide total capacity.
    pub fn total_capacity(&self) -> Resources {
        self.nodes.iter().map(|n| n.capacity).sum()
    }

    /// Cluster-wide free resources (available nodes only).
    pub fn total_free(&self) -> Resources {
        self.node_state
            .iter()
            .filter(|s| s.available)
            .map(|s| s.free)
            .sum()
    }

    /// Memory utilization of one node in `[0, 1]`.
    pub fn memory_utilization(&self, id: NodeId) -> f64 {
        let cap = self.nodes[id.index()].capacity;
        let free = self.node_state[id.index()].free;
        cap.saturating_sub(&free).memory_share(&cap)
    }

    /// Computes fragmentation and load-imbalance statistics (§7.4: a node
    /// is fragmented when it has less than the threshold free and is not
    /// fully utilized; load imbalance is the CV of memory utilization).
    pub fn utilization_stats(&self) -> UtilizationStats {
        let n = self.nodes.len().max(1);
        let mut fragmented = 0usize;
        let mut utils = Vec::with_capacity(n);
        for (node, state) in self.nodes.iter().zip(&self.node_state) {
            let used = node.capacity.saturating_sub(&state.free);
            let util = used.memory_share(&node.capacity);
            utils.push(util);
            let below = !self.fragmentation_threshold.fits_in(&state.free);
            let fully_used = state.free.memory_mb == 0 || state.free.vcores == 0;
            if below && !fully_used {
                fragmented += 1;
            }
        }
        let mean = utils.iter().sum::<f64>() / n as f64;
        let var = utils.iter().map(|u| (u - mean) * (u - mean)).sum::<f64>() / n as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        UtilizationStats {
            fragmented_fraction: fragmented as f64 / n as f64,
            memory_cv: cv,
            mean_memory_utilization: mean,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cluster() -> ClusterState {
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2)
    }

    fn req(mem: u64, tags: &[&str]) -> ContainerRequest {
        ContainerRequest::new(Resources::new(mem, 1), tags.iter().map(|t| Tag::new(*t)))
    }

    #[test]
    fn allocate_updates_free_and_tags() {
        let mut c = small_cluster();
        let id = c
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(2048, &["hb", "hb_m"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        assert_eq!(c.free(NodeId(0)).unwrap(), Resources::new(6144, 7));
        assert_eq!(c.gamma(NodeId(0), &Tag::new("hb")), 1);
        assert_eq!(c.gamma(NodeId(0), &Tag::new("appid:1")), 1);
        assert_eq!(c.containers_on(NodeId(0)).unwrap(), &[id]);
        assert_eq!(c.app_containers(ApplicationId(1)), &[id]);
    }

    #[test]
    fn release_restores_everything() {
        let mut c = small_cluster();
        let id = c
            .allocate(
                ApplicationId(1),
                NodeId(1),
                &req(1024, &["tf"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let alloc = c.release(id).unwrap();
        assert_eq!(alloc.node, NodeId(1));
        assert_eq!(c.free(NodeId(1)).unwrap(), Resources::new(8192, 8));
        assert_eq!(c.gamma(NodeId(1), &Tag::new("tf")), 0);
        assert!(c.containers_on(NodeId(1)).unwrap().is_empty());
        assert!(c.app_containers(ApplicationId(1)).is_empty());
        assert!(matches!(
            c.release(id),
            Err(ClusterError::UnknownContainer(_))
        ));
    }

    #[test]
    fn change_log_floor_boundary_is_exact() {
        // After overflow pops, `change_log_floor` is the epoch of the
        // last popped entry. A diff at exactly `since == floor` takes the
        // fast path; because epochs are unique, every entry it needs
        // (epoch > floor) is still in the log, so the fast path must
        // agree exactly with the O(nodes) generation scan — not merely
        // return a superset.
        let mut c = ClusterState::homogeneous(8, Resources::new(8192, 8), 2);
        let zero = ContainerRequest::new(Resources::new(0, 0), Vec::<Tag>::new());
        // Epochs 1..=5 touch only node 7; epochs 6..=CAP+5 touch 0..=6.
        for _ in 0..5 {
            c.allocate(ApplicationId(1), NodeId(7), &zero, ExecutionKind::Task)
                .unwrap();
        }
        for i in 0..CHANGE_LOG_CAP {
            c.allocate(
                ApplicationId(1),
                NodeId((i % 7) as u32),
                &zero,
                ExecutionKind::Task,
            )
            .unwrap();
        }
        assert_eq!(c.epoch(), (CHANGE_LOG_CAP + 5) as u64);
        let floor = 5u64; // epochs 1..=5 were popped to keep CAP entries
        let ground_truth = |since: u64| -> Vec<NodeId> {
            (0..8u32)
                .map(NodeId)
                .filter(|&n| c.node_generation(n) > since)
                .collect()
        };
        // Exactly at the floor: node 7 (last touched at epoch 5) must be
        // excluded and nodes 0..=6 included, same as the generation scan.
        let fast = c.nodes_changed_since(floor);
        assert_eq!(fast, ground_truth(floor));
        assert_eq!(fast, (0..7u32).map(NodeId).collect::<Vec<_>>());
        // One epoch below the floor the log has lost an entry, so the
        // slow path must report node 7's epoch-5 mutation too.
        let below = c.nodes_changed_since(floor - 1);
        assert_eq!(below, ground_truth(floor - 1));
        assert!(below.contains(&NodeId(7)));
    }

    #[test]
    fn capacity_is_enforced() {
        let mut c = small_cluster();
        let big = req(9000, &[]);
        let err = c
            .allocate(ApplicationId(1), NodeId(0), &big, ExecutionKind::Task)
            .unwrap_err();
        assert!(matches!(err, ClusterError::InsufficientResources { .. }));
    }

    #[test]
    fn vcore_capacity_is_enforced() {
        let mut c = small_cluster();
        for _ in 0..8 {
            c.allocate(
                ApplicationId(1),
                NodeId(0),
                &req(64, &[]),
                ExecutionKind::Task,
            )
            .unwrap();
        }
        let err = c
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(64, &[]),
                ExecutionKind::Task,
            )
            .unwrap_err();
        assert!(matches!(err, ClusterError::InsufficientResources { .. }));
    }

    #[test]
    fn unavailable_nodes_reject_allocations() {
        let mut c = small_cluster();
        c.set_available(NodeId(2), false).unwrap();
        let err = c
            .allocate(
                ApplicationId(1),
                NodeId(2),
                &req(64, &[]),
                ExecutionKind::Task,
            )
            .unwrap_err();
        assert_eq!(err, ClusterError::NodeUnavailable(NodeId(2)));
        c.set_available(NodeId(2), true).unwrap();
        assert!(c
            .allocate(
                ApplicationId(1),
                NodeId(2),
                &req(64, &[]),
                ExecutionKind::Task
            )
            .is_ok());
    }

    #[test]
    fn duplicate_tags_accumulate_gamma() {
        let mut c = small_cluster();
        for _ in 0..3 {
            c.allocate(
                ApplicationId(7),
                NodeId(0),
                &req(512, &["hb", "hb_rs"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        }
        assert_eq!(c.gamma(NodeId(0), &Tag::new("hb")), 3);
        assert_eq!(c.gamma(NodeId(0), &Tag::new("hb_rs")), 3);
        let rack0: Vec<NodeId> = c.groups().set_members(&NodeGroupId::rack(), 0).unwrap();
        assert_eq!(c.gamma_set(&rack0, &Tag::new("hb")), 3);
    }

    #[test]
    fn release_app_drops_all() {
        let mut c = small_cluster();
        for n in 0..3u32 {
            c.allocate(
                ApplicationId(5),
                NodeId(n),
                &req(256, &["s"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        }
        assert_eq!(c.release_app(ApplicationId(5)), 3);
        assert_eq!(c.num_containers(), 0);
        assert_eq!(c.total_free(), c.total_capacity());
    }

    #[test]
    fn fragmentation_stats() {
        let mut c = ClusterState::homogeneous(2, Resources::new(4096, 4), 1);
        // Node 0: leave 1 GB free (< 2 GB threshold, not fully used).
        c.allocate(
            ApplicationId(1),
            NodeId(0),
            &req(3072, &[]),
            ExecutionKind::Task,
        )
        .unwrap();
        let stats = c.utilization_stats();
        assert!((stats.fragmented_fraction - 0.5).abs() < 1e-12);
        assert!(stats.mean_memory_utilization > 0.0);
        assert!(stats.memory_cv > 0.0);
    }

    #[test]
    fn fully_used_node_is_not_fragmented() {
        let mut c = ClusterState::homogeneous(1, Resources::new(4096, 4), 1);
        c.allocate(
            ApplicationId(1),
            NodeId(0),
            &ContainerRequest::new(Resources::new(4096, 4), []),
            ExecutionKind::Task,
        )
        .unwrap();
        let stats = c.utilization_stats();
        assert_eq!(stats.fragmented_fraction, 0.0);
    }

    #[test]
    fn node_tags_mark_and_unmark() {
        let mut c = small_cluster();
        let fault = Tag::new("fault_domain");
        c.add_node_tag(NodeId(0), fault.clone()).unwrap();
        c.add_node_tag(NodeId(0), fault.clone()).unwrap();
        assert_eq!(c.gamma(NodeId(0), &fault), 2);
        // Rack-level γ cache sees the mark too.
        let rack0: Vec<NodeId> = c.groups().set_members(&NodeGroupId::rack(), 0).unwrap();
        assert_eq!(c.gamma_set(&rack0, &fault), 2);
        assert_eq!(c.gamma_in_set(&NodeGroupId::rack(), 0, &fault), 2);
        c.remove_node_tag(NodeId(0), &fault).unwrap();
        assert_eq!(c.gamma(NodeId(0), &fault), 1);
        c.remove_node_tag(NodeId(0), &fault).unwrap();
        assert_eq!(c.gamma(NodeId(0), &fault), 0);
        assert_eq!(c.gamma_in_set(&NodeGroupId::rack(), 0, &fault), 0);
        // Removing an absent tag is a no-op, and unknown nodes error.
        c.remove_node_tag(NodeId(0), &fault).unwrap();
        assert!(c.add_node_tag(NodeId(99), fault.clone()).is_err());
        assert!(c.remove_node_tag(NodeId(99), &fault).is_err());
    }

    #[test]
    fn release_node_drops_all_its_containers() {
        let mut c = small_cluster();
        for _ in 0..3 {
            c.allocate(
                ApplicationId(1),
                NodeId(0),
                &req(512, &["svc"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        }
        c.allocate(
            ApplicationId(2),
            NodeId(1),
            &req(512, &["svc"]),
            ExecutionKind::Task,
        )
        .unwrap();
        let lost = c.release_node(NodeId(0)).unwrap();
        assert_eq!(lost.len(), 3);
        assert!(lost.iter().all(|a| a.node == NodeId(0)));
        assert_eq!(c.num_containers(), 1);
        assert_eq!(c.free(NodeId(0)).unwrap(), Resources::new(8192, 8));
        assert_eq!(c.gamma(NodeId(0), &Tag::new("svc")), 0);
        assert!(c.release_node(NodeId(42)).is_err());
    }

    #[test]
    fn static_tags_present_at_startup() {
        let nodes = vec![
            Node::new(NodeId(0), Resources::new(1024, 2)).with_static_tags([Tag::new("gpu")]),
            Node::new(NodeId(1), Resources::new(1024, 2)),
        ];
        let groups = NodeGroups::new(2);
        let c = ClusterState::with_groups(nodes, groups);
        assert_eq!(c.gamma(NodeId(0), &Tag::new("gpu")), 1);
        assert_eq!(c.gamma(NodeId(1), &Tag::new("gpu")), 0);
    }
}
