//! Differential property suite for the incremental index layer.
//!
//! Two cluster states — one with the index enabled, one with
//! [`IndexConfig::disabled()`] — replay the same random sequence of
//! allocate/release/retag/crash/recover operations, driven by fixed
//! `medea-rand` seeds. After every step, every index-backed query is
//! checked three ways:
//!
//! 1. against a naive full-scan oracle recomputed in this file from the
//!    public per-node accessors (`gamma`, `free`, `node_ids`),
//! 2. against the disabled-index twin (scan fallback must be
//!    bit-identical to the indexed path, including ordering), and
//! 3. against [`ClusterState::check_index_consistency`], which
//!    recomputes the postings, free orderings, and γ_𝒮 caches from
//!    scratch.

use medea_cluster::{
    ApplicationId, ClusterState, ContainerId, ContainerRequest, ExecutionKind, IndexConfig,
    NodeGroupId, NodeId, Resources, Tag,
};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

const NODES: u32 = 12;
const SEEDS: u64 = 64;
const OPS_PER_SEED: usize = 120;
const TAG_UNIVERSE: u8 = 6;

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        app: u64,
        node: u32,
        mem: u64,
        tags: Vec<u8>,
    },
    Release {
        idx: usize,
    },
    AddNodeTag {
        node: u32,
        tag: u8,
    },
    RemoveNodeTag {
        node: u32,
        tag: u8,
    },
    Crash {
        node: u32,
    },
    Recover {
        node: u32,
    },
}

fn tag_name(t: u8) -> Tag {
    Tag::new(format!("t{t}"))
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0..20u32) {
        0..=9 => Op::Alloc {
            app: rng.random_range(0..5u64),
            node: rng.random_range(0..NODES),
            mem: rng.random_range(1..3000u64),
            tags: (0..rng.random_range(0..3usize))
                .map(|_| rng.random_range(0..TAG_UNIVERSE as u64) as u8)
                .collect(),
        },
        10..=13 => Op::Release {
            idx: rng.random_range(0..64usize),
        },
        14..=15 => Op::AddNodeTag {
            node: rng.random_range(0..NODES),
            tag: rng.random_range(0..TAG_UNIVERSE as u64) as u8,
        },
        16..=17 => Op::RemoveNodeTag {
            node: rng.random_range(0..NODES),
            tag: rng.random_range(0..TAG_UNIVERSE as u64) as u8,
        },
        18 => Op::Crash {
            node: rng.random_range(0..NODES),
        },
        _ => Op::Recover {
            node: rng.random_range(0..NODES),
        },
    }
}

fn build_state(config: IndexConfig) -> ClusterState {
    let mut state = ClusterState::homogeneous(NODES as usize, Resources::new(16 * 1024, 64), 3)
        .with_index_config(config);
    // Overlapping custom group: exercises multi-membership γ_𝒮 updates.
    state.register_group(
        NodeGroupId::new("zone"),
        vec![
            (0..7).map(NodeId).collect(),
            (5..NODES).map(NodeId).collect(),
        ],
    );
    state
}

/// Applies one op; returns released container ids (for `live` upkeep).
/// The evolution is fully determined by the op and prior state, so the
/// enabled and disabled twins stay in lockstep.
fn apply(state: &mut ClusterState, op: &Op, live: &mut Vec<ContainerId>) {
    match op {
        Op::Alloc {
            app,
            node,
            mem,
            tags,
        } => {
            let req =
                ContainerRequest::new(Resources::new(*mem, 1), tags.iter().map(|&t| tag_name(t)));
            if let Ok(id) = state.allocate(
                ApplicationId(*app),
                NodeId(*node),
                &req,
                ExecutionKind::LongRunning,
            ) {
                live.push(id);
            }
        }
        Op::Release { idx } => {
            if !live.is_empty() {
                let id = live.remove(idx % live.len());
                state.release(id).unwrap();
            }
        }
        Op::AddNodeTag { node, tag } => {
            state.add_node_tag(NodeId(*node), tag_name(*tag)).unwrap();
        }
        Op::RemoveNodeTag { node, tag } => {
            state
                .remove_node_tag(NodeId(*node), &tag_name(*tag))
                .unwrap();
        }
        Op::Crash { node } => {
            state.set_available(NodeId(*node), false).unwrap();
            let lost = state.release_node(NodeId(*node)).unwrap();
            live.retain(|id| !lost.iter().any(|a| a.id == *id));
        }
        Op::Recover { node } => {
            state.set_available(NodeId(*node), true).unwrap();
        }
    }
}

// ---- Naive full-scan oracles (recomputed from public accessors) ----

fn oracle_nodes_with_tag(s: &ClusterState, tag: &Tag) -> Vec<NodeId> {
    s.node_ids().filter(|&n| s.gamma(n, tag) > 0).collect()
}

fn oracle_nodes_with_all_tags(s: &ClusterState, tags: &[Tag]) -> Vec<NodeId> {
    s.node_ids()
        .filter(|&n| tags.iter().all(|t| s.gamma(n, t) > 0))
        .collect()
}

fn oracle_by_free_memory(s: &ClusterState) -> Vec<NodeId> {
    let mut keyed: Vec<(u64, u32, u32)> = s
        .node_ids()
        .map(|n| {
            let f = s.free(n).unwrap();
            (f.memory_mb, f.vcores, n.0)
        })
        .collect();
    keyed.sort_unstable();
    keyed.into_iter().rev().map(|(_, _, n)| NodeId(n)).collect()
}

fn oracle_free_at_least(s: &ClusterState, min: u64) -> Vec<NodeId> {
    s.node_ids()
        .filter(|&n| s.free(n).unwrap().memory_mb >= min)
        .collect()
}

/// Every query family, checked against the oracle and the twin.
fn check_step(seed: u64, step: usize, on: &ClusterState, off: &ClusterState) {
    let ctx = |q: &str| format!("seed {seed} step {step}: {q}");

    on.check_index_consistency().unwrap_or_else(|e| {
        panic!("{}: {e}", ctx("index consistency"));
    });
    off.check_index_consistency().unwrap_or_else(|e| {
        panic!("{}: {e}", ctx("disabled-index consistency"));
    });

    // Tag queries: the fixed tag universe plus every app-id tag.
    let mut tags: Vec<Tag> = (0..TAG_UNIVERSE).map(tag_name).collect();
    tags.extend((0..5).map(|a| Tag::app_id(ApplicationId(a))));
    for t in &tags {
        let expected = oracle_nodes_with_tag(on, t);
        assert_eq!(on.nodes_with_tag(t), expected, "{}", ctx("nodes_with_tag"));
        assert_eq!(
            off.nodes_with_tag(t),
            expected,
            "{}",
            ctx("nodes_with_tag off")
        );
        // Per-node cardinality (γ window) must agree across modes.
        for n in on.node_ids() {
            assert_eq!(on.gamma(n, t), off.gamma(n, t), "{}", ctx("gamma"));
        }
    }

    // Conjunctive tag queries over pairs (including same-tag pairs).
    for pair in [[0u8, 1], [1, 1], [2, 4], [3, 5]] {
        let q: Vec<Tag> = pair.iter().map(|&t| tag_name(t)).collect();
        let expected = oracle_nodes_with_all_tags(on, &q);
        assert_eq!(on.nodes_with_all_tags(&q), expected, "{}", ctx("all_tags"));
        assert_eq!(
            off.nodes_with_all_tags(&q),
            expected,
            "{}",
            ctx("all_tags off")
        );
    }
    assert_eq!(
        on.nodes_with_all_tags(&[]),
        on.node_ids().collect::<Vec<_>>(),
        "{}",
        ctx("all_tags empty")
    );

    // Free-capacity ordering and range queries.
    assert_eq!(
        on.nodes_by_free_memory(),
        oracle_by_free_memory(on),
        "{}",
        ctx("by_free")
    );
    assert_eq!(
        off.nodes_by_free_memory(),
        oracle_by_free_memory(on),
        "{}",
        ctx("by_free off")
    );
    for min in [0u64, 1, 1024, 8 * 1024, 16 * 1024, 20 * 1024] {
        let expected = oracle_free_at_least(on, min);
        assert_eq!(
            on.nodes_with_free_memory_at_least(min),
            expected,
            "{}",
            ctx("free_at_least")
        );
        assert_eq!(
            off.nodes_with_free_memory_at_least(min),
            expected,
            "{}",
            ctx("free_at_least off")
        );
    }

    // Group-membership cardinalities: cached γ_𝒮 vs a member scan.
    for group in [NodeGroupId::rack(), NodeGroupId::new("zone")] {
        let sets = on.groups().sets_of(&group).unwrap();
        for (si, members) in sets.iter().enumerate() {
            for t in &tags {
                let scanned = on.gamma_set(members, t);
                assert_eq!(
                    on.gamma_in_set(&group, si, t),
                    scanned,
                    "{}",
                    ctx("gamma_in_set")
                );
                assert_eq!(
                    off.gamma_in_set(&group, si, t),
                    scanned,
                    "{}",
                    ctx("gamma_in_set off")
                );
            }
        }
    }
}

/// Tentpole differential property: over ≥50 fixed seeds of random
/// allocate/release/retag/crash/recover sequences, every index query
/// equals the full-scan oracle after each step, in both index modes.
#[test]
fn index_matches_scan_oracle_under_random_ops() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0x1D1F ^ seed);
        let mut on = build_state(IndexConfig::enabled());
        let mut off = build_state(IndexConfig::disabled());
        assert!(on.index_enabled() && !off.index_enabled());
        let mut live_on: Vec<ContainerId> = Vec::new();
        let mut live_off: Vec<ContainerId> = Vec::new();

        for step in 0..OPS_PER_SEED {
            let op = random_op(&mut rng);
            apply(&mut on, &op, &mut live_on);
            apply(&mut off, &op, &mut live_off);
            assert_eq!(
                live_on, live_off,
                "seed {seed} step {step}: container id drift"
            );
            check_step(seed, step, &on, &off);
        }

        // Draining the survivors restores a pristine, consistent index.
        for id in live_on {
            on.release(id).unwrap();
        }
        assert_eq!(on.num_containers(), 0);
        on.check_index_consistency().unwrap();
    }
}

/// Toggling the index off and on mid-stream rebuilds it exactly: a
/// rebuilt index must answer identically to one maintained throughout.
#[test]
fn reenabling_index_rebuilds_exactly() {
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(0x7EB1 ^ seed);
        let mut state = build_state(IndexConfig::enabled());
        let mut live: Vec<ContainerId> = Vec::new();
        for _ in 0..40 {
            let op = random_op(&mut rng);
            apply(&mut state, &op, &mut live);
        }
        let before = state.index_stats().rebuilds;
        state.set_index_config(IndexConfig::disabled());
        // Mutations while disabled must not poison a later rebuild.
        for _ in 0..40 {
            let op = random_op(&mut rng);
            apply(&mut state, &op, &mut live);
        }
        state.set_index_config(IndexConfig::enabled());
        assert!(
            state.index_stats().rebuilds > before,
            "seed {seed}: no rebuild"
        );
        state.check_index_consistency().unwrap();
        for t in 0..TAG_UNIVERSE {
            let tag = tag_name(t);
            assert_eq!(
                state.nodes_with_tag(&tag),
                oracle_nodes_with_tag(&state, &tag),
                "seed {seed}: rebuilt postings diverge"
            );
        }
        assert_eq!(state.nodes_by_free_memory(), oracle_by_free_memory(&state));
    }
}
