//! Checkpoint/restore round-trip property suite (the journal's
//! differential gate).
//!
//! 64 fixed seeds drive a random sequence of allocate / release /
//! retag / crash / recover / group-registration ops against a journaled
//! `ClusterState`, with a checkpoint installed at a random mid-point.
//! After the sequence, `restore(checkpoint + log tail)` must reproduce
//! the live state **exactly**: equal [`ClusterState::digest`] (nodes,
//! allocations, app lists, id counter, group γ caches, epoch), a clean
//! [`ClusterState::check_index_consistency`] (index and γ caches
//! rebuilt, not copied), and a clean
//! [`ClusterState::check_allocation_consistency`].
//!
//! A second family of tests verifies the rejection path: a corrupted or
//! truncated log tail, a corrupted checkpoint, or a missing checkpoint
//! must fail restore outright — the journal is never replayed
//! partially.

use std::sync::{Arc, Mutex};

use medea_cluster::{
    ApplicationId, ClusterState, ContainerId, ContainerRequest, ExecutionKind, NodeGroupId, NodeId,
    Resources, RestoreError, Tag,
};
use medea_journal::{frame, JournalError, MemoryStorage, Wal};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

const NODES: u32 = 12;
const SEEDS: u64 = 64;
const OPS_PER_SEED: usize = 140;
const TAG_UNIVERSE: u8 = 6;

fn tag_name(t: u8) -> Tag {
    Tag::new(format!("t{t}"))
}

#[derive(Debug, Clone)]
enum Op {
    Alloc {
        app: u64,
        node: u32,
        mem: u64,
        tags: Vec<u8>,
        task: bool,
    },
    Release {
        idx: usize,
    },
    AddNodeTag {
        node: u32,
        tag: u8,
    },
    RemoveNodeTag {
        node: u32,
        tag: u8,
    },
    Crash {
        node: u32,
    },
    Recover {
        node: u32,
    },
    RegisterZone {
        split: u32,
    },
}

fn random_op(rng: &mut StdRng) -> Op {
    match rng.random_range(0..21u32) {
        0..=9 => Op::Alloc {
            app: rng.random_range(0..5u64),
            node: rng.random_range(0..NODES),
            mem: rng.random_range(1..3000u64),
            tags: (0..rng.random_range(0..3usize))
                .map(|_| rng.random_range(0..TAG_UNIVERSE as u64) as u8)
                .collect(),
            task: rng.random_range(0..4u32) == 0,
        },
        10..=13 => Op::Release {
            idx: rng.random_range(0..64usize),
        },
        14..=15 => Op::AddNodeTag {
            node: rng.random_range(0..NODES),
            tag: rng.random_range(0..TAG_UNIVERSE as u64) as u8,
        },
        16..=17 => Op::RemoveNodeTag {
            node: rng.random_range(0..NODES),
            tag: rng.random_range(0..TAG_UNIVERSE as u64) as u8,
        },
        18 => Op::Crash {
            node: rng.random_range(0..NODES),
        },
        19 => Op::Recover {
            node: rng.random_range(0..NODES),
        },
        _ => Op::RegisterZone {
            split: rng.random_range(2..NODES - 2),
        },
    }
}

fn apply(state: &mut ClusterState, op: &Op, live: &mut Vec<ContainerId>) {
    match op {
        Op::Alloc {
            app,
            node,
            mem,
            tags,
            task,
        } => {
            let req =
                ContainerRequest::new(Resources::new(*mem, 1), tags.iter().map(|&t| tag_name(t)));
            let kind = if *task {
                ExecutionKind::Task
            } else {
                ExecutionKind::LongRunning
            };
            if let Ok(id) = state.allocate(ApplicationId(*app), NodeId(*node), &req, kind) {
                live.push(id);
            }
        }
        Op::Release { idx } => {
            if !live.is_empty() {
                let id = live.remove(idx % live.len());
                state.release(id).unwrap();
            }
        }
        Op::AddNodeTag { node, tag } => {
            state.add_node_tag(NodeId(*node), tag_name(*tag)).unwrap();
        }
        Op::RemoveNodeTag { node, tag } => {
            state
                .remove_node_tag(NodeId(*node), &tag_name(*tag))
                .unwrap();
        }
        Op::Crash { node } => {
            state.set_available(NodeId(*node), false).unwrap();
            let lost = state.release_node(NodeId(*node)).unwrap();
            live.retain(|id| !lost.iter().any(|a| a.id == *id));
        }
        Op::Recover { node } => {
            state.set_available(NodeId(*node), true).unwrap();
        }
        Op::RegisterZone { split } => {
            state.register_group(
                NodeGroupId::new("zone"),
                vec![
                    (0..*split + 2).map(NodeId).collect(),
                    (*split..NODES).map(NodeId).collect(),
                ],
            );
        }
    }
}

/// Builds a journaled state with its WAL and test-visible storage.
fn journaled_state() -> (ClusterState, Arc<Mutex<Wal>>, MemoryStorage) {
    let mut state = ClusterState::homogeneous(NODES as usize, Resources::new(16 * 1024, 64), 3);
    let storage = MemoryStorage::new();
    let wal = Arc::new(Mutex::new(Wal::new(storage.clone())));
    wal.lock()
        .unwrap()
        .install_checkpoint(&state.checkpoint_doc())
        .unwrap();
    state.attach_wal(Arc::clone(&wal));
    (state, wal, storage)
}

#[test]
fn restore_reproduces_state_exactly_64_seeds() {
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE ^ seed);
        let (mut state, wal, _storage) = journaled_state();
        let mut live: Vec<ContainerId> = Vec::new();
        let checkpoint_at = rng.random_range(0..OPS_PER_SEED);
        for step in 0..OPS_PER_SEED {
            apply(&mut state, &random_op(&mut rng), &mut live);
            if step == checkpoint_at {
                // Mid-sequence checkpoint: the restore below exercises
                // checkpoint + tail, not just one of the two.
                let doc = state.checkpoint_doc();
                wal.lock().unwrap().install_checkpoint(&doc).unwrap();
            }
        }
        let guard = wal.lock().unwrap();
        let (restored, replayed) = ClusterState::restore_from_wal(&guard)
            .unwrap_or_else(|e| panic!("seed {seed}: restore failed: {e}"));
        drop(guard);
        assert_eq!(
            restored.digest(),
            state.digest(),
            "seed {seed}: restored state diverged (replayed {replayed} ops)"
        );
        assert_eq!(restored.epoch(), state.epoch(), "seed {seed}");
        restored
            .check_index_consistency()
            .unwrap_or_else(|e| panic!("seed {seed}: restored index: {e}"));
        restored
            .check_allocation_consistency()
            .unwrap_or_else(|e| panic!("seed {seed}: restored allocations: {e}"));
        state
            .check_allocation_consistency()
            .unwrap_or_else(|e| panic!("seed {seed}: live allocations: {e}"));
    }
}

#[test]
fn snapshot_clones_never_journal() {
    let (mut state, wal, _storage) = journaled_state();
    let before = wal.lock().unwrap().stats().records_appended;
    // Mutating a snapshot's state (what the solve pipeline does with
    // placement baselines) must leave the journal untouched.
    let mut snap = state.snapshot();
    let req = ContainerRequest::new(Resources::new(512, 1), [Tag::new("scratch")]);
    snap.state_mut()
        .allocate(
            ApplicationId(9),
            NodeId(0),
            &req,
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert_eq!(wal.lock().unwrap().stats().records_appended, before);
    // Probes on the live state are epoch-neutral no-ops by contract and
    // must not journal either.
    let id = state
        .probe_allocate(
            ApplicationId(9),
            NodeId(0),
            &req,
            ExecutionKind::LongRunning,
        )
        .unwrap();
    state.probe_release(id).unwrap();
    assert_eq!(wal.lock().unwrap().stats().records_appended, before);
    // A real mutation journals exactly one record.
    state
        .allocate(
            ApplicationId(9),
            NodeId(0),
            &req,
            ExecutionKind::LongRunning,
        )
        .unwrap();
    assert_eq!(wal.lock().unwrap().stats().records_appended, before + 1);
}

#[test]
fn truncated_tail_is_rejected() {
    let (mut state, wal, storage) = journaled_state();
    let req = ContainerRequest::new(Resources::new(512, 1), [Tag::new("svc")]);
    for n in 0..4u32 {
        state
            .allocate(
                ApplicationId(1),
                NodeId(n),
                &req,
                ExecutionKind::LongRunning,
            )
            .unwrap();
    }
    // Torn final write: the last line loses its tail.
    let mut lines = storage.log_lines();
    let last = lines.last_mut().unwrap();
    last.truncate(last.len() - 9);
    storage.set_log_lines(lines);
    let guard = wal.lock().unwrap();
    match ClusterState::restore_from_wal(&guard) {
        Err(RestoreError::Journal(JournalError::Corrupt { line, .. })) => {
            assert_eq!(line, 4, "corruption must be pinned to the torn line");
        }
        other => panic!("expected corrupt-tail rejection, got {other:?}"),
    }
}

#[test]
fn corrupted_tail_is_rejected() {
    let (mut state, wal, storage) = journaled_state();
    let req = ContainerRequest::new(Resources::new(512, 1), [Tag::new("svc")]);
    state
        .allocate(
            ApplicationId(1),
            NodeId(0),
            &req,
            ExecutionKind::LongRunning,
        )
        .unwrap();
    // Bit rot inside the payload: checksum no longer matches.
    let mut lines = storage.log_lines();
    let last = lines.last_mut().unwrap();
    let flipped = if last.as_bytes()[10] == b'x' {
        'y'
    } else {
        'x'
    };
    last.replace_range(10..11, &flipped.to_string());
    storage.set_log_lines(lines);
    assert!(matches!(
        ClusterState::restore_from_wal(&wal.lock().unwrap()),
        Err(RestoreError::Journal(JournalError::Corrupt { .. }))
    ));
}

#[test]
fn valid_frame_with_garbage_payload_is_rejected() {
    let (_state, wal, storage) = journaled_state();
    // A correctly checksummed line whose payload is not a record: the
    // decode layer must reject it even though the frame verifies.
    let mut lines = storage.log_lines();
    lines.push(frame(r#"{"epoch":1,"op":{"type":"warp"}}"#));
    storage.set_log_lines(lines);
    assert!(matches!(
        ClusterState::restore_from_wal(&wal.lock().unwrap()),
        Err(RestoreError::Journal(JournalError::Corrupt { .. }))
    ));
}

#[test]
fn missing_checkpoint_is_rejected() {
    let (_state, wal, storage) = journaled_state();
    storage.set_checkpoint_body(None);
    assert!(matches!(
        ClusterState::restore_from_wal(&wal.lock().unwrap()),
        Err(RestoreError::MissingCheckpoint)
    ));
}

#[test]
fn semantically_impossible_replay_is_rejected() {
    let (mut state, wal, storage) = journaled_state();
    let req = ContainerRequest::new(Resources::new(512, 1), [Tag::new("svc")]);
    state
        .allocate(
            ApplicationId(1),
            NodeId(0),
            &req,
            ExecutionKind::LongRunning,
        )
        .unwrap();
    // Append a release of a container that never existed (well-formed,
    // well-framed, semantically wrong).
    let mut lines = storage.log_lines();
    let epoch = state.epoch() + 1;
    lines.push(frame(&format!(
        r#"{{"epoch":{epoch},"op":{{"type":"release","container":999}}}}"#
    )));
    storage.set_log_lines(lines);
    assert!(matches!(
        ClusterState::restore_from_wal(&wal.lock().unwrap()),
        Err(RestoreError::Invalid(_))
    ));
}
