//! Randomized tests for cluster-state bookkeeping invariants, driven by
//! the workspace's deterministic PRNG (`medea-rand`): the same op
//! sequences are replayed on every run.

use medea_cluster::{
    ApplicationId, ClusterState, ContainerId, ContainerRequest, ExecutionKind, NodeId, Resources,
    Tag,
};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// A random sequence of allocate/release operations.
#[derive(Debug, Clone)]
enum Op {
    Alloc {
        app: u64,
        node: u32,
        mem: u64,
        tags: Vec<u8>,
    },
    Release {
        idx: usize,
    },
}

fn random_op(rng: &mut StdRng) -> Op {
    // 3:1 alloc/release mix, as in the original distribution.
    if rng.random_range(0..4u32) < 3 {
        let n_tags = rng.random_range(0..3usize);
        Op::Alloc {
            app: rng.random_range(0..4u64),
            node: rng.random_range(0..6u32),
            mem: rng.random_range(1..2048u64),
            tags: (0..n_tags)
                .map(|_| rng.random_range(0..5u64) as u8)
                .collect(),
        }
    } else {
        Op::Release {
            idx: rng.random_range(0..64usize),
        }
    }
}

fn random_ops(rng: &mut StdRng) -> Vec<Op> {
    let len = rng.random_range(1..80usize);
    (0..len).map(|_| random_op(rng)).collect()
}

fn tag_name(t: u8) -> Tag {
    Tag::new(format!("t{t}"))
}

/// Under any allocate/release sequence: free + allocated == capacity on
/// every node, gamma counts match live containers exactly, and
/// releasing everything restores the pristine state.
#[test]
fn bookkeeping_is_exact() {
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0xB00C ^ case);
        let ops = random_ops(&mut rng);
        let capacity = Resources::new(16 * 1024, 64);
        let mut cluster = ClusterState::homogeneous(6, capacity, 2);
        let mut live: Vec<ContainerId> = Vec::new();

        for op in &ops {
            match op {
                Op::Alloc {
                    app,
                    node,
                    mem,
                    tags,
                } => {
                    let req = ContainerRequest::new(
                        Resources::new(*mem, 1),
                        tags.iter().map(|&t| tag_name(t)),
                    );
                    if let Ok(id) = cluster.allocate(
                        ApplicationId(*app),
                        NodeId(*node),
                        &req,
                        ExecutionKind::LongRunning,
                    ) {
                        live.push(id);
                    }
                }
                Op::Release { idx } => {
                    if !live.is_empty() {
                        let id = live.remove(idx % live.len());
                        cluster.release(id).unwrap();
                    }
                }
            }

            // Invariant 1: per-node free + sum(allocated) == capacity.
            for n in cluster.node_ids() {
                let allocated: Resources = cluster
                    .containers_on(n)
                    .unwrap()
                    .iter()
                    .map(|&c| cluster.allocation(c).unwrap().resources)
                    .sum();
                assert_eq!(cluster.free(n).unwrap() + allocated, capacity);
            }

            // Invariant 2: gamma equals tags of live containers per node.
            for n in cluster.node_ids() {
                for t in 0..5u8 {
                    let tag = tag_name(t);
                    let expected: u32 = cluster
                        .containers_on(n)
                        .unwrap()
                        .iter()
                        .map(|&c| {
                            cluster
                                .allocation(c)
                                .unwrap()
                                .tags
                                .iter()
                                .filter(|x| **x == tag)
                                .count() as u32
                        })
                        .sum();
                    assert_eq!(cluster.gamma(n, &tag), expected, "case {case}");
                }
            }
        }

        // Invariant 3: releasing everything restores pristine state.
        for id in live {
            cluster.release(id).unwrap();
        }
        assert_eq!(cluster.num_containers(), 0);
        assert_eq!(cluster.total_free(), cluster.total_capacity());
        for n in cluster.node_ids() {
            assert!(cluster.node_tags(n).unwrap().is_empty());
        }
    }
}

/// The incrementally-maintained per-group γ caches always agree with
/// a from-scratch scan of the set's members.
#[test]
fn group_gamma_cache_is_coherent() {
    use medea_cluster::NodeGroupId;
    for case in 0..128u64 {
        let mut rng = StdRng::seed_from_u64(0xCAC4E ^ case);
        let ops = random_ops(&mut rng);
        let capacity = Resources::new(16 * 1024, 64);
        let mut cluster = ClusterState::homogeneous(6, capacity, 2);
        // A custom overlapping group exercises multi-membership updates.
        cluster.register_group(
            NodeGroupId::new("zone"),
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)],
            ],
        );
        let mut live: Vec<ContainerId> = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc {
                    app,
                    node,
                    mem,
                    tags,
                } => {
                    let req = ContainerRequest::new(
                        Resources::new(*mem, 1),
                        tags.iter().map(|&t| tag_name(t)),
                    );
                    if let Ok(id) = cluster.allocate(
                        ApplicationId(*app),
                        NodeId(*node),
                        &req,
                        ExecutionKind::LongRunning,
                    ) {
                        live.push(id);
                    }
                }
                Op::Release { idx } => {
                    if !live.is_empty() {
                        let id = live.remove(idx % live.len());
                        cluster.release(id).unwrap();
                    }
                }
            }
            for group in [NodeGroupId::rack(), NodeGroupId::new("zone")] {
                let sets = cluster.groups().sets_of(&group).unwrap();
                for (si, members) in sets.iter().enumerate() {
                    for t in 0..5u8 {
                        let tag = tag_name(t);
                        let cached = cluster.gamma_in_set(&group, si, &tag);
                        let scanned = cluster.gamma_set(members, &tag);
                        assert_eq!(
                            cached, scanned,
                            "cache drift: case {case} group {group} set {si} tag {tag}"
                        );
                    }
                }
            }
        }
    }
}
