//! Property tests for cluster-state bookkeeping invariants.

use medea_cluster::{
    ApplicationId, ClusterState, ContainerId, ContainerRequest, ExecutionKind, NodeId, Resources,
    Tag,
};
use proptest::prelude::*;

/// A random sequence of allocate/release operations.
#[derive(Debug, Clone)]
enum Op {
    Alloc { app: u64, node: u32, mem: u64, tags: Vec<u8> },
    Release { idx: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0..4u64, 0..6u32, 1..2048u64, prop::collection::vec(0..5u8, 0..3))
            .prop_map(|(app, node, mem, tags)| Op::Alloc { app, node, mem, tags }),
        1 => (0..64usize).prop_map(|idx| Op::Release { idx }),
    ]
}

fn tag_name(t: u8) -> Tag {
    Tag::new(format!("t{t}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Under any allocate/release sequence: free + allocated == capacity on
    /// every node, gamma counts match live containers exactly, and
    /// releasing everything restores the pristine state.
    #[test]
    fn bookkeeping_is_exact(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let capacity = Resources::new(16 * 1024, 64);
        let mut cluster = ClusterState::homogeneous(6, capacity, 2);
        let mut live: Vec<ContainerId> = Vec::new();

        for op in &ops {
            match op {
                Op::Alloc { app, node, mem, tags } => {
                    let req = ContainerRequest::new(
                        Resources::new(*mem, 1),
                        tags.iter().map(|&t| tag_name(t)),
                    );
                    if let Ok(id) = cluster.allocate(
                        ApplicationId(*app),
                        NodeId(*node),
                        &req,
                        ExecutionKind::LongRunning,
                    ) {
                        live.push(id);
                    }
                }
                Op::Release { idx } => {
                    if !live.is_empty() {
                        let id = live.remove(idx % live.len());
                        cluster.release(id).unwrap();
                    }
                }
            }

            // Invariant 1: per-node free + sum(allocated) == capacity.
            for n in cluster.node_ids() {
                let allocated: Resources = cluster
                    .containers_on(n)
                    .unwrap()
                    .iter()
                    .map(|&c| cluster.allocation(c).unwrap().resources)
                    .sum();
                prop_assert_eq!(cluster.free(n).unwrap() + allocated, capacity);
            }

            // Invariant 2: gamma equals tags of live containers per node.
            for n in cluster.node_ids() {
                for t in 0..5u8 {
                    let tag = tag_name(t);
                    let expected: u32 = cluster
                        .containers_on(n)
                        .unwrap()
                        .iter()
                        .map(|&c| {
                            cluster
                                .allocation(c)
                                .unwrap()
                                .tags
                                .iter()
                                .filter(|x| **x == tag)
                                .count() as u32
                        })
                        .sum();
                    prop_assert_eq!(cluster.gamma(n, &tag), expected);
                }
            }
        }

        // Invariant 3: releasing everything restores pristine state.
        for id in live {
            cluster.release(id).unwrap();
        }
        prop_assert_eq!(cluster.num_containers(), 0);
        prop_assert_eq!(cluster.total_free(), cluster.total_capacity());
        for n in cluster.node_ids() {
            prop_assert!(cluster.node_tags(n).unwrap().is_empty());
        }
    }

    /// The incrementally-maintained per-group γ caches always agree with
    /// a from-scratch scan of the set's members.
    #[test]
    fn group_gamma_cache_is_coherent(ops in prop::collection::vec(op_strategy(), 1..80)) {
        use medea_cluster::NodeGroupId;
        let capacity = Resources::new(16 * 1024, 64);
        let mut cluster = ClusterState::homogeneous(6, capacity, 2);
        // A custom overlapping group exercises multi-membership updates.
        cluster.register_group(
            NodeGroupId::new("zone"),
            vec![
                vec![NodeId(0), NodeId(1), NodeId(2)],
                vec![NodeId(2), NodeId(3), NodeId(4), NodeId(5)],
            ],
        );
        let mut live: Vec<ContainerId> = Vec::new();
        for op in &ops {
            match op {
                Op::Alloc { app, node, mem, tags } => {
                    let req = ContainerRequest::new(
                        Resources::new(*mem, 1),
                        tags.iter().map(|&t| tag_name(t)),
                    );
                    if let Ok(id) = cluster.allocate(
                        ApplicationId(*app),
                        NodeId(*node),
                        &req,
                        ExecutionKind::LongRunning,
                    ) {
                        live.push(id);
                    }
                }
                Op::Release { idx } => {
                    if !live.is_empty() {
                        let id = live.remove(idx % live.len());
                        cluster.release(id).unwrap();
                    }
                }
            }
            for group in [NodeGroupId::rack(), NodeGroupId::new("zone")] {
                let sets = cluster.groups().sets_of(&group).unwrap();
                for (si, members) in sets.iter().enumerate() {
                    for t in 0..5u8 {
                        let tag = tag_name(t);
                        let cached = cluster.gamma_in_set(&group, si, &tag);
                        let scanned = cluster.gamma_set(members, &tag);
                        prop_assert_eq!(
                            cached, scanned,
                            "cache drift: group {} set {} tag {}", group, si, tag
                        );
                    }
                }
            }
        }
    }
}
