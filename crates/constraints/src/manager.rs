//! The constraint manager: Medea's central store for tags, node groups,
//! and placement constraints (§3, Fig. 6).
//!
//! All constraints — from application owners and from the cluster operator
//! — are registered here, giving the LRA scheduler a global view of every
//! active constraint. The manager also implements the §5.2 conflict rule:
//! *cluster operator constraints override application constraints, as long
//! as they are more restrictive*.

use std::collections::HashMap;
use std::fmt;

use medea_cluster::{ApplicationId, NodeGroups};
use std::sync::{Arc, RwLock};

use crate::constraint::{Cardinality, PlacementConstraint};

/// Where a constraint came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintSource {
    /// Submitted by an application owner together with the application.
    Application(ApplicationId),
    /// Registered by the cluster operator.
    Operator,
}

/// A stored constraint with its provenance.
#[derive(Debug, Clone)]
pub struct StoredConstraint {
    /// Provenance of the constraint.
    pub source: ConstraintSource,
    /// The constraint itself.
    pub constraint: PlacementConstraint,
}

/// Errors raised when registering constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// The constraint references a node group that is not registered.
    UnknownNodeGroup(String),
    /// The constraint has an empty subject expression.
    EmptySubject,
    /// A cardinality interval has `min > max`.
    InvalidCardinality {
        /// Offending minimum.
        min: u32,
        /// Offending maximum.
        max: u32,
    },
    /// The weight is not a positive finite number.
    InvalidWeight,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::UnknownNodeGroup(g) => write!(f, "unknown node group '{g}'"),
            ConstraintError::EmptySubject => write!(f, "constraint subject is empty"),
            ConstraintError::InvalidCardinality { min, max } => {
                write!(f, "invalid cardinality [{min}, {max}]")
            }
            ConstraintError::InvalidWeight => write!(f, "weight must be positive and finite"),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Validates a constraint against a node-group registry.
pub fn validate_constraint(
    constraint: &PlacementConstraint,
    groups: &NodeGroups,
) -> Result<(), ConstraintError> {
    if constraint.subject.is_empty() {
        return Err(ConstraintError::EmptySubject);
    }
    if !groups.is_registered(&constraint.group) {
        return Err(ConstraintError::UnknownNodeGroup(
            constraint.group.as_str().to_string(),
        ));
    }
    for leaf in constraint.expr.leaves() {
        if let Cardinality {
            min,
            max: Some(max),
        } = leaf.cardinality
        {
            if min > max {
                return Err(ConstraintError::InvalidCardinality { min, max });
            }
        }
    }
    if !(constraint.weight.is_finite() && constraint.weight > 0.0) {
        return Err(ConstraintError::InvalidWeight);
    }
    Ok(())
}

#[derive(Debug, Default)]
struct Inner {
    app: HashMap<ApplicationId, Vec<PlacementConstraint>>,
    operator: Vec<PlacementConstraint>,
    /// Bumped on every mutation; a cache entry is valid only while its
    /// recorded generation matches.
    generation: u64,
    /// Active set memoized at a generation. `active()` used to rebuild
    /// (and clone) the full constraint set on every call in the tick
    /// path; now it recomputes only after a mutation.
    cache: Option<(u64, Arc<Vec<StoredConstraint>>)>,
    /// Times the active set was actually recomputed (regression tests
    /// assert this only moves on mutation).
    recomputes: u64,
}

/// Central, thread-safe store of all active placement constraints.
///
/// # Examples
///
/// ```
/// use medea_constraints::{ConstraintManager, PlacementConstraint};
/// use medea_cluster::{ApplicationId, NodeGroupId, NodeGroups};
///
/// let groups = NodeGroups::new(8);
/// let cm = ConstraintManager::new();
/// let c = PlacementConstraint::anti_affinity("hb_rs", "hb_rs", NodeGroupId::node());
/// cm.register_app(ApplicationId(1), vec![c], &groups).unwrap();
/// assert_eq!(cm.active().len(), 1);
/// cm.remove_app(ApplicationId(1));
/// assert!(cm.active().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ConstraintManager {
    inner: RwLock<Inner>,
}

impl ConstraintManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        ConstraintManager::default()
    }

    /// Validates and stores an application's constraints (step 2 of the
    /// LRA life-cycle in Fig. 6). Replaces any previous registration for
    /// the same application. On error nothing is stored.
    pub fn register_app(
        &self,
        app: ApplicationId,
        constraints: Vec<PlacementConstraint>,
        groups: &NodeGroups,
    ) -> Result<(), ConstraintError> {
        for c in &constraints {
            validate_constraint(c, groups)?;
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.generation += 1;
        inner.app.insert(app, constraints);
        Ok(())
    }

    /// Removes an application's constraints (application finished).
    pub fn remove_app(&self, app: ApplicationId) {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if inner.app.remove(&app).is_some() {
            inner.generation += 1;
        }
    }

    /// Validates and adds a cluster-operator constraint.
    pub fn register_operator(
        &self,
        constraint: PlacementConstraint,
        groups: &NodeGroups,
    ) -> Result<(), ConstraintError> {
        validate_constraint(&constraint, groups)?;
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        inner.generation += 1;
        inner.operator.push(constraint);
        Ok(())
    }

    /// Removes all operator constraints.
    pub fn clear_operator(&self) {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if !inner.operator.is_empty() {
            inner.generation += 1;
            inner.operator.clear();
        }
    }

    /// Constraints of one application, if registered.
    pub fn app_constraints(&self, app: ApplicationId) -> Vec<PlacementConstraint> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .app
            .get(&app)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of registered applications.
    pub fn num_apps(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .app
            .len()
    }

    /// Returns every stored constraint with provenance, applying the §5.2
    /// conflict rule: an application constraint is dropped when an
    /// operator constraint with the same subject, target, and group is
    /// more restrictive on every leaf.
    ///
    /// Clones the cached active set; hot paths should prefer
    /// [`ConstraintManager::active_shared`].
    pub fn active(&self) -> Vec<StoredConstraint> {
        self.active_shared().as_ref().clone()
    }

    /// Shared handle to the active set, memoized behind a generation
    /// counter: recomputed only after a register/remove mutation, so
    /// per-tick calls are a cache hit plus an `Arc` bump. Application
    /// constraints are ordered by application id (then registration
    /// order), operator constraints after them.
    pub fn active_shared(&self) -> Arc<Vec<StoredConstraint>> {
        {
            let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
            if let Some((generation, cached)) = &inner.cache {
                if *generation == inner.generation {
                    return Arc::clone(cached);
                }
            }
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        // Re-check under the write lock: another thread may have filled
        // the cache between our read and write acquisitions.
        if let Some((generation, cached)) = &inner.cache {
            if *generation == inner.generation {
                return Arc::clone(cached);
            }
        }
        let computed = Arc::new(compute_active(&inner));
        inner.recomputes += 1;
        inner.cache = Some((inner.generation, Arc::clone(&computed)));
        computed
    }

    /// How many times the active set has been recomputed (regression
    /// hook: must advance only after mutations, not per read).
    pub fn recompute_count(&self) -> u64 {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .recomputes
    }

    /// Returns the effective constraints (without provenance).
    pub fn active_constraints(&self) -> Vec<PlacementConstraint> {
        self.active_shared()
            .iter()
            .map(|s| s.constraint.clone())
            .collect()
    }
}

/// Builds the active set: the §5.2 conflict rule over a deterministic
/// ordering (applications sorted by id, then the operator constraints).
fn compute_active(inner: &Inner) -> Vec<StoredConstraint> {
    let mut out: Vec<StoredConstraint> = Vec::new();
    let mut apps: Vec<(&ApplicationId, &Vec<PlacementConstraint>)> = inner.app.iter().collect();
    apps.sort_by_key(|(id, _)| id.0);
    for (app, cs) in apps {
        for c in cs {
            let overridden = inner.operator.iter().any(|op| overrides(op, c));
            if !overridden {
                out.push(StoredConstraint {
                    source: ConstraintSource::Application(*app),
                    constraint: c.clone(),
                });
            }
        }
    }
    for c in &inner.operator {
        out.push(StoredConstraint {
            source: ConstraintSource::Operator,
            constraint: c.clone(),
        });
    }
    out
}

/// Returns `true` if operator constraint `op` overrides application
/// constraint `app`: same shape (subject, group, and leaf targets) and at
/// least as restrictive cardinalities everywhere.
fn overrides(op: &PlacementConstraint, app: &PlacementConstraint) -> bool {
    if op.subject != app.subject || op.group != app.group {
        return false;
    }
    // Compare only single-conjunct constraints leaf-by-leaf; compound
    // shapes are conservatively considered non-conflicting.
    let (Some(opc), Some(appc)) = (only_conjunct(op), only_conjunct(app)) else {
        return false;
    };
    if opc.len() != appc.len() {
        return false;
    }
    appc.iter().all(|al| {
        opc.iter().any(|ol| {
            ol.target == al.target && ol.cardinality.is_more_restrictive_than(&al.cardinality)
        })
    })
}

fn only_conjunct(c: &PlacementConstraint) -> Option<&[crate::constraint::TagConstraint]> {
    if c.expr.conjuncts.len() == 1 {
        Some(&c.expr.conjuncts[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Cardinality;
    use medea_cluster::NodeGroupId;

    fn groups() -> NodeGroups {
        let mut g = NodeGroups::new(8);
        g.register_partition(NodeGroupId::rack(), 2);
        g
    }

    #[test]
    fn register_and_remove() {
        let cm = ConstraintManager::new();
        let g = groups();
        let c = PlacementConstraint::affinity("a", "b", NodeGroupId::rack());
        cm.register_app(ApplicationId(1), vec![c.clone()], &g)
            .unwrap();
        cm.register_operator(
            PlacementConstraint::anti_affinity("x", "x", NodeGroupId::node()),
            &g,
        )
        .unwrap();
        assert_eq!(cm.active().len(), 2);
        assert_eq!(cm.app_constraints(ApplicationId(1)), vec![c]);
        cm.remove_app(ApplicationId(1));
        assert_eq!(cm.active().len(), 1);
        cm.clear_operator();
        assert!(cm.active().is_empty());
    }

    #[test]
    fn validation_rejects_unknown_group() {
        let cm = ConstraintManager::new();
        let g = groups();
        let c = PlacementConstraint::affinity("a", "b", NodeGroupId::new("nonexistent"));
        let err = cm.register_app(ApplicationId(1), vec![c], &g).unwrap_err();
        assert!(matches!(err, ConstraintError::UnknownNodeGroup(_)));
        assert_eq!(cm.num_apps(), 0);
    }

    #[test]
    fn validation_rejects_bad_cardinality_and_weight() {
        let g = groups();
        let bad = PlacementConstraint::new("a", "b", Cardinality::range(5, 2), NodeGroupId::node());
        assert!(matches!(
            validate_constraint(&bad, &g),
            Err(ConstraintError::InvalidCardinality { min: 5, max: 2 })
        ));
        let neg = PlacementConstraint::affinity("a", "b", NodeGroupId::node()).with_weight(-1.0);
        assert!(matches!(
            validate_constraint(&neg, &g),
            Err(ConstraintError::InvalidWeight)
        ));
    }

    #[test]
    fn operator_overrides_when_more_restrictive() {
        // §5.2 example: app wants at least 4 spark per rack; operator
        // caps at 3. But "at least 4" vs "no more than 3" differ in shape.
        // The documented rule compares same-shape constraints: app allows
        // [0,5] spark per rack, operator restricts to [0,3].
        let cm = ConstraintManager::new();
        let g = groups();
        let app = PlacementConstraint::cardinality("spark", "spark", 0, 5, NodeGroupId::rack());
        let op = PlacementConstraint::cardinality("spark", "spark", 0, 3, NodeGroupId::rack());
        cm.register_app(ApplicationId(9), vec![app], &g).unwrap();
        cm.register_operator(op, &g).unwrap();
        let active = cm.active();
        // The app constraint is overridden: only the operator one remains.
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].source, ConstraintSource::Operator);
    }

    #[test]
    fn less_restrictive_operator_does_not_override() {
        let cm = ConstraintManager::new();
        let g = groups();
        let app = PlacementConstraint::cardinality("spark", "spark", 0, 2, NodeGroupId::rack());
        let op = PlacementConstraint::cardinality("spark", "spark", 0, 10, NodeGroupId::rack());
        cm.register_app(ApplicationId(9), vec![app], &g).unwrap();
        cm.register_operator(op, &g).unwrap();
        assert_eq!(cm.active().len(), 2);
    }

    #[test]
    fn different_groups_do_not_conflict() {
        let cm = ConstraintManager::new();
        let g = groups();
        let app = PlacementConstraint::cardinality("s", "s", 0, 2, NodeGroupId::node());
        let op = PlacementConstraint::cardinality("s", "s", 0, 1, NodeGroupId::rack());
        cm.register_app(ApplicationId(1), vec![app], &g).unwrap();
        cm.register_operator(op, &g).unwrap();
        assert_eq!(cm.active().len(), 2);
    }

    #[test]
    fn active_set_recomputes_only_on_mutation() {
        let cm = ConstraintManager::new();
        let g = groups();
        let c = PlacementConstraint::affinity("a", "b", NodeGroupId::rack());
        cm.register_app(ApplicationId(1), vec![c], &g).unwrap();
        assert_eq!(cm.recompute_count(), 0, "lazy: nothing computed yet");
        let first = cm.active_shared();
        assert_eq!(cm.recompute_count(), 1);
        for _ in 0..100 {
            let again = cm.active_shared();
            assert!(Arc::ptr_eq(&first, &again), "reads must hit the cache");
        }
        assert_eq!(cm.recompute_count(), 1, "reads must not recompute");

        cm.register_operator(
            PlacementConstraint::anti_affinity("x", "x", NodeGroupId::node()),
            &g,
        )
        .unwrap();
        let after = cm.active_shared();
        assert!(!Arc::ptr_eq(&first, &after));
        assert_eq!(cm.recompute_count(), 2);
        assert_eq!(after.len(), 2);

        // No-op mutations (removing an unknown app, clearing an empty
        // operator set) keep the cache valid.
        cm.remove_app(ApplicationId(99));
        assert!(Arc::ptr_eq(&after, &cm.active_shared()));
        cm.clear_operator();
        let cleared = cm.active_shared();
        assert_eq!(cm.recompute_count(), 3);
        cm.clear_operator();
        assert!(
            Arc::ptr_eq(&cleared, &cm.active_shared()),
            "clearing an already-empty operator set must keep the cache"
        );
        assert_eq!(cm.recompute_count(), 3);
    }

    #[test]
    fn active_order_sorts_apps_by_id() {
        let cm = ConstraintManager::new();
        let g = groups();
        for id in [5u64, 2, 9] {
            let c = PlacementConstraint::affinity("a", "b", NodeGroupId::rack());
            cm.register_app(ApplicationId(id), vec![c], &g).unwrap();
        }
        cm.register_operator(
            PlacementConstraint::anti_affinity("x", "x", NodeGroupId::node()),
            &g,
        )
        .unwrap();
        let sources: Vec<ConstraintSource> = cm.active().iter().map(|s| s.source).collect();
        assert_eq!(
            sources,
            vec![
                ConstraintSource::Application(ApplicationId(2)),
                ConstraintSource::Application(ApplicationId(5)),
                ConstraintSource::Application(ApplicationId(9)),
                ConstraintSource::Operator,
            ]
        );
    }

    #[test]
    fn reregistering_app_replaces() {
        let cm = ConstraintManager::new();
        let g = groups();
        let c1 = PlacementConstraint::affinity("a", "b", NodeGroupId::rack());
        let c2 = PlacementConstraint::anti_affinity("a", "b", NodeGroupId::rack());
        cm.register_app(ApplicationId(1), vec![c1], &g).unwrap();
        cm.register_app(ApplicationId(1), vec![c2.clone()], &g)
            .unwrap();
        assert_eq!(cm.app_constraints(ApplicationId(1)), vec![c2]);
    }
}
