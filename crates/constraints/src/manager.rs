//! The constraint manager: Medea's central store for tags, node groups,
//! and placement constraints (§3, Fig. 6).
//!
//! All constraints — from application owners and from the cluster operator
//! — are registered here, giving the LRA scheduler a global view of every
//! active constraint. The manager also implements the §5.2 conflict rule:
//! *cluster operator constraints override application constraints, as long
//! as they are more restrictive*.

use std::collections::HashMap;
use std::fmt;

use medea_cluster::{ApplicationId, NodeGroups};
use std::sync::RwLock;

use crate::constraint::{Cardinality, PlacementConstraint};

/// Where a constraint came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConstraintSource {
    /// Submitted by an application owner together with the application.
    Application(ApplicationId),
    /// Registered by the cluster operator.
    Operator,
}

/// A stored constraint with its provenance.
#[derive(Debug, Clone)]
pub struct StoredConstraint {
    /// Provenance of the constraint.
    pub source: ConstraintSource,
    /// The constraint itself.
    pub constraint: PlacementConstraint,
}

/// Errors raised when registering constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintError {
    /// The constraint references a node group that is not registered.
    UnknownNodeGroup(String),
    /// The constraint has an empty subject expression.
    EmptySubject,
    /// A cardinality interval has `min > max`.
    InvalidCardinality {
        /// Offending minimum.
        min: u32,
        /// Offending maximum.
        max: u32,
    },
    /// The weight is not a positive finite number.
    InvalidWeight,
}

impl fmt::Display for ConstraintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintError::UnknownNodeGroup(g) => write!(f, "unknown node group '{g}'"),
            ConstraintError::EmptySubject => write!(f, "constraint subject is empty"),
            ConstraintError::InvalidCardinality { min, max } => {
                write!(f, "invalid cardinality [{min}, {max}]")
            }
            ConstraintError::InvalidWeight => write!(f, "weight must be positive and finite"),
        }
    }
}

impl std::error::Error for ConstraintError {}

/// Validates a constraint against a node-group registry.
pub fn validate_constraint(
    constraint: &PlacementConstraint,
    groups: &NodeGroups,
) -> Result<(), ConstraintError> {
    if constraint.subject.is_empty() {
        return Err(ConstraintError::EmptySubject);
    }
    if !groups.is_registered(&constraint.group) {
        return Err(ConstraintError::UnknownNodeGroup(
            constraint.group.as_str().to_string(),
        ));
    }
    for leaf in constraint.expr.leaves() {
        if let Cardinality {
            min,
            max: Some(max),
        } = leaf.cardinality
        {
            if min > max {
                return Err(ConstraintError::InvalidCardinality { min, max });
            }
        }
    }
    if !(constraint.weight.is_finite() && constraint.weight > 0.0) {
        return Err(ConstraintError::InvalidWeight);
    }
    Ok(())
}

#[derive(Debug, Default)]
struct Inner {
    app: HashMap<ApplicationId, Vec<PlacementConstraint>>,
    operator: Vec<PlacementConstraint>,
}

/// Central, thread-safe store of all active placement constraints.
///
/// # Examples
///
/// ```
/// use medea_constraints::{ConstraintManager, PlacementConstraint};
/// use medea_cluster::{ApplicationId, NodeGroupId, NodeGroups};
///
/// let groups = NodeGroups::new(8);
/// let cm = ConstraintManager::new();
/// let c = PlacementConstraint::anti_affinity("hb_rs", "hb_rs", NodeGroupId::node());
/// cm.register_app(ApplicationId(1), vec![c], &groups).unwrap();
/// assert_eq!(cm.active().len(), 1);
/// cm.remove_app(ApplicationId(1));
/// assert!(cm.active().is_empty());
/// ```
#[derive(Debug, Default)]
pub struct ConstraintManager {
    inner: RwLock<Inner>,
}

impl ConstraintManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        ConstraintManager::default()
    }

    /// Validates and stores an application's constraints (step 2 of the
    /// LRA life-cycle in Fig. 6). Replaces any previous registration for
    /// the same application. On error nothing is stored.
    pub fn register_app(
        &self,
        app: ApplicationId,
        constraints: Vec<PlacementConstraint>,
        groups: &NodeGroups,
    ) -> Result<(), ConstraintError> {
        for c in &constraints {
            validate_constraint(c, groups)?;
        }
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .app
            .insert(app, constraints);
        Ok(())
    }

    /// Removes an application's constraints (application finished).
    pub fn remove_app(&self, app: ApplicationId) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .app
            .remove(&app);
    }

    /// Validates and adds a cluster-operator constraint.
    pub fn register_operator(
        &self,
        constraint: PlacementConstraint,
        groups: &NodeGroups,
    ) -> Result<(), ConstraintError> {
        validate_constraint(&constraint, groups)?;
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .operator
            .push(constraint);
        Ok(())
    }

    /// Removes all operator constraints.
    pub fn clear_operator(&self) {
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .operator
            .clear();
    }

    /// Constraints of one application, if registered.
    pub fn app_constraints(&self, app: ApplicationId) -> Vec<PlacementConstraint> {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .app
            .get(&app)
            .cloned()
            .unwrap_or_default()
    }

    /// Number of registered applications.
    pub fn num_apps(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .app
            .len()
    }

    /// Returns every stored constraint with provenance, applying the §5.2
    /// conflict rule: an application constraint is dropped when an
    /// operator constraint with the same subject, target, and group is
    /// more restrictive on every leaf.
    pub fn active(&self) -> Vec<StoredConstraint> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<StoredConstraint> = Vec::new();
        for (app, cs) in &inner.app {
            for c in cs {
                let overridden = inner.operator.iter().any(|op| overrides(op, c));
                if !overridden {
                    out.push(StoredConstraint {
                        source: ConstraintSource::Application(*app),
                        constraint: c.clone(),
                    });
                }
            }
        }
        for c in &inner.operator {
            out.push(StoredConstraint {
                source: ConstraintSource::Operator,
                constraint: c.clone(),
            });
        }
        out
    }

    /// Returns the effective constraints (without provenance).
    pub fn active_constraints(&self) -> Vec<PlacementConstraint> {
        self.active().into_iter().map(|s| s.constraint).collect()
    }
}

/// Returns `true` if operator constraint `op` overrides application
/// constraint `app`: same shape (subject, group, and leaf targets) and at
/// least as restrictive cardinalities everywhere.
fn overrides(op: &PlacementConstraint, app: &PlacementConstraint) -> bool {
    if op.subject != app.subject || op.group != app.group {
        return false;
    }
    // Compare only single-conjunct constraints leaf-by-leaf; compound
    // shapes are conservatively considered non-conflicting.
    let (Some(opc), Some(appc)) = (only_conjunct(op), only_conjunct(app)) else {
        return false;
    };
    if opc.len() != appc.len() {
        return false;
    }
    appc.iter().all(|al| {
        opc.iter().any(|ol| {
            ol.target == al.target && ol.cardinality.is_more_restrictive_than(&al.cardinality)
        })
    })
}

fn only_conjunct(c: &PlacementConstraint) -> Option<&[crate::constraint::TagConstraint]> {
    if c.expr.conjuncts.len() == 1 {
        Some(&c.expr.conjuncts[0])
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::Cardinality;
    use medea_cluster::NodeGroupId;

    fn groups() -> NodeGroups {
        let mut g = NodeGroups::new(8);
        g.register_partition(NodeGroupId::rack(), 2);
        g
    }

    #[test]
    fn register_and_remove() {
        let cm = ConstraintManager::new();
        let g = groups();
        let c = PlacementConstraint::affinity("a", "b", NodeGroupId::rack());
        cm.register_app(ApplicationId(1), vec![c.clone()], &g)
            .unwrap();
        cm.register_operator(
            PlacementConstraint::anti_affinity("x", "x", NodeGroupId::node()),
            &g,
        )
        .unwrap();
        assert_eq!(cm.active().len(), 2);
        assert_eq!(cm.app_constraints(ApplicationId(1)), vec![c]);
        cm.remove_app(ApplicationId(1));
        assert_eq!(cm.active().len(), 1);
        cm.clear_operator();
        assert!(cm.active().is_empty());
    }

    #[test]
    fn validation_rejects_unknown_group() {
        let cm = ConstraintManager::new();
        let g = groups();
        let c = PlacementConstraint::affinity("a", "b", NodeGroupId::new("nonexistent"));
        let err = cm.register_app(ApplicationId(1), vec![c], &g).unwrap_err();
        assert!(matches!(err, ConstraintError::UnknownNodeGroup(_)));
        assert_eq!(cm.num_apps(), 0);
    }

    #[test]
    fn validation_rejects_bad_cardinality_and_weight() {
        let g = groups();
        let bad = PlacementConstraint::new("a", "b", Cardinality::range(5, 2), NodeGroupId::node());
        assert!(matches!(
            validate_constraint(&bad, &g),
            Err(ConstraintError::InvalidCardinality { min: 5, max: 2 })
        ));
        let neg = PlacementConstraint::affinity("a", "b", NodeGroupId::node()).with_weight(-1.0);
        assert!(matches!(
            validate_constraint(&neg, &g),
            Err(ConstraintError::InvalidWeight)
        ));
    }

    #[test]
    fn operator_overrides_when_more_restrictive() {
        // §5.2 example: app wants at least 4 spark per rack; operator
        // caps at 3. But "at least 4" vs "no more than 3" differ in shape.
        // The documented rule compares same-shape constraints: app allows
        // [0,5] spark per rack, operator restricts to [0,3].
        let cm = ConstraintManager::new();
        let g = groups();
        let app = PlacementConstraint::cardinality("spark", "spark", 0, 5, NodeGroupId::rack());
        let op = PlacementConstraint::cardinality("spark", "spark", 0, 3, NodeGroupId::rack());
        cm.register_app(ApplicationId(9), vec![app], &g).unwrap();
        cm.register_operator(op, &g).unwrap();
        let active = cm.active();
        // The app constraint is overridden: only the operator one remains.
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].source, ConstraintSource::Operator);
    }

    #[test]
    fn less_restrictive_operator_does_not_override() {
        let cm = ConstraintManager::new();
        let g = groups();
        let app = PlacementConstraint::cardinality("spark", "spark", 0, 2, NodeGroupId::rack());
        let op = PlacementConstraint::cardinality("spark", "spark", 0, 10, NodeGroupId::rack());
        cm.register_app(ApplicationId(9), vec![app], &g).unwrap();
        cm.register_operator(op, &g).unwrap();
        assert_eq!(cm.active().len(), 2);
    }

    #[test]
    fn different_groups_do_not_conflict() {
        let cm = ConstraintManager::new();
        let g = groups();
        let app = PlacementConstraint::cardinality("s", "s", 0, 2, NodeGroupId::node());
        let op = PlacementConstraint::cardinality("s", "s", 0, 1, NodeGroupId::rack());
        cm.register_app(ApplicationId(1), vec![app], &g).unwrap();
        cm.register_operator(op, &g).unwrap();
        assert_eq!(cm.active().len(), 2);
    }

    #[test]
    fn reregistering_app_replaces() {
        let cm = ConstraintManager::new();
        let g = groups();
        let c1 = PlacementConstraint::affinity("a", "b", NodeGroupId::rack());
        let c2 = PlacementConstraint::anti_affinity("a", "b", NodeGroupId::rack());
        cm.register_app(ApplicationId(1), vec![c1], &g).unwrap();
        cm.register_app(ApplicationId(1), vec![c2.clone()], &g)
            .unwrap();
        assert_eq!(cm.app_constraints(ApplicationId(1)), vec![c2]);
    }
}
