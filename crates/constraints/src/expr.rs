//! Tag expressions: conjunctions of container tags (§4.2).
//!
//! The paper's `subject_tag` and `c_tag` are "a tag (or conjunction of
//! tags)"; negation is explicitly unsupported ("we do not support negation
//! yet"). A [`TagExpr`] therefore holds one or more tags that must *all*
//! be present on a container for it to match.

use std::fmt;

use medea_cluster::{Allocation, ClusterState, NodeId, Tag};

/// A conjunction of tags; matches containers carrying all of them.
///
/// # Examples
///
/// ```
/// use medea_constraints::TagExpr;
/// use medea_cluster::Tag;
///
/// let e = TagExpr::and([Tag::new("hb"), Tag::new("mem")]);
/// assert!(e.matches_tags(&[Tag::new("hb"), Tag::new("mem"), Tag::new("x")]));
/// assert!(!e.matches_tags(&[Tag::new("hb")]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TagExpr {
    tags: Vec<Tag>,
}

impl TagExpr {
    /// A single-tag expression.
    pub fn tag(tag: impl Into<Tag>) -> Self {
        TagExpr {
            tags: vec![tag.into()],
        }
    }

    /// A conjunction of tags (duplicates removed, order normalized).
    pub fn and(tags: impl IntoIterator<Item = Tag>) -> Self {
        let mut tags: Vec<Tag> = tags.into_iter().collect();
        tags.sort();
        tags.dedup();
        TagExpr { tags }
    }

    /// The tags of the conjunction, sorted.
    pub fn tags(&self) -> &[Tag] {
        &self.tags
    }

    /// Returns `true` if the expression has no tags (matches everything).
    pub fn is_empty(&self) -> bool {
        self.tags.is_empty()
    }

    /// Returns `true` if every tag of the expression occurs in `tags`.
    pub fn matches_tags(&self, tags: &[Tag]) -> bool {
        self.tags.iter().all(|t| tags.contains(t))
    }

    /// Returns `true` if the given live allocation matches.
    pub fn matches_allocation(&self, alloc: &Allocation) -> bool {
        self.matches_tags(&alloc.tags)
    }

    /// Counts matching containers on a node, optionally excluding one
    /// container (the ILP's `t_ij != t_is js` self-exclusion).
    ///
    /// For single-tag expressions this is the O(1) tag-cardinality lookup
    /// `γ_n(t)`; conjunctions require walking the node's containers.
    pub fn cardinality_on_node(
        &self,
        state: &ClusterState,
        node: NodeId,
        exclude: Option<medea_cluster::ContainerId>,
    ) -> u32 {
        if self.tags.len() == 1 && exclude.is_none() {
            return state.gamma(node, &self.tags[0]);
        }
        // A conjunction can only match on a node carrying every tag; a
        // single γ miss rules the whole node out without a container walk.
        if self.tags.iter().any(|t| state.gamma(node, t) == 0) {
            return 0;
        }
        let Ok(containers) = state.containers_on(node) else {
            return 0;
        };
        containers
            .iter()
            .filter(|&&c| Some(c) != exclude)
            .filter(|&&c| {
                state
                    .allocation(c)
                    .map(|a| self.matches_allocation(a))
                    .unwrap_or(false)
            })
            .count() as u32
    }

    /// Counts matching containers over a node set (`γ_𝒮` for this
    /// expression), optionally excluding one container.
    pub fn cardinality_on_set(
        &self,
        state: &ClusterState,
        set: &[NodeId],
        exclude: Option<medea_cluster::ContainerId>,
    ) -> u32 {
        set.iter()
            .map(|&n| self.cardinality_on_node(state, n, exclude))
            .sum()
    }

    /// Counts matching containers in set `set_idx` of a registered node
    /// group — O(1) for single-tag expressions via the cluster's
    /// incrementally-maintained per-set `γ` caches, falling back to a
    /// member scan for conjunctions.
    pub fn cardinality_in_group_set(
        &self,
        state: &ClusterState,
        group: &medea_cluster::NodeGroupId,
        set_idx: usize,
        exclude: Option<medea_cluster::ContainerId>,
    ) -> u32 {
        if self.tags.len() == 1 {
            let mut count = state.gamma_in_set(group, set_idx, &self.tags[0]);
            if let Some(x) = exclude {
                if let Ok(a) = state.allocation(x) {
                    let in_set = state
                        .groups()
                        .sets_containing(group, a.node)
                        .map(|v| v.contains(&set_idx))
                        .unwrap_or(false);
                    if in_set && self.matches_allocation(a) {
                        count = count.saturating_sub(1);
                    }
                }
            }
            return count;
        }
        if group.is_node() {
            // The implicit `node` group's set `i` is the singleton {node i}.
            return self.cardinality_on_node(state, NodeId(set_idx as u32), exclude);
        }
        // Conjunction over a registered group: the per-set γ caches give a
        // free upper bound — if any tag is absent from the whole set, no
        // container in it can match.
        if self
            .tags
            .iter()
            .any(|t| state.gamma_in_set(group, set_idx, t) == 0)
        {
            return 0;
        }
        if let Some(members) = state.groups().set_members_ref(group, set_idx) {
            return self.cardinality_on_set(state, members, exclude);
        }
        let members = state
            .groups()
            .set_members(group, set_idx)
            .unwrap_or_default();
        self.cardinality_on_set(state, &members, exclude)
    }
}

impl fmt::Display for TagExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for t in &self.tags {
            if !first {
                write!(f, " ∧ ")?;
            }
            first = false;
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl From<Tag> for TagExpr {
    fn from(t: Tag) -> Self {
        TagExpr::tag(t)
    }
}

impl From<&str> for TagExpr {
    fn from(s: &str) -> Self {
        TagExpr::tag(Tag::new(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{ApplicationId, ClusterState, ContainerRequest, ExecutionKind, Resources};

    fn cluster_with_containers() -> ClusterState {
        let mut c = ClusterState::homogeneous(2, Resources::new(8192, 8), 1);
        let mk = |tags: &[&str]| {
            ContainerRequest::new(Resources::new(256, 1), tags.iter().map(|t| Tag::new(*t)))
        };
        c.allocate(
            ApplicationId(1),
            NodeId(0),
            &mk(&["hb", "hb_m"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        c.allocate(
            ApplicationId(1),
            NodeId(0),
            &mk(&["hb", "hb_rs"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        c.allocate(
            ApplicationId(2),
            NodeId(1),
            &mk(&["hb", "hb_rs"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        c
    }

    #[test]
    fn single_tag_uses_gamma() {
        let c = cluster_with_containers();
        let e = TagExpr::tag(Tag::new("hb"));
        assert_eq!(e.cardinality_on_node(&c, NodeId(0), None), 2);
        assert_eq!(e.cardinality_on_node(&c, NodeId(1), None), 1);
    }

    #[test]
    fn conjunction_counts_containers_not_tags() {
        let c = cluster_with_containers();
        let e = TagExpr::and([Tag::new("hb"), Tag::new("hb_rs")]);
        assert_eq!(e.cardinality_on_node(&c, NodeId(0), None), 1);
        let set = [NodeId(0), NodeId(1)];
        assert_eq!(e.cardinality_on_set(&c, &set, None), 2);
    }

    #[test]
    fn exclusion_skips_the_subject() {
        let c = cluster_with_containers();
        let first = c.containers_on(NodeId(0)).unwrap()[0];
        let e = TagExpr::tag(Tag::new("hb"));
        assert_eq!(e.cardinality_on_node(&c, NodeId(0), Some(first)), 1);
    }

    #[test]
    fn appid_expressions_restrict_to_one_app() {
        let c = cluster_with_containers();
        let e = TagExpr::and([Tag::new("hb"), Tag::app_id(ApplicationId(2))]);
        assert_eq!(e.cardinality_on_node(&c, NodeId(0), None), 0);
        assert_eq!(e.cardinality_on_node(&c, NodeId(1), None), 1);
    }

    #[test]
    fn normalization_dedups_and_sorts() {
        let a = TagExpr::and([Tag::new("b"), Tag::new("a"), Tag::new("b")]);
        let b = TagExpr::and([Tag::new("a"), Tag::new("b")]);
        assert_eq!(a, b);
        assert_eq!(a.to_string(), "a ∧ b");
    }

    #[test]
    fn unknown_node_counts_zero() {
        let c = cluster_with_containers();
        let e = TagExpr::tag(Tag::new("hb"));
        assert_eq!(e.cardinality_on_node(&c, NodeId(99), None), 0);
    }
}
