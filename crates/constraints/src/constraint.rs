//! Placement constraints: `C = {subject_tag, tag_constraint, node_group}`
//! with cardinalities, DNF compounds, and soft weights (§4.2).

use std::fmt;

use medea_cluster::{NodeGroupId, Tag};

use crate::expr::TagExpr;

/// Cardinality interval `[cmin, cmax]` of a tag constraint.
///
/// Affinity is `[1, ∞]`, anti-affinity `[0, 0]`, and anything else is a
/// generic cardinality constraint (§4.2 cases i–iii).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cardinality {
    /// Minimum number of matching containers in the node set.
    pub min: u32,
    /// Maximum number of matching containers; `None` means unbounded.
    pub max: Option<u32>,
}

impl Cardinality {
    /// Affinity: at least one matching container (`cmin=1, cmax=∞`).
    pub const fn affinity() -> Self {
        Cardinality { min: 1, max: None }
    }

    /// Anti-affinity: no matching containers (`cmin=0, cmax=0`).
    pub const fn anti_affinity() -> Self {
        Cardinality {
            min: 0,
            max: Some(0),
        }
    }

    /// Generic cardinality `[min, max]`.
    pub const fn range(min: u32, max: u32) -> Self {
        Cardinality {
            min,
            max: Some(max),
        }
    }

    /// At most `max` matching containers.
    pub const fn at_most(max: u32) -> Self {
        Cardinality {
            min: 0,
            max: Some(max),
        }
    }

    /// At least `min` matching containers.
    pub const fn at_least(min: u32) -> Self {
        Cardinality { min, max: None }
    }

    /// Returns `true` if `count` satisfies the interval.
    pub fn satisfied_by(&self, count: u32) -> bool {
        count >= self.min && self.max.is_none_or(|m| count <= m)
    }

    /// Violation extent of `count` against this interval, normalized per
    /// the paper's Eq. 8 with division guarded by `max(c, 1)` (see
    /// DESIGN.md §5 note 3).
    pub fn violation_extent(&self, count: u32) -> f64 {
        let below = self.min.saturating_sub(count) as f64 / self.min.max(1) as f64;
        let above = match self.max {
            Some(m) => count.saturating_sub(m) as f64 / m.max(1) as f64,
            None => 0.0,
        };
        below + above
    }

    /// Returns `true` if this interval is at least as restrictive as
    /// `other` (narrower or equal on both ends) — the §5.2 rule for letting
    /// operator constraints override application constraints.
    pub fn is_more_restrictive_than(&self, other: &Cardinality) -> bool {
        let min_ok = self.min >= other.min;
        let max_ok = match (self.max, other.max) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => true,
        };
        min_ok && max_ok
    }
}

impl fmt::Display for Cardinality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.max {
            Some(m) => write!(f, "[{}, {}]", self.min, m),
            None => write!(f, "[{}, ∞]", self.min),
        }
    }
}

/// A leaf tag constraint `{c_tag, cmin, cmax}` (§4.2).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TagConstraint {
    /// Target tag expression whose cardinality is constrained.
    pub target: TagExpr,
    /// Cardinality interval.
    pub cardinality: Cardinality,
}

impl TagConstraint {
    /// Creates a leaf constraint.
    pub fn new(target: impl Into<TagExpr>, cardinality: Cardinality) -> Self {
        TagConstraint {
            target: target.into(),
            cardinality,
        }
    }
}

impl fmt::Display for TagConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper's literal syntax `{c_tag, cmin, cmax}`, accepted back
        // by `parse_constraint`.
        match self.cardinality.max {
            Some(m) => write!(f, "{{{}, {}, {}}}", self.target, self.cardinality.min, m),
            None => write!(f, "{{{}, {}, ∞}}", self.target, self.cardinality.min),
        }
    }
}

/// A boolean combination of tag constraints in disjunctive normal form:
/// a disjunction of conjunctions of leaves (§4.2 "compound constraints ...
/// specified in disjunctive normal form").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TagConstraintExpr {
    /// DNF: at least one conjunct must be fully satisfied.
    pub conjuncts: Vec<Vec<TagConstraint>>,
}

impl TagConstraintExpr {
    /// A single leaf.
    pub fn leaf(c: TagConstraint) -> Self {
        TagConstraintExpr {
            conjuncts: vec![vec![c]],
        }
    }

    /// A conjunction of leaves (one DNF conjunct).
    pub fn all(cs: impl IntoIterator<Item = TagConstraint>) -> Self {
        TagConstraintExpr {
            conjuncts: vec![cs.into_iter().collect()],
        }
    }

    /// A disjunction of conjunctions.
    pub fn any(conjuncts: impl IntoIterator<Item = Vec<TagConstraint>>) -> Self {
        TagConstraintExpr {
            conjuncts: conjuncts.into_iter().collect(),
        }
    }

    /// Returns `true` if the expression has no conjuncts (trivially true).
    pub fn is_trivial(&self) -> bool {
        self.conjuncts.is_empty() || self.conjuncts.iter().any(|c| c.is_empty())
    }

    /// Iterates over all leaves across conjuncts.
    pub fn leaves(&self) -> impl Iterator<Item = &TagConstraint> {
        self.conjuncts.iter().flatten()
    }
}

impl From<TagConstraint> for TagConstraintExpr {
    fn from(c: TagConstraint) -> Self {
        TagConstraintExpr::leaf(c)
    }
}

/// Weight at or above which a soft constraint is treated as hard.
///
/// §4.2: "By default the constraints in Medea are soft ... Medea can
/// emulate hard constraints through the use of weight values."
pub const HARD_WEIGHT: f64 = 1.0e3;

/// A full placement constraint `{subject_tag, tag_constraint, node_group}`.
///
/// Semantics (§4.2): each container matching `subject` must be placed on a
/// node belonging to a node set `S` of `group` such that the tag constraint
/// holds for the tag-cardinality function of `S`.
///
/// # Examples
///
/// ```
/// use medea_constraints::{PlacementConstraint, TagExpr, Cardinality};
/// use medea_cluster::{NodeGroupId, Tag};
///
/// // Caa = {storm, {hb, 0, 0}, upgrade_domain}: every storm container in a
/// // different upgrade domain from all hb containers.
/// let caa = PlacementConstraint::new(
///     TagExpr::tag(Tag::new("storm")),
///     TagExpr::tag(Tag::new("hb")),
///     Cardinality::anti_affinity(),
///     NodeGroupId::upgrade_domain(),
/// );
/// assert!(!caa.is_hard());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementConstraint {
    /// Containers subject to the constraint.
    pub subject: TagExpr,
    /// Tag-constraint expression that must hold in the subject's node set.
    pub expr: TagConstraintExpr,
    /// Node group whose sets the constraint ranges over.
    pub group: NodeGroupId,
    /// Soft-constraint weight (relative importance); `>= HARD_WEIGHT`
    /// emulates a hard constraint.
    pub weight: f64,
}

impl PlacementConstraint {
    /// Creates a simple (single-leaf) constraint with weight 1.
    pub fn new(
        subject: impl Into<TagExpr>,
        target: impl Into<TagExpr>,
        cardinality: Cardinality,
        group: NodeGroupId,
    ) -> Self {
        PlacementConstraint {
            subject: subject.into(),
            expr: TagConstraintExpr::leaf(TagConstraint::new(target, cardinality)),
            group,
            weight: 1.0,
        }
    }

    /// Creates a compound (DNF) constraint with weight 1.
    pub fn compound(
        subject: impl Into<TagExpr>,
        expr: TagConstraintExpr,
        group: NodeGroupId,
    ) -> Self {
        PlacementConstraint {
            subject: subject.into(),
            expr,
            group,
            weight: 1.0,
        }
    }

    /// Affinity shorthand: each subject container collocated (within a
    /// `group` set) with at least one target container.
    pub fn affinity(
        subject: impl Into<TagExpr>,
        target: impl Into<TagExpr>,
        group: NodeGroupId,
    ) -> Self {
        Self::new(subject, target, Cardinality::affinity(), group)
    }

    /// Anti-affinity shorthand: no target container in the subject's set.
    pub fn anti_affinity(
        subject: impl Into<TagExpr>,
        target: impl Into<TagExpr>,
        group: NodeGroupId,
    ) -> Self {
        Self::new(subject, target, Cardinality::anti_affinity(), group)
    }

    /// Cardinality shorthand: between `min` and `max` target containers in
    /// the subject's set.
    pub fn cardinality(
        subject: impl Into<TagExpr>,
        target: impl Into<TagExpr>,
        min: u32,
        max: u32,
        group: NodeGroupId,
    ) -> Self {
        Self::new(subject, target, Cardinality::range(min, max), group)
    }

    /// Sets the soft-constraint weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        self.weight = weight;
        self
    }

    /// Marks the constraint as hard (sets the weight to [`HARD_WEIGHT`]).
    pub fn hard(mut self) -> Self {
        self.weight = HARD_WEIGHT;
        self
    }

    /// Returns `true` if the constraint emulates a hard constraint.
    pub fn is_hard(&self) -> bool {
        self.weight >= HARD_WEIGHT
    }

    /// Returns `true` if the constraint is *intra-application in form*:
    /// subject and every target share an `appid:` tag.
    pub fn is_intra_app(&self) -> bool {
        let subject_app = self.subject.tags().iter().find(|t| t.is_app_id());
        match subject_app {
            None => false,
            Some(app) => self.expr.leaves().all(|l| l.target.tags().contains(app)),
        }
    }

    /// All tags mentioned by the constraint (subject and targets); used by
    /// the tag-popularity heuristic (§5.3).
    pub fn mentioned_tags(&self) -> Vec<Tag> {
        let mut tags: Vec<Tag> = self.subject.tags().to_vec();
        for leaf in self.expr.leaves() {
            tags.extend(leaf.target.tags().iter().cloned());
        }
        tags.sort();
        tags.dedup();
        tags
    }
}

impl fmt::Display for PlacementConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, ", self.subject)?;
        let mut first_c = true;
        for conj in &self.expr.conjuncts {
            if !first_c {
                write!(f, " ∨ ")?;
            }
            first_c = false;
            let mut first_l = true;
            for leaf in conj {
                if !first_l {
                    write!(f, " ∧ ")?;
                }
                first_l = false;
                write!(f, "{leaf}")?;
            }
        }
        write!(f, ", {}}}", self.group)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::Tag;

    #[test]
    fn cardinality_shorthands() {
        assert_eq!(Cardinality::affinity(), Cardinality { min: 1, max: None });
        assert_eq!(
            Cardinality::anti_affinity(),
            Cardinality {
                min: 0,
                max: Some(0)
            }
        );
        assert!(Cardinality::affinity().satisfied_by(3));
        assert!(!Cardinality::affinity().satisfied_by(0));
        assert!(Cardinality::anti_affinity().satisfied_by(0));
        assert!(!Cardinality::anti_affinity().satisfied_by(1));
        assert!(Cardinality::range(3, 10).satisfied_by(5));
        assert!(!Cardinality::range(3, 10).satisfied_by(2));
        assert!(!Cardinality::range(3, 10).satisfied_by(11));
    }

    #[test]
    fn violation_extent_normalization() {
        // Anti-affinity violated by 2 extra containers: 2 / max(0,1) = 2.
        assert!((Cardinality::anti_affinity().violation_extent(2) - 2.0).abs() < 1e-12);
        // Cardinality [0,5] with 6 placed: 1/5 (footnote-3 "extent").
        assert!((Cardinality::at_most(5).violation_extent(6) - 0.2).abs() < 1e-12);
        // Affinity satisfied: 0.
        assert_eq!(Cardinality::affinity().violation_extent(1), 0.0);
        // Min 4 with only 1 present: 3/4.
        assert!((Cardinality::at_least(4).violation_extent(1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn restrictiveness_ordering() {
        let op = Cardinality::range(0, 3);
        let app = Cardinality::range(0, 5);
        assert!(op.is_more_restrictive_than(&app));
        assert!(!app.is_more_restrictive_than(&op));
        assert!(Cardinality::range(2, 4).is_more_restrictive_than(&Cardinality::range(1, 5)));
        assert!(!Cardinality::range(0, 4).is_more_restrictive_than(&Cardinality::range(1, 5)));
        assert!(Cardinality::at_most(2).is_more_restrictive_than(&Cardinality::at_most(2)));
        assert!(
            Cardinality::at_most(2).is_more_restrictive_than(&Cardinality { min: 0, max: None })
        );
    }

    #[test]
    fn paper_constraint_examples_render() {
        // Caf = {storm, {hb ∧ mem, 1, ∞}, node}.
        let caf = PlacementConstraint::new(
            TagExpr::tag(Tag::new("storm")),
            TagExpr::and([Tag::new("hb"), Tag::new("mem")]),
            Cardinality::affinity(),
            NodeGroupId::node(),
        );
        assert_eq!(caf.to_string(), "{storm, {hb ∧ mem, 1, ∞}, node}");
        // Cca = {storm, {spark, 0, 5}, rack}.
        let cca = PlacementConstraint::new(
            "storm",
            "spark",
            Cardinality::at_most(5),
            NodeGroupId::rack(),
        );
        assert_eq!(cca.to_string(), "{storm, {spark, 0, 5}, rack}");
    }

    #[test]
    fn hard_weight_emulation() {
        let c = PlacementConstraint::anti_affinity("a", "b", NodeGroupId::node());
        assert!(!c.is_hard());
        assert!(c.clone().hard().is_hard());
        assert!(c.with_weight(5e3).is_hard());
    }

    #[test]
    fn intra_app_detection() {
        use medea_cluster::ApplicationId;
        let app = Tag::app_id(ApplicationId(23));
        let intra = PlacementConstraint::affinity(
            TagExpr::and([app.clone(), Tag::new("storm")]),
            TagExpr::and([app.clone(), Tag::new("storm")]),
            NodeGroupId::rack(),
        );
        assert!(intra.is_intra_app());
        let inter = PlacementConstraint::affinity(
            TagExpr::and([app, Tag::new("storm")]),
            TagExpr::tag(Tag::new("hb")),
            NodeGroupId::rack(),
        );
        assert!(!inter.is_intra_app());
    }

    #[test]
    fn mentioned_tags_dedup() {
        let c = PlacementConstraint::new(
            TagExpr::and([Tag::new("a"), Tag::new("b")]),
            TagExpr::and([Tag::new("b"), Tag::new("c")]),
            Cardinality::affinity(),
            NodeGroupId::node(),
        );
        let tags = c.mentioned_tags();
        assert_eq!(tags, vec![Tag::new("a"), Tag::new("b"), Tag::new("c")]);
    }

    #[test]
    fn dnf_construction() {
        let e = TagConstraintExpr::any([
            vec![TagConstraint::new("a", Cardinality::affinity())],
            vec![
                TagConstraint::new("b", Cardinality::anti_affinity()),
                TagConstraint::new("c", Cardinality::at_most(2)),
            ],
        ]);
        assert_eq!(e.conjuncts.len(), 2);
        assert_eq!(e.leaves().count(), 3);
        assert!(!e.is_trivial());
        assert!(TagConstraintExpr::any(Vec::<Vec<TagConstraint>>::new()).is_trivial());
    }
}
