//! Medea's expressive placement-constraint language (paper §4).
//!
//! The crate implements the full constraint model:
//!
//! - [`TagExpr`]: conjunctions of container tags (`hb ∧ mem`);
//! - [`Cardinality`] intervals, whose extremes encode affinity
//!   (`[1, ∞]`) and anti-affinity (`[0, 0]`), and anything in between a
//!   generic cardinality constraint;
//! - [`PlacementConstraint`]: the paper's single generic constraint type
//!   `C = {subject_tag, tag_constraint, node_group}` with soft weights and
//!   DNF compound expressions;
//! - [`ConstraintManager`]: the central store of Fig. 6 with the §5.2
//!   operator-overrides-application conflict rule;
//! - violation evaluation ([`check_container`], [`evaluate_constraint`],
//!   [`violation_stats`]) implementing the §4.2 semantics
//!   `cmin ≤ γ_S(c_tag) ≤ cmax` with Eq. 8 violation extents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod constraint;
mod expr;
mod manager;
mod parse;
mod violation;

pub use constraint::{
    Cardinality, PlacementConstraint, TagConstraint, TagConstraintExpr, HARD_WEIGHT,
};
pub use expr::TagExpr;
pub use manager::{
    validate_constraint, ConstraintError, ConstraintManager, ConstraintSource, StoredConstraint,
};
pub use parse::{parse_constraint, ParseError};
pub use violation::{
    check_container, evaluate_constraint, violation_stats, ConstraintReport, ContainerCheck,
    ViolationStats,
};
