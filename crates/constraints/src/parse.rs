//! Parser for the paper's constraint syntax.
//!
//! Constraints are written exactly as the paper prints them (§4.2):
//!
//! ```text
//! {storm, {hb ∧ mem, 1, ∞}, node}
//! {storm, {spark, 0, 5}, rack}
//! {appid:0023 ∧ storm, {appid:0023 ∧ hb, 1, ∞}, node}
//! {w, {a, 1, ∞} ∨ {b, 1, ∞}, rack} weight=3.5
//! ```
//!
//! ASCII aliases are accepted: `&` for `∧`, `|` or `or` for `∨`, and
//! `inf` for `∞`. Compound expressions are a disjunction (DNF) of
//! conjunctions of `{tag, cmin, cmax}` leaves. A trailing `weight=<f64>`
//! sets the soft-constraint weight; `weight=hard` emulates a hard
//! constraint.

use std::fmt;

use medea_cluster::{NodeGroupId, Tag};

use crate::constraint::{
    Cardinality, PlacementConstraint, TagConstraint, TagConstraintExpr, HARD_WEIGHT,
};
use crate::expr::TagExpr;

/// Errors from [`parse_constraint`].
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Unexpected character or token at a byte position.
    Unexpected {
        /// Byte offset into the input.
        at: usize,
        /// What the parser expected.
        expected: &'static str,
    },
    /// The cardinality bounds could not be parsed.
    BadCardinality(String),
    /// The weight suffix could not be parsed.
    BadWeight(String),
    /// Input ended prematurely.
    UnexpectedEnd,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Unexpected { at, expected } => {
                write!(f, "unexpected input at byte {at}: expected {expected}")
            }
            ParseError::BadCardinality(s) => write!(f, "bad cardinality '{s}'"),
            ParseError::BadWeight(s) => write!(f, "bad weight '{s}'"),
            ParseError::UnexpectedEnd => write!(f, "unexpected end of input"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser { src, pos: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(token) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str, expected: &'static str) -> Result<(), ParseError> {
        if self.eat(token) {
            Ok(())
        } else if self.rest().is_empty() {
            Err(ParseError::UnexpectedEnd)
        } else {
            Err(ParseError::Unexpected {
                at: self.pos,
                expected,
            })
        }
    }

    /// `∧` or `&` (with `and` as a word alias).
    fn eat_and(&mut self) -> bool {
        self.eat("∧") || self.eat("&") || self.eat_word("and")
    }

    /// `∨` or `|` (with `or` as a word alias).
    fn eat_or(&mut self) -> bool {
        self.eat("∨") || self.eat("|") || self.eat_word("or")
    }

    /// Eats a whole word (not a prefix of a longer identifier).
    fn eat_word(&mut self, word: &str) -> bool {
        self.skip_ws();
        let r = self.rest();
        if let Some(after) = r.strip_prefix(word) {
            if after
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_' && c != ':')
            {
                self.pos += word.len();
                return true;
            }
        }
        false
    }

    /// A tag identifier: alphanumerics, `_`, `-`, `.`, and one optional
    /// `:` namespace separator (e.g. `appid:0023`).
    fn parse_tag(&mut self) -> Result<Tag, ParseError> {
        self.skip_ws();
        let start = self.pos;
        let bytes = self.src.as_bytes();
        while self.pos < self.src.len() {
            let c = bytes[self.pos] as char;
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(ParseError::Unexpected {
                at: start,
                expected: "a tag",
            });
        }
        Ok(Tag::new(&self.src[start..self.pos]))
    }

    /// `tag (∧ tag)*`.
    fn parse_tag_expr(&mut self) -> Result<TagExpr, ParseError> {
        let mut tags = vec![self.parse_tag()?];
        loop {
            let save = self.pos;
            if self.eat_and() {
                // A conjunction inside a compound could also start a new
                // *leaf*; only consume if a tag follows directly.
                self.skip_ws();
                if self.rest().starts_with('{') {
                    self.pos = save;
                    break;
                }
                tags.push(self.parse_tag()?);
            } else {
                break;
            }
        }
        Ok(TagExpr::and(tags))
    }

    /// `{tag_expr, cmin, cmax}`.
    fn parse_leaf(&mut self) -> Result<TagConstraint, ParseError> {
        self.expect("{", "'{' starting a tag constraint")?;
        let target = self.parse_tag_expr()?;
        self.expect(",", "',' before cmin")?;
        let cmin = self.parse_u32()?;
        self.expect(",", "',' before cmax")?;
        let cmax = self.parse_cmax()?;
        self.expect("}", "'}' ending the tag constraint")?;
        Ok(TagConstraint::new(
            target,
            Cardinality {
                min: cmin,
                max: cmax,
            },
        ))
    }

    fn parse_u32(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit())
        {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| ParseError::BadCardinality(self.src[start..self.pos.max(start)].into()))
    }

    fn parse_cmax(&mut self) -> Result<Option<u32>, ParseError> {
        self.skip_ws();
        if self.eat("∞") || self.eat_word("inf") {
            return Ok(None);
        }
        self.parse_u32().map(Some)
    }

    /// DNF: `leaf (∧ leaf)* (∨ leaf (∧ leaf)*)*`.
    fn parse_expr(&mut self) -> Result<TagConstraintExpr, ParseError> {
        let mut conjuncts = Vec::new();
        loop {
            let mut conj = vec![self.parse_leaf()?];
            while self.eat_and() {
                conj.push(self.parse_leaf()?);
            }
            conjuncts.push(conj);
            if !self.eat_or() {
                break;
            }
        }
        Ok(TagConstraintExpr::any(conjuncts))
    }

    fn parse_weight(&mut self) -> Result<Option<f64>, ParseError> {
        if !self.eat_word("weight") {
            return Ok(None);
        }
        self.expect("=", "'=' after weight")?;
        self.skip_ws();
        if self.eat_word("hard") {
            return Ok(Some(HARD_WEIGHT));
        }
        let start = self.pos;
        while self
            .rest()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_digit() || c == '.' || c == '-')
        {
            self.pos += 1;
        }
        self.src[start..self.pos]
            .parse()
            .map(Some)
            .map_err(|_| ParseError::BadWeight(self.src[start..self.pos].into()))
    }
}

/// Parses a placement constraint in the paper's syntax.
///
/// # Examples
///
/// ```
/// use medea_constraints::{parse_constraint, Cardinality};
///
/// // Caa from the paper: every storm container in a different upgrade
/// // domain from all hb containers.
/// let c = parse_constraint("{storm, {hb, 0, 0}, upgrade_domain}").unwrap();
/// assert_eq!(c.expr.leaves().next().unwrap().cardinality, Cardinality::anti_affinity());
///
/// // ASCII aliases and weights work too.
/// let c = parse_constraint("{w, {a & b, 1, inf}, node} weight=hard").unwrap();
/// assert!(c.is_hard());
/// ```
pub fn parse_constraint(input: &str) -> Result<PlacementConstraint, ParseError> {
    let mut p = Parser::new(input);
    p.expect("{", "'{' starting the constraint")?;
    let subject = p.parse_tag_expr()?;
    p.expect(",", "',' after the subject tag")?;
    let expr = p.parse_expr()?;
    p.expect(",", "',' before the node group")?;
    let group = NodeGroupId::new(p.parse_tag()?.as_str());
    p.expect("}", "'}' ending the constraint")?;
    let weight = p.parse_weight()?;
    p.skip_ws();
    if !p.rest().is_empty() {
        return Err(ParseError::Unexpected {
            at: p.pos,
            expected: "end of input",
        });
    }
    let mut c = PlacementConstraint::compound(subject, expr, group);
    if let Some(w) = weight {
        c.weight = w;
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_affinity_example() {
        // Caf = {storm, {hb ∧ mem, 1, ∞}, node}.
        let c = parse_constraint("{storm, {hb ∧ mem, 1, ∞}, node}").unwrap();
        assert_eq!(c.subject, TagExpr::tag(Tag::new("storm")));
        assert_eq!(c.group, NodeGroupId::node());
        let leaf = c.expr.leaves().next().unwrap();
        assert_eq!(leaf.target, TagExpr::and([Tag::new("hb"), Tag::new("mem")]));
        assert_eq!(leaf.cardinality, Cardinality::affinity());
    }

    #[test]
    fn paper_appid_example() {
        let c =
            parse_constraint("{appid:0023 ∧ storm, {appid:0023 ∧ hb ∧ mem, 1, ∞}, node}").unwrap();
        assert_eq!(
            c.subject,
            TagExpr::and([Tag::new("appid:0023"), Tag::new("storm")])
        );
        assert_eq!(c.expr.leaves().next().unwrap().target.tags().len(), 3);
    }

    #[test]
    fn paper_cardinality_example() {
        // Cca = {storm, {spark, 0, 5}, rack}.
        let c = parse_constraint("{storm, {spark, 0, 5}, rack}").unwrap();
        assert_eq!(
            c.expr.leaves().next().unwrap().cardinality,
            Cardinality::at_most(5)
        );
        assert_eq!(c.group, NodeGroupId::rack());
    }

    #[test]
    fn ascii_aliases() {
        let a = parse_constraint("{w, {a & b, 1, inf}, node}").unwrap();
        let b = parse_constraint("{w, {a ∧ b, 1, ∞}, node}").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn dnf_compound() {
        let c = parse_constraint("{w, {a, 1, ∞} ∨ {b, 1, ∞} ∧ {c, 0, 0}, rack}").unwrap();
        assert_eq!(c.expr.conjuncts.len(), 2);
        assert_eq!(c.expr.conjuncts[0].len(), 1);
        assert_eq!(c.expr.conjuncts[1].len(), 2);
    }

    #[test]
    fn weights() {
        assert!(
            (parse_constraint("{a, {b, 0, 0}, node} weight=2.5")
                .unwrap()
                .weight
                - 2.5)
                .abs()
                < 1e-12
        );
        assert!(parse_constraint("{a, {b, 0, 0}, node} weight=hard")
            .unwrap()
            .is_hard());
    }

    #[test]
    fn roundtrip_with_display() {
        // Display prints the paper syntax; parse must accept it.
        let original = parse_constraint("{storm, {spark, 0, 5}, rack}").unwrap();
        let reparsed = parse_constraint(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
    }

    #[test]
    fn errors_are_located() {
        assert_eq!(parse_constraint(""), Err(ParseError::UnexpectedEnd));
        assert!(matches!(
            parse_constraint("{storm {hb, 1, 2}, node}"),
            Err(ParseError::Unexpected { .. })
        ));
        assert!(matches!(
            parse_constraint("{storm, {hb, x, 2}, node}"),
            Err(ParseError::BadCardinality(_))
        ));
        assert!(matches!(
            parse_constraint("{a, {b, 0, 0}, node} weight=abc"),
            Err(ParseError::BadWeight(_))
        ));
        assert!(matches!(
            parse_constraint("{a, {b, 0, 0}, node} trailing"),
            Err(ParseError::Unexpected { .. })
        ));
    }

    #[test]
    fn whitespace_is_flexible() {
        let tight = parse_constraint("{w,{a,1,inf},node}").unwrap();
        let loose = parse_constraint("  { w ,  { a , 1 , ∞ } , node }  ").unwrap();
        assert_eq!(tight, loose);
    }
}
