//! Constraint evaluation against live cluster state.
//!
//! Implements the semantics of §4.2: a constraint
//! `C = {subject_tag, tag_constraint, node_group}` is satisfied for a
//! subject container when the container sits on a node belonging to a node
//! set `S` of the group such that the tag-cardinality interval holds on
//! `S` — excluding the subject container itself from the count, matching
//! the ILP's `t_ij ≠ t_is js` self-exclusion. Violation *extent* follows
//! Eq. 8 (normalized distance outside the interval).

use std::collections::HashSet;

use medea_cluster::{ClusterState, ContainerId};

use crate::constraint::{PlacementConstraint, TagConstraint};

/// Outcome of checking one subject container against one constraint.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerCheck {
    /// The subject container.
    pub container: ContainerId,
    /// `true` if some node set containing the container satisfies the
    /// constraint expression.
    pub satisfied: bool,
    /// Violation extent (0 when satisfied): the minimum over containing
    /// node sets and DNF conjuncts of the summed leaf extents.
    pub extent: f64,
}

/// Aggregate report of one constraint across all its subject containers.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintReport {
    /// Number of live containers matching the subject expression.
    pub subjects: usize,
    /// Number of subjects violating the constraint.
    pub violated: usize,
    /// Sum of violation extents over violating subjects.
    pub total_extent: f64,
}

impl ConstraintReport {
    /// Fraction of subject containers in violation (0 if no subjects).
    pub fn violated_fraction(&self) -> f64 {
        if self.subjects == 0 {
            0.0
        } else {
            self.violated as f64 / self.subjects as f64
        }
    }
}

/// Aggregate statistics over a set of constraints — the §7.4 metric
/// "percentage of containers that violate constraints".
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ViolationStats {
    /// Distinct containers subject to at least one constraint.
    pub containers_checked: usize,
    /// Distinct containers violating at least one constraint.
    pub containers_violating: usize,
    /// Sum of violation extents across all (constraint, subject) pairs.
    pub total_extent: f64,
}

impl ViolationStats {
    /// Fraction of constrained containers in violation.
    pub fn violating_fraction(&self) -> f64 {
        if self.containers_checked == 0 {
            0.0
        } else {
            self.containers_violating as f64 / self.containers_checked as f64
        }
    }
}

/// Evaluates one conjunct (all leaves must hold) on one set of a node
/// group; returns the summed violation extent (0 means satisfied).
fn conjunct_extent(
    state: &ClusterState,
    conjunct: &[TagConstraint],
    group: &medea_cluster::NodeGroupId,
    set_idx: usize,
    exclude: ContainerId,
) -> f64 {
    conjunct
        .iter()
        .map(|leaf| {
            let count = leaf
                .target
                .cardinality_in_group_set(state, group, set_idx, Some(exclude));
            leaf.cardinality.violation_extent(count)
        })
        .sum()
}

/// Checks one subject container against a constraint.
///
/// Returns `None` if the container no longer exists. A container whose
/// node belongs to no set of the constraint's group is reported as a full
/// violation with extent 1 (the constraint cannot be satisfied there).
pub fn check_container(
    state: &ClusterState,
    constraint: &PlacementConstraint,
    container: ContainerId,
) -> Option<ContainerCheck> {
    let alloc = state.allocation(container).ok()?;
    let node = alloc.node;
    let group = &constraint.group;
    let node_singleton = [node.index()];
    let set_indices: &[usize] = if group.is_node() {
        &node_singleton
    } else {
        match state.groups().sets_containing_ref(group, node) {
            Some(s) => s,
            // Unknown group: treat as trivially satisfied (validation is
            // the place where unknown groups are rejected). A live
            // allocation's node is always in range, so `None` cannot mean
            // out-of-range here.
            None => {
                return Some(ContainerCheck {
                    container,
                    satisfied: true,
                    extent: 0.0,
                })
            }
        }
    };
    if constraint.expr.is_trivial() {
        return Some(ContainerCheck {
            container,
            satisfied: true,
            extent: 0.0,
        });
    }
    if set_indices.is_empty() {
        return Some(ContainerCheck {
            container,
            satisfied: false,
            extent: 1.0,
        });
    }
    let mut best = f64::INFINITY;
    for &si in set_indices {
        for conj in &constraint.expr.conjuncts {
            let e = conjunct_extent(state, conj, group, si, container);
            if e < best {
                best = e;
            }
            if best == 0.0 {
                break;
            }
        }
        if best == 0.0 {
            break;
        }
    }
    if !best.is_finite() {
        best = 1.0;
    }
    Some(ContainerCheck {
        container,
        satisfied: best == 0.0,
        extent: best,
    })
}

/// Enumerates the live subject containers of a constraint.
///
/// Tagged subjects are seeded from the cluster's tag index: a node hosting
/// a matching container necessarily carries every subject tag, so only the
/// postings intersection is walked (node-ascending, hence deterministic).
/// Tag-less subjects match everything and fall back to an allocation scan.
fn subjects_of(state: &ClusterState, constraint: &PlacementConstraint) -> Vec<ContainerId> {
    let tags = constraint.subject.tags();
    if tags.is_empty() {
        return state
            .allocations()
            .filter(|a| constraint.subject.matches_allocation(a))
            .map(|a| a.id)
            .collect();
    }
    let mut out = Vec::new();
    for node in state.nodes_with_all_tags(tags) {
        let Ok(containers) = state.containers_on(node) else {
            continue;
        };
        for &cid in containers {
            if let Ok(a) = state.allocation(cid) {
                if constraint.subject.matches_allocation(a) {
                    out.push(cid);
                }
            }
        }
    }
    out
}

/// Evaluates a constraint across all live subject containers.
pub fn evaluate_constraint(
    state: &ClusterState,
    constraint: &PlacementConstraint,
) -> ConstraintReport {
    let mut report = ConstraintReport::default();
    for c in subjects_of(state, constraint) {
        if let Some(check) = check_container(state, constraint, c) {
            report.subjects += 1;
            if !check.satisfied {
                report.violated += 1;
                report.total_extent += check.extent;
            }
        }
    }
    report
}

/// Evaluates a set of constraints, reporting the distinct-container
/// violation fraction of §7.4.
pub fn violation_stats<'a>(
    state: &ClusterState,
    constraints: impl IntoIterator<Item = &'a PlacementConstraint>,
) -> ViolationStats {
    let mut checked: HashSet<ContainerId> = HashSet::new();
    let mut violating: HashSet<ContainerId> = HashSet::new();
    let mut total_extent = 0.0;
    for constraint in constraints {
        for c in subjects_of(state, constraint) {
            if let Some(check) = check_container(state, constraint, c) {
                checked.insert(c);
                if !check.satisfied {
                    violating.insert(c);
                    total_extent += check.extent;
                }
            }
        }
    }
    ViolationStats {
        containers_checked: checked.len(),
        containers_violating: violating.len(),
        total_extent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{Cardinality, PlacementConstraint, TagConstraint, TagConstraintExpr};
    use crate::expr::TagExpr;
    use medea_cluster::{
        ApplicationId, ClusterState, ContainerRequest, ExecutionKind, NodeGroupId, NodeId,
        Resources, Tag,
    };

    fn req(tags: &[&str]) -> ContainerRequest {
        ContainerRequest::new(Resources::new(256, 1), tags.iter().map(|t| Tag::new(*t)))
    }

    /// 4 nodes, 2 racks ({0,1} and {2,3}).
    fn cluster() -> ClusterState {
        ClusterState::homogeneous(4, Resources::new(8192, 8), 2)
    }

    #[test]
    fn node_affinity_satisfied_and_violated() {
        let mut c = cluster();
        let storm = c
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["storm"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        c.allocate(
            ApplicationId(2),
            NodeId(0),
            &req(&["hb", "mem"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        // Caf = {storm, {hb ∧ mem, 1, ∞}, node}: satisfied on node 0.
        let caf = PlacementConstraint::affinity(
            "storm",
            TagExpr::and([Tag::new("hb"), Tag::new("mem")]),
            NodeGroupId::node(),
        );
        let check = check_container(&c, &caf, storm).unwrap();
        assert!(check.satisfied);

        // Move the hb container away: now violated with extent 1.
        c.release_app(ApplicationId(2));
        c.allocate(
            ApplicationId(2),
            NodeId(3),
            &req(&["hb", "mem"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        let check = check_container(&c, &caf, storm).unwrap();
        assert!(!check.satisfied);
        assert!((check.extent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn anti_affinity_excludes_subject_itself() {
        let mut c = cluster();
        // A single hb container must not count itself as a violation of
        // "{hb, {hb, 0, 0}, node}" (intra-app anti-affinity).
        let only = c
            .allocate(
                ApplicationId(1),
                NodeId(1),
                &req(&["hb"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let caa = PlacementConstraint::anti_affinity("hb", "hb", NodeGroupId::node());
        let check = check_container(&c, &caa, only).unwrap();
        assert!(check.satisfied);

        // A second hb container on the same node violates for both.
        c.allocate(
            ApplicationId(1),
            NodeId(1),
            &req(&["hb"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        let report = evaluate_constraint(&c, &caa);
        assert_eq!(report.subjects, 2);
        assert_eq!(report.violated, 2);
    }

    #[test]
    fn rack_cardinality() {
        let mut c = cluster();
        // Ccg = {spark, {spark, 0, 2}, rack}: three spark on one rack -> each
        // sees 2 others, so [0,2] holds; a fourth breaks it.
        let cca = PlacementConstraint::cardinality("spark", "spark", 0, 2, NodeGroupId::rack());
        for node in [0u32, 0, 1] {
            c.allocate(
                ApplicationId(1),
                NodeId(node),
                &req(&["spark"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        }
        let report = evaluate_constraint(&c, &cca);
        assert_eq!(report.subjects, 3);
        assert_eq!(report.violated, 0);
        c.allocate(
            ApplicationId(1),
            NodeId(1),
            &req(&["spark"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        let report = evaluate_constraint(&c, &cca);
        assert_eq!(report.subjects, 4);
        assert_eq!(report.violated, 4);
        // Extent per Eq. 8: each subject sees 3 others vs max 2 -> 1/2.
        assert!((report.total_extent - 4.0 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn min_cardinality_violations() {
        let mut c = cluster();
        // "at least 3 spark per rack": 2 spark on rack 0 -> each subject
        // sees 1 other, below min 3 by 2 -> extent 2/3 each.
        let cmin = PlacementConstraint::new(
            "spark",
            "spark",
            Cardinality::at_least(3),
            NodeGroupId::rack(),
        );
        c.allocate(
            ApplicationId(1),
            NodeId(0),
            &req(&["spark"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        c.allocate(
            ApplicationId(1),
            NodeId(1),
            &req(&["spark"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        let report = evaluate_constraint(&c, &cmin);
        assert_eq!(report.violated, 2);
        assert!((report.total_extent - 2.0 * (2.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn dnf_any_conjunct_satisfies() {
        let mut c = cluster();
        let s = c
            .allocate(
                ApplicationId(1),
                NodeId(0),
                &req(&["w"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        c.allocate(
            ApplicationId(2),
            NodeId(0),
            &req(&["cache"]),
            ExecutionKind::LongRunning,
        )
        .unwrap();
        // (affinity to db) OR (affinity to cache): cache present -> ok.
        let expr = TagConstraintExpr::any([
            vec![TagConstraint::new("db", Cardinality::affinity())],
            vec![TagConstraint::new("cache", Cardinality::affinity())],
        ]);
        let pc = PlacementConstraint::compound("w", expr, NodeGroupId::node());
        let check = check_container(&c, &pc, s).unwrap();
        assert!(check.satisfied);

        // Conjunction inside a conjunct: db AND cache both required -> the
        // missing db makes it violated, extent = 1 (db leaf).
        let expr = TagConstraintExpr::all([
            TagConstraint::new("db", Cardinality::affinity()),
            TagConstraint::new("cache", Cardinality::affinity()),
        ]);
        let pc = PlacementConstraint::compound("w", expr, NodeGroupId::node());
        let check = check_container(&c, &pc, s).unwrap();
        assert!(!check.satisfied);
        assert!((check.extent - 1.0).abs() < 1e-12);
    }

    #[test]
    fn violation_stats_counts_distinct_containers() {
        let mut c = cluster();
        // Two constraints both subject the same containers.
        for _ in 0..2 {
            c.allocate(
                ApplicationId(1),
                NodeId(2),
                &req(&["x"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        }
        let c1 = PlacementConstraint::anti_affinity("x", "x", NodeGroupId::node());
        let c2 = PlacementConstraint::anti_affinity("x", "x", NodeGroupId::rack());
        let stats = violation_stats(&c, [&c1, &c2]);
        assert_eq!(stats.containers_checked, 2);
        assert_eq!(stats.containers_violating, 2);
        assert!((stats.violating_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_subjects_means_no_violations() {
        let c = cluster();
        let pc = PlacementConstraint::anti_affinity("ghost", "ghost", NodeGroupId::node());
        let report = evaluate_constraint(&c, &pc);
        assert_eq!(report.subjects, 0);
        assert_eq!(report.violated_fraction(), 0.0);
    }

    #[test]
    fn node_outside_group_is_violation() {
        let mut c = cluster();
        // Register a group covering only nodes 0-1; place subject on 3.
        c.register_group(NodeGroupId::new("zone"), vec![vec![NodeId(0), NodeId(1)]]);
        let s = c
            .allocate(
                ApplicationId(1),
                NodeId(3),
                &req(&["y"]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let pc = PlacementConstraint::affinity("y", "y", NodeGroupId::new("zone"));
        let check = check_container(&c, &pc, s).unwrap();
        assert!(!check.satisfied);
        assert!((check.extent - 1.0).abs() < 1e-12);
    }
}
