//! Randomized tests for the constraint language: parser/printer round
//! trips, cardinality algebra, and violation-extent invariants, driven by
//! the workspace's deterministic PRNG (`medea-rand`).

use medea_cluster::{NodeGroupId, Tag};
use medea_constraints::{
    parse_constraint, Cardinality, PlacementConstraint, TagConstraint, TagConstraintExpr, TagExpr,
};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// A random identifier matching `[a-z][a-z0-9_]{0,8}`.
fn random_tag(rng: &mut StdRng) -> Tag {
    const HEAD: &[u8] = b"abcdefghijklmnopqrstuvwxyz";
    const TAIL: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789_";
    let len = rng.random_range(0..9usize);
    let mut s = String::new();
    s.push(*rng.choose(HEAD).unwrap() as char);
    for _ in 0..len {
        s.push(*rng.choose(TAIL).unwrap() as char);
    }
    Tag::new(s)
}

fn random_tag_expr(rng: &mut StdRng) -> TagExpr {
    let n = rng.random_range(1..3usize);
    TagExpr::and((0..n).map(|_| random_tag(rng)).collect::<Vec<_>>())
}

fn random_cardinality(rng: &mut StdRng) -> Cardinality {
    let min = rng.random_range(0..6u32);
    let max = if rng.random_bool(0.5) {
        Some(rng.random_range(0..10u32).max(min))
    } else {
        None
    };
    Cardinality { min, max }
}

fn random_constraint(rng: &mut StdRng) -> PlacementConstraint {
    let subject = random_tag_expr(rng);
    let n_disjuncts = rng.random_range(1..3usize);
    let dnf: Vec<Vec<TagConstraint>> = (0..n_disjuncts)
        .map(|_| {
            let n_conj = rng.random_range(1..3usize);
            (0..n_conj)
                .map(|_| TagConstraint::new(random_tag_expr(rng), random_cardinality(rng)))
                .collect()
        })
        .collect();
    let group = *rng.choose(&["node", "rack", "upgrade_domain"]).unwrap();
    PlacementConstraint::compound(
        subject,
        TagConstraintExpr::any(dnf),
        NodeGroupId::new(group),
    )
}

/// Display emits the paper syntax, which the parser accepts back,
/// yielding an identical constraint.
#[test]
fn display_parse_roundtrip() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xD15 ^ case);
        let c = random_constraint(&mut rng);
        let printed = c.to_string();
        let reparsed = parse_constraint(&printed)
            .unwrap_or_else(|e| panic!("case {case}: cannot reparse '{printed}': {e}"));
        assert_eq!(c, reparsed, "case {case}");
    }
}

/// The weight suffix survives a round trip: `Display` prints the bare
/// paper syntax, and appending `weight=<w>` (or `weight=hard`) yields a
/// reparse identical to the constraint with that weight set.
#[test]
fn weighted_roundtrip() {
    use medea_constraints::HARD_WEIGHT;
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x3E16 ^ case);
        let mut c = random_constraint(&mut rng);
        let printed = if rng.random_bool(0.25) {
            c.weight = HARD_WEIGHT;
            format!("{c} weight=hard")
        } else {
            // Quarter-step weights print exactly (e.g. `2.75`), so the
            // reparse is bit-identical, not merely approximately equal.
            c.weight = rng.random_range(1..40usize) as f64 / 4.0;
            format!("{} weight={}", c, c.weight)
        };
        let reparsed = parse_constraint(&printed)
            .unwrap_or_else(|e| panic!("case {case}: cannot reparse '{printed}': {e}"));
        assert_eq!(c, reparsed, "case {case}: '{printed}'");
    }
}

/// Rewriting the printed form with the documented ASCII aliases
/// (`&`, `|`, `inf`) parses back to the identical constraint.
#[test]
fn ascii_form_roundtrip() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xA5C11 ^ case);
        let c = random_constraint(&mut rng);
        let ascii = c
            .to_string()
            .replace('∧', "&")
            .replace('∨', "|")
            .replace('∞', "inf");
        let reparsed = parse_constraint(&ascii)
            .unwrap_or_else(|e| panic!("case {case}: cannot reparse '{ascii}': {e}"));
        assert_eq!(c, reparsed, "case {case}: '{ascii}'");
    }
}

/// Printing is a fixpoint of parse∘format: formatting the reparsed
/// constraint reproduces the first printed form byte for byte.
#[test]
fn parse_format_idempotent() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x1DE ^ case);
        let c = random_constraint(&mut rng);
        let printed = c.to_string();
        let reparsed = parse_constraint(&printed).unwrap();
        assert_eq!(reparsed.to_string(), printed, "case {case}");
    }
}

/// A count satisfies the interval iff its violation extent is zero,
/// and the extent grows monotonically with the distance outside.
#[test]
fn extent_iff_unsatisfied() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xE7 ^ case);
        let card = random_cardinality(&mut rng);
        let count = rng.random_range(0..20u32);
        let satisfied = card.satisfied_by(count);
        let extent = card.violation_extent(count);
        assert_eq!(
            satisfied,
            extent == 0.0,
            "case {case}: {card:?} count {count}"
        );
        assert!(extent >= 0.0);
        // Monotonicity below cmin: moving further under the minimum never
        // shrinks the extent.
        if count > 0 && count < card.min {
            assert!(card.violation_extent(count - 1) >= extent);
        }
        // Monotonicity above cmax.
        if let Some(max) = card.max {
            if count > max {
                assert!(card.violation_extent(count + 1) >= extent);
            }
        }
    }
}

/// Restrictiveness is a partial order compatible with satisfaction:
/// anything satisfying the more restrictive interval satisfies the
/// less restrictive one.
#[test]
fn restrictive_implies_satisfaction_subset() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0x5B ^ case);
        let a = random_cardinality(&mut rng);
        let b = random_cardinality(&mut rng);
        let count = rng.random_range(0..20u32);
        if a.is_more_restrictive_than(&b) && a.satisfied_by(count) {
            assert!(
                b.satisfied_by(count),
                "case {case}: {a:?} vs {b:?} at {count}"
            );
        }
    }
}

/// Tag expressions are canonical: construction order never matters.
#[test]
fn tag_expr_is_canonical() {
    for case in 0..256u64 {
        let mut rng = StdRng::seed_from_u64(0xCA ^ case);
        let n = rng.random_range(1..5usize);
        let mut tags: Vec<Tag> = (0..n).map(|_| random_tag(&mut rng)).collect();
        let a = TagExpr::and(tags.clone());
        tags.reverse();
        let b = TagExpr::and(tags);
        assert_eq!(a, b, "case {case}");
    }
}
