//! Property tests for the constraint language: parser/printer round
//! trips, cardinality algebra, and violation-extent invariants.

use medea_cluster::{NodeGroupId, Tag};
use medea_constraints::{
    parse_constraint, Cardinality, PlacementConstraint, TagConstraint, TagConstraintExpr, TagExpr,
};
use proptest::prelude::*;

fn tag_strategy() -> impl Strategy<Value = Tag> {
    "[a-z][a-z0-9_]{0,8}".prop_map(Tag::new)
}

fn tag_expr_strategy() -> impl Strategy<Value = TagExpr> {
    prop::collection::vec(tag_strategy(), 1..3).prop_map(TagExpr::and)
}

fn cardinality_strategy() -> impl Strategy<Value = Cardinality> {
    (0u32..6, prop::option::of(0u32..10)).prop_map(|(min, max)| Cardinality {
        min,
        max: max.map(|m| m.max(min)),
    })
}

fn constraint_strategy() -> impl Strategy<Value = PlacementConstraint> {
    (
        tag_expr_strategy(),
        prop::collection::vec(
            prop::collection::vec((tag_expr_strategy(), cardinality_strategy()), 1..3),
            1..3,
        ),
        prop::sample::select(vec!["node", "rack", "upgrade_domain"]),
    )
        .prop_map(|(subject, dnf, group)| {
            let expr = TagConstraintExpr::any(dnf.into_iter().map(|conj| {
                conj.into_iter()
                    .map(|(t, c)| TagConstraint::new(t, c))
                    .collect::<Vec<_>>()
            }));
            PlacementConstraint::compound(subject, expr, NodeGroupId::new(group))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Display emits the paper syntax, which the parser accepts back,
    /// yielding an identical constraint.
    #[test]
    fn display_parse_roundtrip(c in constraint_strategy()) {
        let printed = c.to_string();
        let reparsed = parse_constraint(&printed)
            .unwrap_or_else(|e| panic!("cannot reparse '{printed}': {e}"));
        prop_assert_eq!(c, reparsed);
    }

    /// A count satisfies the interval iff its violation extent is zero,
    /// and the extent grows monotonically with the distance outside.
    #[test]
    fn extent_iff_unsatisfied(card in cardinality_strategy(), count in 0u32..20) {
        let satisfied = card.satisfied_by(count);
        let extent = card.violation_extent(count);
        prop_assert_eq!(satisfied, extent == 0.0);
        prop_assert!(extent >= 0.0);
        // Monotonicity below cmin: moving further under the minimum never
        // shrinks the extent.
        if count > 0 && count < card.min {
            prop_assert!(card.violation_extent(count - 1) >= extent);
        }
        // Monotonicity above cmax.
        if let Some(max) = card.max {
            if count > max {
                prop_assert!(card.violation_extent(count + 1) >= extent);
            }
        }
    }

    /// Restrictiveness is a partial order compatible with satisfaction:
    /// anything satisfying the more restrictive interval satisfies the
    /// less restrictive one.
    #[test]
    fn restrictive_implies_satisfaction_subset(
        a in cardinality_strategy(),
        b in cardinality_strategy(),
        count in 0u32..20,
    ) {
        if a.is_more_restrictive_than(&b) && a.satisfied_by(count) {
            prop_assert!(b.satisfied_by(count));
        }
    }

    /// Tag expressions are canonical: construction order never matters.
    #[test]
    fn tag_expr_is_canonical(mut tags in prop::collection::vec(tag_strategy(), 1..5)) {
        let a = TagExpr::and(tags.clone());
        tags.reverse();
        let b = TagExpr::and(tags);
        prop_assert_eq!(a, b);
    }
}
