//! Observability layer for the Medea scheduling pipeline.
//!
//! Medea's evaluation (§7 of the paper) is entirely about *measured*
//! scheduling behavior — placement latency, ILP solve time versus cluster
//! size, violation counts. This crate is the cross-cutting substrate that
//! makes those measurements first-class in the reproduction, the way
//! Omega- and Borg-style systems expose per-scheduler-cycle metrics:
//!
//! - [`MetricsRegistry`] — a named collection of metric series. Handles
//!   ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`s resolved once and
//!   then updated **lock-free** (plain atomics); the registry lock is only
//!   taken at registration and snapshot time, never on the hot path.
//! - [`Histogram`] — log-bucketed (power-of-two majors with 4 linear
//!   sub-buckets each, ≤ 6.25% relative width) with p50/p90/p99/max
//!   reconstruction by in-bucket interpolation.
//! - [`Timer`] — scoped RAII timers that record elapsed microseconds into
//!   a histogram on drop.
//! - [`MetricsRegistry::snapshot`]/[`MetricsRegistry::snapshot_json`] —
//!   point-in-time export, suitable for printing at the end of a bench
//!   run or scraping from a service endpoint.
//!
//! # Metric naming scheme
//!
//! Series are dot-separated `component.metric[_unit]` names, with the
//! component being the pipeline layer that emits them:
//!
//! | prefix    | layer                                           |
//! |-----------|-------------------------------------------------|
//! | `solver.` | MILP branch-and-bound + simplex (`medea-solver`)|
//! | `core.`   | the Medea scheduling cycle (`medea-core`)       |
//! | `task.`   | the task-based scheduler (`medea-core`)         |
//! | `sim.`    | the discrete-event driver (`medea-sim`)         |
//!
//! Counters end in `_total`, latency histograms in `_us` (microseconds)
//! or `_ticks` (simulated time), gauges carry no suffix.
//!
//! # Examples
//!
//! ```
//! use medea_obs::MetricsRegistry;
//!
//! let registry = MetricsRegistry::new();
//! let cycles = registry.counter("core.cycles_total");
//! let depth = registry.gauge("core.queue_depth");
//! let cycle_time = registry.histogram("core.cycle_time_us");
//!
//! depth.set(3);
//! {
//!     let _t = cycle_time.start_timer(); // records on drop
//!     cycles.inc();
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("core.cycles_total"), Some(1));
//! assert!(registry.snapshot_json().contains("core.queue_depth"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

/// A monotonically increasing event count (lock-free).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time signed level (lock-free).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Exact buckets for values `0..EXACT`; beyond that, each power-of-two
/// major is split into [`SUB_BUCKETS`] linear sub-buckets.
const EXACT: u64 = 8;
/// Linear sub-buckets per power-of-two major bucket.
const SUB_BUCKETS: u64 = 4;
/// Total bucket count: 8 exact + 4 per major for majors 3..=63.
const NUM_BUCKETS: usize = (EXACT + (64 - 3) * SUB_BUCKETS) as usize;

/// Returns the bucket index of a value.
fn bucket_index(v: u64) -> usize {
    if v < EXACT {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= 3 here
    let sub = (v >> (msb - 2)) & (SUB_BUCKETS - 1);
    (EXACT + (msb - 3) * SUB_BUCKETS + sub) as usize
}

/// Returns the inclusive lower bound and width of a bucket.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    let idx = idx as u64;
    if idx < EXACT {
        return (idx, 1);
    }
    let msb = 3 + (idx - EXACT) / SUB_BUCKETS;
    let sub = (idx - EXACT) % SUB_BUCKETS;
    let width = 1u64 << (msb - 2);
    ((1u64 << msb) + sub * width, width)
}

/// A lock-free log-bucketed histogram of non-negative integer samples
/// (typically microseconds of latency).
///
/// Relative bucket width is at most 1/16 of the value (4 sub-buckets per
/// octave), so interpolated percentiles are within ~6% of the true
/// sample, which is ample for latency reporting.
#[derive(Debug)]
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in whole microseconds.
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Starts a scoped timer that records elapsed microseconds into this
    /// histogram when dropped.
    pub fn start_timer(self: &Arc<Self>) -> Timer {
        Timer {
            histogram: Arc::clone(self),
            start: Instant::now(),
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Reads a consistent-enough snapshot of the bucket counts.
    fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the owning bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_from(&self.bucket_counts(), self.count(), self.max(), q)
    }
}

/// Quantile estimation shared by the live histogram and its snapshot.
fn quantile_from(buckets: &[u64], count: u64, max: u64, q: f64) -> f64 {
    if count == 0 {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    // Rank of the target sample, 1-based.
    let rank = (q * count as f64).ceil().max(1.0) as u64;
    let mut seen = 0u64;
    for (idx, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        if seen + c >= rank {
            let (lo, width) = bucket_bounds(idx);
            let into = (rank - seen) as f64 / c as f64;
            // The max is tracked exactly; never report beyond it.
            return (lo as f64 + into * width as f64).min(max as f64);
        }
        seen += c;
    }
    max as f64
}

/// Scoped RAII timer: records elapsed microseconds into its histogram on
/// drop (including early returns and panics).
#[derive(Debug)]
pub struct Timer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl Timer {
    /// Stops the timer early, recording the elapsed time now.
    pub fn observe(self) {
        drop(self);
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.histogram.record_duration(self.start.elapsed());
    }
}

/// One registered series.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metric series.
///
/// Cloneable handle semantics come from wrapping in [`Arc`] at the call
/// site ([`MetricsRegistry::new`] returns an `Arc`); updates through
/// resolved handles are lock-free.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    series: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Creates an empty registry behind an [`Arc`] for cheap sharing
    /// across pipeline layers.
    pub fn new() -> Arc<Self> {
        Arc::new(MetricsRegistry::default())
    }

    fn lock_read(&self) -> std::sync::RwLockReadGuard<'_, BTreeMap<String, Metric>> {
        self.series.read().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_write(&self) -> std::sync::RwLockWriteGuard<'_, BTreeMap<String, Metric>> {
        self.series.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Resolves (registering on first use) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(Metric::Counter(c)) = self.lock_read().get(name) {
            return Arc::clone(c);
        }
        let mut map = self.lock_write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Resolves (registering on first use) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(Metric::Gauge(g)) = self.lock_read().get(name) {
            return Arc::clone(g);
        }
        let mut map = self.lock_write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Resolves (registering on first use) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(Metric::Histogram(h)) = self.lock_read().get(name) {
            return Arc::clone(h);
        }
        let mut map = self.lock_write();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric '{name}' already registered with a different type"),
        }
    }

    /// Number of registered series.
    pub fn len(&self) -> usize {
        self.lock_read().len()
    }

    /// Whether the registry has no series.
    pub fn is_empty(&self) -> bool {
        self.lock_read().is_empty()
    }

    /// Takes a point-in-time snapshot of every series, sorted by name.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock_read();
        let series = map
            .iter()
            .map(|(name, m)| match m {
                Metric::Counter(c) => SeriesSnapshot {
                    name: name.clone(),
                    value: SeriesValue::Counter(c.get()),
                },
                Metric::Gauge(g) => SeriesSnapshot {
                    name: name.clone(),
                    value: SeriesValue::Gauge(g.get()),
                },
                Metric::Histogram(h) => {
                    let buckets = h.bucket_counts();
                    let count = h.count();
                    let max = h.max();
                    SeriesSnapshot {
                        name: name.clone(),
                        value: SeriesValue::Histogram(HistogramSummary {
                            count,
                            sum: h.sum(),
                            p50: quantile_from(&buckets, count, max, 0.50),
                            p90: quantile_from(&buckets, count, max, 0.90),
                            p99: quantile_from(&buckets, count, max, 0.99),
                            max,
                        }),
                    }
                }
            })
            .collect();
        Snapshot { series }
    }

    /// Serializes [`MetricsRegistry::snapshot`] as a JSON object.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_json()
    }
}

/// Aggregate view of one histogram at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Interpolated median.
    pub p50: f64,
    /// Interpolated 90th percentile.
    pub p90: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// Exact maximum sample.
    pub max: u64,
}

/// Snapshot value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram(HistogramSummary),
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Series name (`component.metric_unit`).
    pub name: String,
    /// Captured value.
    pub value: SeriesValue,
}

/// A point-in-time snapshot of a whole registry, sorted by series name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All captured series.
    pub series: Vec<SeriesSnapshot>,
}

impl Snapshot {
    /// Looks up a counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| match s.value {
                SeriesValue::Counter(v) => Some(v),
                _ => None,
            })
    }

    /// Looks up a gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| match s.value {
                SeriesValue::Gauge(v) => Some(v),
                _ => None,
            })
    }

    /// Looks up a histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.series
            .iter()
            .find(|s| s.name == name)
            .and_then(|s| match &s.value {
                SeriesValue::Histogram(h) => Some(h),
                _ => None,
            })
    }

    /// Serializes the snapshot as JSON (stable key order, no external
    /// dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match &s.value {
                SeriesValue::Counter(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"type\":\"counter\",\"value\":{v}}}",
                        json_string(&s.name)
                    );
                }
                SeriesValue::Gauge(v) => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"type\":\"gauge\",\"value\":{v}}}",
                        json_string(&s.name)
                    );
                }
                SeriesValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"name\":{},\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
                        json_string(&s.name),
                        h.count,
                        h.sum,
                        json_f64(h.p50),
                        json_f64(h.p90),
                        json_f64(h.p99),
                        h.max
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            format!("{:.1}", v)
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_bounds_contain() {
        let mut last = 0usize;
        for v in [0u64, 1, 2, 7, 8, 9, 15, 16, 100, 1000, 1 << 20, u64::MAX] {
            let idx = bucket_index(v);
            assert!(idx >= last || v < 8, "index must not decrease");
            let (lo, width) = bucket_bounds(idx);
            // The final bucket's exclusive upper bound is 2^64, which
            // has no u64 representation: checked_add returning None
            // means every remaining value is contained.
            let below_upper = match lo.checked_add(width) {
                Some(upper) => v < upper,
                None => true,
            };
            assert!(
                v >= lo && below_upper,
                "value {v} outside bucket [{lo}, {lo}+{width})"
            );
            last = idx;
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn counters_and_gauges() {
        let r = MetricsRegistry::new();
        let c = r.counter("a.x_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Resolving again returns the same underlying series.
        assert_eq!(r.counter("a.x_total").get(), 5);
        let g = r.gauge("a.depth");
        g.set(7);
        g.add(-2);
        assert_eq!(g.get(), 5);
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let r = MetricsRegistry::new();
        r.counter("a.b");
        r.gauge("a.b");
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t.lat_us");
        for v in 1..=1000u64 {
            h.record(v);
        }
        // Log-bucketing guarantees <= 1/16 relative error per bucket edge.
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        assert!((p50 - 500.0).abs() / 500.0 < 0.10, "p50 {p50}");
        assert!((p99 - 990.0).abs() / 990.0 < 0.10, "p99 {p99}");
        assert_eq!(h.max(), 1000);
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t.empty_us");
        assert_eq!(h.quantile(0.5), 0.0);
        let snap = r.snapshot();
        let s = snap.histogram("t.empty_us").unwrap();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn quantiles_never_exceed_max() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t.one_us");
        h.record(1_000_000);
        assert_eq!(h.quantile(0.5), 1_000_000.0);
        assert_eq!(h.quantile(1.0), 1_000_000.0);
    }

    #[test]
    fn timer_records_on_drop() {
        let r = MetricsRegistry::new();
        let h = r.histogram("t.scope_us");
        {
            let _t = h.start_timer();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.max() >= 1_000, "2ms sleep must record >= 1000us");
    }

    #[test]
    fn snapshot_json_shape() {
        let r = MetricsRegistry::new();
        r.counter("z.c_total").add(3);
        r.gauge("a.g").set(-4);
        r.histogram("m.h_us").record(42);
        let json = r.snapshot_json();
        // Sorted by name: a.g before m.h_us before z.c_total.
        let a = json.find("a.g").unwrap();
        let m = json.find("m.h_us").unwrap();
        let z = json.find("z.c_total").unwrap();
        assert!(a < m && m < z);
        assert!(json.contains("\"type\":\"gauge\",\"value\":-4"));
        assert!(json.contains("\"type\":\"counter\",\"value\":3"));
        assert!(json.contains("\"count\":1"));
        assert!(json.starts_with("{\"series\":["));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let r = MetricsRegistry::new();
        let c = r.counter("t.par_total");
        let h = r.histogram("t.par_us");
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = Arc::clone(&c);
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        c.inc();
                        h.record(i % 512);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
        assert_eq!(h.count(), 80_000);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(3.0), "3.0");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
