//! Internal deterministic pseudo-random number generation.
//!
//! The published `rand` crate is deliberately **not** a dependency of this
//! workspace: the build must succeed fully offline (`cargo build --release
//! --offline`) with no registry access. This crate provides the small PRNG
//! surface the simulator and the randomized tests need:
//!
//! - [`Xoshiro256PlusPlus`] — the xoshiro256++ generator of Blackman and
//!   Vigna: fast, 256-bit state, passes BigCrush, and trivially
//!   reproducible across platforms;
//! - [`SplitMix64`] — the canonical seeding generator, used to expand a
//!   single `u64` seed into full xoshiro state;
//! - the [`SeedableRng`]/[`RngExt`] traits, mirroring the subset of the
//!   `rand` API the codebase uses (`seed_from_u64`, `random_range`,
//!   `shuffle`, …) so call sites read identically.
//!
//! Determinism is a feature, not an accident: every simulator experiment
//! is seeded, and two runs with the same seed must produce bit-identical
//! traces on every platform.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Seeding helpers (mirrors `rand::rngs`).
pub mod rngs {
    /// The workspace's standard generator (xoshiro256++).
    pub type StdRng = crate::Xoshiro256PlusPlus;
}

/// Construction of a generator from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose full state is expanded from `seed` via
    /// SplitMix64 (so nearby seeds still yield uncorrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw output interface of a generator.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // 53 high bits scaled by 2^-53: the standard dense mapping.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// SplitMix64: a tiny, fast generator used for state expansion.
///
/// Not a statistical heavyweight on its own, but the recommended seeder
/// for the xoshiro family (it has no zero fixed point and decorrelates
/// consecutive seeds).
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a SplitMix64 stream from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64::new(seed)
    }
}

/// xoshiro256++ (Blackman & Vigna, 2019): the workspace's standard PRNG.
#[derive(Debug, Clone)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl SeedableRng for Xoshiro256PlusPlus {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256PlusPlus {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl RngCore for Xoshiro256PlusPlus {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A half-open range a generator can sample uniformly.
///
/// Implemented for `Range<T>` over the integer and float types the
/// codebase samples; mirrors `rand`'s `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style unbiased bounded sampling via widening
                // multiply with rejection of the biased low zone.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let threshold = span.wrapping_neg() % span;
                    while lo < threshold {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_uint!(u64, u32, usize);

impl SampleRange<i64> for Range<i64> {
    fn sample(self, rng: &mut impl RngCore) -> i64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.wrapping_sub(self.start) as u64;
        let offset = (0..span).sample(rng);
        self.start.wrapping_add(offset as i64)
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back inside.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

/// Convenience sampling methods over any [`RngCore`] (mirrors the used
/// subset of `rand::Rng`).
pub trait RngExt: RngCore {
    /// Uniform sample from a half-open range: `rng.random_range(0..10)`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.random_range(0..(i + 1));
            slice.swap(i, j);
        }
    }

    /// Picks a uniformly random element of a non-empty slice.
    fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T>
    where
        Self: Sized,
    {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.random_range(0..slice.len())])
        }
    }
}

impl<T: RngCore> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn splitmix64_matches_reference_vector() {
        // First outputs for seed 0, from the reference C implementation
        // (Vigna, <https://prng.di.unimi.it/splitmix64.c>).
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn xoshiro_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_are_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 must appear");
        for _ in 0..1000 {
            let v = rng.random_range(20_000..60_000u64);
            assert!((20_000..60_000).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn singleton_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(rng.random_range(7..8u32), 7);
        }
    }

    #[test]
    fn float_ranges_stay_half_open() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&v), "got {v}");
        }
        // Tiny range (regression: rounding must not hit the end bound).
        for _ in 0..1000 {
            let v = rng.random_range(1e-9..1.0f64);
            assert!((1e-9..1.0).contains(&v));
        }
    }

    #[test]
    fn float_mean_is_central() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // Shuffling 50 elements leaves them in place with probability 1/50!.
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(7);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert_eq!(rng.choose(&empty), None);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }
}
