//! Benchmarks of LRA placement latency per algorithm and cluster size —
//! the measured counterpart of Fig. 11a — plus the task scheduler's
//! per-heartbeat allocation cost (requirement R4).
//!
//! `harness = false`: uses the `medea_bench::bench` timing helper so the
//! workspace stays free of external crates. Run with
//! `cargo bench -p medea-bench --bench scheduler_bench`.

use medea_bench::bench;
use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, NodeId, Resources, Tag};
use medea_constraints::PlacementConstraint;
use medea_core::{LraAlgorithm, LraRequest, LraScheduler, TaskJobRequest, TaskScheduler};
use medea_obs::MetricsRegistry;

fn workload() -> Vec<LraRequest> {
    (0..2u64)
        .map(|i| {
            LraRequest::uniform(
                ApplicationId(100 + i),
                10,
                Resources::new(2048, 1),
                vec![Tag::new("w")],
                vec![
                    PlacementConstraint::cardinality("w", "w", 0, 1, NodeGroupId::node()),
                    PlacementConstraint::affinity(
                        medea_constraints::TagExpr::and([
                            Tag::new("w"),
                            Tag::app_id(ApplicationId(100 + i)),
                        ]),
                        medea_constraints::TagExpr::and([
                            Tag::new("w"),
                            Tag::app_id(ApplicationId(100 + i)),
                        ]),
                        NodeGroupId::rack(),
                    ),
                ],
            )
        })
        .collect()
}

fn main() {
    let registry = MetricsRegistry::new();

    let algorithms = [
        LraAlgorithm::NodeCandidates,
        LraAlgorithm::TagPopularity,
        LraAlgorithm::Serial,
        LraAlgorithm::JKube,
        LraAlgorithm::Yarn,
    ];
    for &nodes in &[100usize, 500] {
        let cluster = ClusterState::homogeneous(nodes, Resources::new(16 * 1024, 16), 10);
        let reqs = workload();
        for &alg in &algorithms {
            let scheduler = LraScheduler::new(alg);
            bench(
                &registry,
                &format!("lra_placement/{}/{nodes}", alg.name()),
                2,
                10,
                || scheduler.place(&cluster, &reqs, &[]),
            );
        }
    }

    for &nodes in &[100usize, 500] {
        let cluster = ClusterState::homogeneous(nodes, Resources::new(16 * 1024, 16), 10);
        let reqs = workload();
        let scheduler = LraScheduler::new(LraAlgorithm::Ilp);
        bench(&registry, &format!("ilp_placement/{nodes}"), 1, 10, || {
            scheduler.place(&cluster, &reqs, &[])
        });
    }

    // Heartbeats consume pending requests, so state is rebuilt each
    // iteration; the measurement includes that setup.
    bench(&registry, "task_heartbeat_allocation", 2, 20, || {
        let mut cluster = ClusterState::homogeneous(100, Resources::new(16 * 1024, 64), 10);
        let mut ts = TaskScheduler::single_queue();
        ts.submit(
            TaskJobRequest::new(ApplicationId(1), Resources::new(512, 1), 32),
            0,
        )
        .unwrap();
        ts.on_heartbeat(&mut cluster, NodeId(0), 1)
    });
}
