//! Criterion benchmarks of LRA placement latency per algorithm and
//! cluster size — the measured counterpart of Fig. 11a — plus the task
//! scheduler's per-heartbeat allocation cost (requirement R4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, NodeId, Resources, Tag};
use medea_constraints::PlacementConstraint;
use medea_core::{
    LraAlgorithm, LraRequest, LraScheduler, TaskJobRequest, TaskScheduler,
};

fn workload() -> Vec<LraRequest> {
    (0..2u64)
        .map(|i| {
            LraRequest::uniform(
                ApplicationId(100 + i),
                10,
                Resources::new(2048, 1),
                vec![Tag::new("w")],
                vec![
                    PlacementConstraint::cardinality("w", "w", 0, 1, NodeGroupId::node()),
                    PlacementConstraint::affinity(
                        medea_constraints::TagExpr::and([
                            Tag::new("w"),
                            Tag::app_id(ApplicationId(100 + i)),
                        ]),
                        medea_constraints::TagExpr::and([
                            Tag::new("w"),
                            Tag::app_id(ApplicationId(100 + i)),
                        ]),
                        NodeGroupId::rack(),
                    ),
                ],
            )
        })
        .collect()
}

fn bench_lra_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("lra_placement_latency");
    group.sample_size(10);
    let algorithms = [
        LraAlgorithm::NodeCandidates,
        LraAlgorithm::TagPopularity,
        LraAlgorithm::Serial,
        LraAlgorithm::JKube,
        LraAlgorithm::Yarn,
    ];
    for &nodes in &[100usize, 500] {
        let cluster = ClusterState::homogeneous(nodes, Resources::new(16 * 1024, 16), 10);
        let reqs = workload();
        for &alg in &algorithms {
            group.bench_with_input(
                BenchmarkId::new(alg.name(), nodes),
                &(&cluster, &reqs),
                |b, (cluster, reqs)| {
                    let scheduler = LraScheduler::new(alg);
                    b.iter(|| scheduler.place(cluster, reqs, &[]));
                },
            );
        }
    }
    group.finish();
}

fn bench_ilp_placement(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_placement_latency");
    group.sample_size(10);
    for &nodes in &[100usize, 500] {
        let cluster = ClusterState::homogeneous(nodes, Resources::new(16 * 1024, 16), 10);
        let reqs = workload();
        group.bench_with_input(
            BenchmarkId::from_parameter(nodes),
            &(&cluster, &reqs),
            |b, (cluster, reqs)| {
                let scheduler = LraScheduler::new(LraAlgorithm::Ilp);
                b.iter(|| scheduler.place(cluster, reqs, &[]));
            },
        );
    }
    group.finish();
}

fn bench_task_heartbeat(c: &mut Criterion) {
    c.bench_function("task_heartbeat_allocation", |b| {
        b.iter_batched(
            || {
                let cluster = ClusterState::homogeneous(100, Resources::new(16 * 1024, 64), 10);
                let mut ts = TaskScheduler::single_queue();
                ts.submit(
                    TaskJobRequest::new(ApplicationId(1), Resources::new(512, 1), 32),
                    0,
                )
                .unwrap();
                (cluster, ts)
            },
            |(mut cluster, mut ts)| ts.on_heartbeat(&mut cluster, NodeId(0), 1),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_lra_placement,
    bench_ilp_placement,
    bench_task_heartbeat
);
criterion_main!(benches);
