//! Criterion microbenchmarks of the MILP solver on scheduler-shaped
//! models: LP relaxations and full branch-and-bound solves of placement
//! problems like those Medea's LRA scheduler emits (supports Fig. 11a's
//! latency claims at the solver level).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use medea_solver::{Cmp, Milp, Problem, Simplex};

/// Builds an assignment-like placement model: `containers` binaries per
/// `nodes` candidates with capacity rows and an anti-affinity-style cap.
fn placement_model(containers: usize, nodes: usize) -> Problem {
    let mut p = Problem::maximize();
    let x: Vec<Vec<_>> = (0..containers)
        .map(|i| {
            (0..nodes)
                .map(|n| p.add_binary(0.0, format!("x{i}_{n}")))
                .collect::<Vec<_>>()
        })
        .collect();
    let s = p.add_binary(1.0, "s");
    // Each container at most once; all-or-nothing.
    let mut all = Vec::new();
    for row in &x {
        p.add_constraint(row.iter().map(|&v| (v, 1.0)), Cmp::Le, 1.0);
        all.extend(row.iter().map(|&v| (v, 1.0)));
    }
    all.push((s, -(containers as f64)));
    p.add_constraint(all, Cmp::Eq, 0.0);
    // Capacity: at most 2 containers per node.
    for n in 0..nodes {
        p.add_constraint((0..containers).map(|i| (x[i][n], 1.0)), Cmp::Le, 2.0);
    }
    // Symmetry breaking like the scheduler's.
    for w in x.windows(2) {
        let mut terms = Vec::new();
        for n in 0..nodes {
            terms.push((w[0][n], (n + 1) as f64));
            terms.push((w[1][n], -((n + 1) as f64)));
        }
        p.add_constraint(terms, Cmp::Le, 0.0);
    }
    p
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_relaxation");
    for &(containers, nodes) in &[(10usize, 16usize), (20, 32), (26, 48)] {
        let p = placement_model(containers, nodes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{containers}x{nodes}")),
            &p,
            |b, p| b.iter(|| Simplex::new(p).solve()),
        );
    }
    group.finish();
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_exact");
    group.sample_size(10);
    for &(containers, nodes) in &[(8usize, 12usize), (12, 16)] {
        let p = placement_model(containers, nodes);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{containers}x{nodes}")),
            &p,
            |b, p| b.iter(|| Milp::new(p).solve().unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_lp, bench_milp);
criterion_main!(benches);
