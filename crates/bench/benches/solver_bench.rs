//! Microbenchmarks of the MILP solver on scheduler-shaped models: LP
//! relaxations and full branch-and-bound solves of placement problems
//! like those Medea's LRA scheduler emits (supports Fig. 11a's latency
//! claims at the solver level).
//!
//! `harness = false`: the workspace builds fully offline with zero
//! external crates, so this uses the `medea_bench::bench` timing helper
//! instead of criterion. Run with
//! `cargo bench -p medea-bench --bench solver_bench`.

use medea_bench::{bench, placement_model};
use medea_obs::MetricsRegistry;
use medea_solver::{Milp, Simplex};

fn main() {
    let registry = MetricsRegistry::new();

    for &(containers, nodes) in &[(10usize, 16usize), (20, 32), (26, 48)] {
        let p = placement_model(containers, nodes);
        bench(
            &registry,
            &format!("lp_relaxation/{containers}x{nodes}"),
            3,
            30,
            || Simplex::new(&p).solve(),
        );
    }

    for &(containers, nodes) in &[(8usize, 12usize), (12, 16)] {
        let p = placement_model(containers, nodes);
        bench(
            &registry,
            &format!("milp_exact/{containers}x{nodes}"),
            1,
            10,
            || Milp::new(&p).solve().unwrap(),
        );
    }
}
