//! Shared solver model builders used by both the `benches/` timing
//! targets and the `solver_bench` trajectory binary, so before/after
//! comparisons always measure identical instances.

use medea_solver::{Cmp, Problem};

/// Builds an assignment-like placement model: `containers` binaries per
/// `nodes` candidates with capacity rows and an anti-affinity-style cap —
/// the shape the LRA scheduler emits for a batch placement (the solver
/// side of the paper's Fig. 6/Fig. 9 workloads).
pub fn placement_model(containers: usize, nodes: usize) -> Problem {
    let mut p = Problem::maximize();
    let x: Vec<Vec<_>> = (0..containers)
        .map(|i| {
            (0..nodes)
                .map(|n| p.add_binary(0.0, format!("x{i}_{n}")))
                .collect::<Vec<_>>()
        })
        .collect();
    let s = p.add_binary(1.0, "s");
    // Each container at most once; all-or-nothing.
    let mut all = Vec::new();
    for row in &x {
        p.add_constraint(row.iter().map(|&v| (v, 1.0)), Cmp::Le, 1.0);
        all.extend(row.iter().map(|&v| (v, 1.0)));
    }
    all.push((s, -(containers as f64)));
    p.add_constraint(all, Cmp::Eq, 0.0);
    // Capacity: at most 2 containers per node (`n` walks the transposed
    // node dimension of `x`, hence the index loop).
    #[allow(clippy::needless_range_loop)]
    for n in 0..nodes {
        p.add_constraint(x.iter().map(|row| (row[n], 1.0)), Cmp::Le, 2.0);
    }
    // Symmetry breaking like the scheduler's.
    for w in x.windows(2) {
        let mut terms = Vec::new();
        for (n, (&va, &vb)) in w[0].iter().zip(w[1].iter()).enumerate() {
            terms.push((va, (n + 1) as f64));
            terms.push((vb, -((n + 1) as f64)));
        }
        p.add_constraint(terms, Cmp::Le, 0.0);
    }
    p
}
