//! Shared scenario for the placement-pipeline experiments (Fig. 11b/11c
//! and `pipeline_bench`): a Google-trace-like task stream on the
//! heartbeat path with a rolling LRA churn on the solver path, run under
//! either placement pipeline ([`PipelineMode::Sync`] blocks the simulated
//! resource manager for the whole solve; [`PipelineMode::Async`] lets the
//! solve elapse on the sim clock and commits against live state).
//!
//! Everything is measured on the simulated clock, so runs are
//! deterministic per seed — the bench JSON records reproducible numbers,
//! not wall-clock noise.

use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, Resources, Tag};
use medea_constraints::{Cardinality, PlacementConstraint};
use medea_core::{LraAlgorithm, LraRequest};
use medea_sim::{GoogleTraceLike, PipelineMode, SimDriver, SimEvent, SolveLatencyModel};

/// Parameters of one pipeline run: cluster shape, task trace, and the
/// rolling LRA load that keeps a solve in flight on most intervals.
#[derive(Debug, Clone)]
pub struct PipelineScenario {
    /// Cluster size.
    pub nodes: usize,
    /// Per-node resources.
    pub node_resources: Resources,
    /// Rack count.
    pub racks: usize,
    /// LRA placement algorithm.
    pub algorithm: LraAlgorithm,
    /// Task jobs drawn from the Google-trace-like generator.
    pub jobs: usize,
    /// Seed for the task trace.
    pub trace_seed: u64,
    /// Number of LRA submissions, one per scheduling interval.
    pub lra_waves: u64,
    /// Containers per LRA.
    pub lra_containers: usize,
    /// Memory per LRA container (MB).
    pub lra_memory_mb: u64,
    /// Ticks between an LRA's submission and its completion (the churn
    /// that keeps the solver busy across the whole horizon).
    pub lra_lifetime: u64,
    /// LRA scheduling interval in ticks (paper: 10 s).
    pub interval: u64,
    /// Safety limit for [`SimDriver::run_to_completion`]; the run must
    /// drain before it.
    pub horizon: u64,
}

impl PipelineScenario {
    /// The Fig. 11c-scale scenario: a 100-node cluster with ample
    /// headroom, ~600 task jobs at 200x speedup, and an LRA wave per
    /// interval (~10% extra scheduling load). Capacity is never tight,
    /// so the question the run answers is purely about latency: does
    /// the LRA solve perturb task scheduling?
    pub fn latency_comparison() -> Self {
        PipelineScenario {
            nodes: 100,
            node_resources: Resources::new(32 * 1024, 32),
            racks: 10,
            algorithm: LraAlgorithm::Ilp,
            jobs: 600,
            trace_seed: 42,
            lra_waves: 30,
            lra_containers: 10,
            lra_memory_mb: 2048,
            lra_lifetime: 60_000,
            interval: 10_000,
            horizon: 600_000,
        }
    }

    /// A core-tight variant of the same cluster: memory stays ample (the
    /// task path never saturates, so its latency signal stays clean) but
    /// per-node CPU slots are scarce enough that a task burst landing
    /// mid-solve can exhaust the cores a proposal counted on. The longer
    /// a proposal sits in flight, the more commit-time conflicts. Used
    /// for the conflict-rate-vs-solve-deadline sweep (Fig. 11b).
    pub fn contention() -> Self {
        PipelineScenario {
            nodes: 100,
            node_resources: Resources::new(32 * 1024, 12),
            racks: 10,
            algorithm: LraAlgorithm::NodeCandidates,
            jobs: 600,
            trace_seed: 7,
            lra_waves: 30,
            lra_containers: 10,
            lra_memory_mb: 2048,
            lra_lifetime: 60_000,
            interval: 10_000,
            horizon: 600_000,
        }
    }

    /// Scales a scenario down for CI smoke runs (fewer jobs and waves,
    /// same shape).
    pub fn smoke(mut self) -> Self {
        self.jobs /= 3;
        self.lra_waves /= 2;
        self.horizon = 400_000;
        self
    }
}

/// Measurements of one pipeline run, all on the simulated clock.
#[derive(Debug, Clone)]
pub struct PipelineRun {
    /// Scheduling latency of every allocated task container, in ticks.
    pub task_latencies: Vec<f64>,
    /// Scheduling latency of every deployed LRA, in ticks.
    pub lra_latencies: Vec<f64>,
    /// Deployed LRA count.
    pub deployments: usize,
    /// Commit-time conflicts (stale placements invalidated and
    /// resubmitted); structurally zero in [`PipelineMode::Sync`].
    pub commit_conflicts: usize,
    /// LRAs that ended unplaced.
    pub unplaced: usize,
}

/// Runs the scenario under the given pipeline and solve-latency model;
/// `lra_load` off gives the no-LRA baseline (plain YARN). Panics if the
/// run fails to drain before the scenario horizon — a truncated run
/// would silently bias every latency percentile.
pub fn run_pipeline(
    scenario: &PipelineScenario,
    lra_load: bool,
    mode: PipelineMode,
    latency: SolveLatencyModel,
) -> PipelineRun {
    let cluster =
        ClusterState::homogeneous(scenario.nodes, scenario.node_resources, scenario.racks);
    let mut sim = SimDriver::new(cluster, scenario.algorithm, scenario.interval)
        .with_pipeline(mode)
        .with_solve_latency(latency);
    sim.start_heartbeats();

    let mut trace = GoogleTraceLike::new(scenario.trace_seed);
    for (t, job, duration) in trace.arrivals(scenario.jobs) {
        sim.schedule(t, SimEvent::SubmitTasks { job, duration });
    }

    if lra_load {
        for i in 0..scenario.lra_waves {
            let app = ApplicationId(100 + i);
            let t = i * scenario.interval + scenario.interval / 2;
            let req = LraRequest::uniform(
                app,
                scenario.lra_containers,
                Resources::new(scenario.lra_memory_mb, 1),
                vec![Tag::new("svc")],
                vec![PlacementConstraint::new(
                    "svc",
                    "svc",
                    Cardinality::at_most(3),
                    NodeGroupId::node(),
                )],
            );
            sim.schedule(t, SimEvent::SubmitLra(req));
            sim.schedule(t + scenario.lra_lifetime, SimEvent::LraComplete(app));
        }
    }

    let drained = sim.run_to_completion(scenario.horizon);
    assert!(
        drained,
        "pipeline scenario truncated at {} ({mode:?}, lra_load={lra_load})",
        scenario.horizon
    );

    PipelineRun {
        task_latencies: sim
            .metrics()
            .task_latencies
            .iter()
            .map(|&l| l as f64)
            .collect(),
        lra_latencies: sim
            .metrics()
            .lra_latencies
            .iter()
            .map(|&l| l as f64)
            .collect(),
        deployments: sim.metrics().deployments.len(),
        commit_conflicts: sim.medea().stats().commit_conflicts,
        unplaced: sim.medea().stats().lras_unplaced,
    }
}

/// The solve-latency model both figure bins charge per batch: a few
/// simulated seconds of fixed cost plus per-LRA and per-container terms,
/// calibrated so a typical wave occupies roughly half the 10 s interval
/// — long enough that a monolithic tick visibly stalls heartbeats, short
/// enough that the async pipeline always commits before the next tick.
pub fn paper_solve_model() -> SolveLatencyModel {
    SolveLatencyModel {
        base_ticks: 4_000,
        per_lra_ticks: 400,
        per_container_ticks: 60,
    }
}
