//! Minimal timing harness for the `harness = false` benchmark targets.
//!
//! The workspace builds fully offline with zero external crates, so the
//! benches cannot use criterion; this module provides the small subset
//! they need — warmup, repeated timed runs, and a median/mean report —
//! while recording every sample in a `medea-obs` histogram so the bench
//! output doubles as an instrumentation smoke test.

use std::sync::Arc;
use std::time::Instant;

use medea_obs::MetricsRegistry;

/// Times `f` for `iters` iterations after `warmup` untimed runs and
/// prints a one-line summary; per-iteration latencies are also recorded
/// into `registry` under `bench.<name>_us`.
pub fn bench<F, R>(
    registry: &Arc<MetricsRegistry>,
    name: &str,
    warmup: usize,
    iters: usize,
    mut f: F,
) where
    F: FnMut() -> R,
{
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let hist = registry.histogram(&format!("bench.{name}_us"));
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(f());
        let us = t.elapsed().as_micros() as u64;
        hist.record(us);
        samples.push(us);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<u64>() / samples.len() as u64;
    let max = *samples.last().unwrap();
    println!(
        "{name:<44} median {median:>8} us   mean {mean:>8} us   max {max:>8} us   ({iters} iters)"
    );
}
