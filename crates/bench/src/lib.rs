//! Experiment harness for the Medea reproduction: shared scaffolding used
//! by the per-figure binaries in `src/bin/` and the criterion benches.
//!
//! Run any experiment with
//! `cargo run --release -p medea-bench --bin <target>`; see DESIGN.md §8
//! for the experiment index (every table and figure of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod output;
mod scenarios;

pub use output::{f2, f3, pct, Report};
pub use scenarios::{deploy_lras, hbase_count_for_utilization, lra_mix, DeployResult};
