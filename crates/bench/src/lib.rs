//! Experiment harness for the Medea reproduction: shared scaffolding used
//! by the per-figure binaries in `src/bin/` and the `benches/` timing
//! targets.
//!
//! Run any experiment with
//! `cargo run --release -p medea-bench --bin <target>`; see DESIGN.md §8
//! for the experiment index (every table and figure of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod models;
mod output;
mod pipeline;
mod scenarios;
mod timing;

pub use models::placement_model;
pub use output::{f2, f3, pct, Report};
pub use pipeline::{paper_solve_model, run_pipeline, PipelineRun, PipelineScenario};
pub use scenarios::{
    deploy_lras, deploy_lras_with_metrics, hbase_count_for_utilization, lra_mix, DeployResult,
};
pub use timing::bench;
