//! Experiment output: formatted tables on stdout and CSV files under
//! `target/experiments/`.

use std::fs;
use std::io::Write;
use std::path::PathBuf;

/// A simple experiment report: header row plus data rows, printed as an
/// aligned table and written as CSV.
#[derive(Debug, Clone)]
pub struct Report {
    /// Experiment id (e.g. `fig9a`); names the CSV file.
    pub id: String,
    /// Human-readable title printed above the table.
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Report {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>, columns: &[&str]) -> Self {
        Report {
            id: id.into(),
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: Vec<String>) {
        self.rows.push(row);
    }

    /// Appends a row of displayable values.
    pub fn push_display(&mut self, row: &[&dyn std::fmt::Display]) {
        self.rows.push(row.iter().map(|v| v.to_string()).collect());
    }

    /// Prints the aligned table to stdout.
    pub fn print(&self) {
        println!("\n== {} ({}) ==", self.title, self.id);
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let header: Vec<String> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect();
        println!("{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(8)))
                .collect();
            println!("{}", line.join("  "));
        }
    }

    /// Writes the CSV under `target/experiments/<id>.csv`; returns the
    /// path. Errors are reported, not fatal (experiments still print).
    pub fn write_csv(&self) -> Option<PathBuf> {
        let dir = PathBuf::from("target/experiments");
        if let Err(e) = fs::create_dir_all(&dir) {
            eprintln!("warning: cannot create {}: {e}", dir.display());
            return None;
        }
        let path = dir.join(format!("{}.csv", self.id));
        let mut body = self.columns.join(",") + "\n";
        for row in &self.rows {
            body.push_str(&row.join(","));
            body.push('\n');
        }
        match fs::File::create(&path).and_then(|mut f| f.write_all(body.as_bytes())) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Prints the table and writes the CSV.
    pub fn finish(&self) {
        self.print();
        if let Some(p) = self.write_csv() {
            println!("(csv: {})", p.display());
        }
    }
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a fraction as a percentage with 1 decimal.
pub fn pct(v: f64) -> String {
    format!("{:.1}", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrip() {
        let mut r = Report::new("test_report", "Test", &["x", "y"]);
        r.push(vec!["1".into(), "2".into()]);
        r.push_display(&[&3, &4.5]);
        assert_eq!(r.rows.len(), 2);
        let path = r.write_csv().expect("csv written");
        let body = std::fs::read_to_string(path).unwrap();
        assert_eq!(body, "x,y\n1,2\n3,4.5\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(pct(0.256), "25.6");
    }
}
