//! Figure 2d: TensorFlow runtime (1M-iteration workflow, 32 workers) as
//! the maximum workers per node varies from 1 to 32, on low- (5%) and
//! high- (70%) utilized clusters (§2.2).

use medea_bench::{f2, Report};
use medea_sim::{PerfModel, PlacementProfile};

fn main() {
    let model = PerfModel::new();
    let base_min = 95.0;
    let sweeps = [1u32, 4, 8, 16, 32];

    let mut report = Report::new(
        "fig2d",
        "TensorFlow runtime (min) vs max workers per node (32 workers)",
        &["max_workers_per_node", "low_utilized", "high_utilized"],
    );
    let mut low_curve = Vec::new();
    let mut high_curve = Vec::new();
    for &c in &sweeps {
        // Average several seeded runs so measurement noise cannot flip
        // marginal optima.
        let avg = |ext: f64, seed0: u64| -> f64 {
            (0..5)
                .map(|k| {
                    model.runtime(
                        base_min,
                        &PlacementProfile::packed(32, c, 1, ext),
                        seed0 + 1000 * k + c as u64,
                    )
                })
                .sum::<f64>()
                / 5.0
        };
        let low = avg(0.05, 0);
        let high = avg(0.70, 200);
        low_curve.push((c, low));
        high_curve.push((c, high));
        report.push(vec![c.to_string(), f2(low), f2(high)]);
    }
    report.finish();

    let argmin = |curve: &[(u32, f64)]| curve.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    let best_high = argmin(&high_curve);
    let best_low = argmin(&low_curve);
    let at = |curve: &[(u32, f64)], c: u32| curve.iter().find(|&&(x, _)| x == c).unwrap().1;
    println!(
        "\nPaper claims (high-utilized): collocating up to 16 workers reduces \
         runtime vs affinity (32/node) and vs anti-affinity (1/node); the \
         optimal cardinality is higher under load. Measured: optimum(high) = \
         {best_high} > optimum(low) = {best_low}; 16/node vs 32/node: -{:.0}%; \
         16/node vs 1/node: -{:.0}%.",
        (1.0 - at(&high_curve, 16) / at(&high_curve, 32)) * 100.0,
        (1.0 - at(&high_curve, 16) / at(&high_curve, 1)) * 100.0,
    );
}
