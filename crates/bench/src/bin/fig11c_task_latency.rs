//! Figure 11c: task scheduling latency on a Google-trace-like workload
//! sped up 200x, comparing Medea (with an extra ~10% LRA load) against
//! plain YARN (§7.5).
//!
//! Both runs use the same heartbeat-driven task scheduler (Medea reuses
//! YARN's); the question is whether the LRA scheduler's presence perturbs
//! task latency. The simulation drives the full two-scheduler pipeline.

use medea_bench::{f2, Report};
use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
use medea_core::LraAlgorithm;
use medea_sim::{box_stats, GoogleTraceLike, SimDriver, SimEvent};

fn run(with_lras: bool) -> Vec<f64> {
    let cluster = ClusterState::homogeneous(100, Resources::new(32 * 1024, 32), 10);
    let mut sim = SimDriver::new(cluster, LraAlgorithm::Ilp, 10_000);
    sim.start_heartbeats();

    // Google-like trace, 200x speedup, ~600 jobs.
    let mut trace = GoogleTraceLike::new(42);
    for (t, job, duration) in trace.arrivals(600) {
        sim.schedule(t, SimEvent::SubmitTasks { job, duration });
    }

    if with_lras {
        // An extra ~10% scheduling load from LRAs (paper setup).
        for i in 0..12u64 {
            let req = medea_core::LraRequest::uniform(
                ApplicationId(100 + i),
                10,
                Resources::new(2048, 1),
                vec![Tag::new("svc")],
                vec![medea_constraints::PlacementConstraint::new(
                    "svc",
                    "svc",
                    medea_constraints::Cardinality::at_most(3),
                    medea_cluster::NodeGroupId::node(),
                )],
            );
            sim.schedule(i * 15_000, SimEvent::SubmitLra(req));
        }
    }

    sim.run_until(400_000);
    sim.metrics()
        .task_latencies
        .iter()
        .map(|&l| l as f64)
        .collect()
}

fn main() {
    let medea = run(true);
    let yarn = run(false);

    let mut report = Report::new(
        "fig11c",
        "Task scheduling latency (ms) on Google-like trace at 200x",
        &["scheduler", "tasks", "p5", "p25", "p50", "p75", "p99"],
    );
    for (name, lat) in [("MEDEA (short tasks)", &medea), ("YARN", &yarn)] {
        let b = box_stats(lat);
        report.push(vec![
            name.to_string(),
            lat.len().to_string(),
            f2(b.p5),
            f2(b.p25),
            f2(b.p50),
            f2(b.p75),
            f2(b.p99),
        ]);
    }
    report.finish();

    let bm = box_stats(&medea);
    let by = box_stats(&yarn);
    println!(
        "\nPaper claim: despite the extra LRA load, Medea's task scheduling \
         latency matches YARN's. Measured medians: MEDEA {:.0} ms vs YARN \
         {:.0} ms ({:+.0}%).",
        bm.p50,
        by.p50,
        (bm.p50 / by.p50.max(1e-9) - 1.0) * 100.0
    );
}
