//! Figure 11c: task scheduling latency on a Google-trace-like workload
//! sped up 200x, comparing Medea (with an extra ~10% LRA load) against
//! plain YARN (§7.5).
//!
//! Both runs use the same heartbeat-driven task scheduler (Medea reuses
//! YARN's); the question is whether the LRA scheduler's presence perturbs
//! task latency. Since the pipeline refactor the comparison has three
//! arms: the no-LRA baseline (YARN), Medea's asynchronous
//! propose/validate/commit pipeline, and the synchronous compatibility
//! mode where the solve blocks the resource manager — the monolithic
//! design the paper argues against. The solve latency elapses on the
//! simulated clock ([`medea_bench::paper_solve_model`]), so the run is
//! deterministic and asserts that it drains before the horizon.

use medea_bench::{f2, paper_solve_model, run_pipeline, PipelineScenario, Report};
use medea_sim::{box_stats, PipelineMode};

fn main() {
    let scenario = PipelineScenario::latency_comparison();
    let solve = paper_solve_model();
    let yarn = run_pipeline(&scenario, false, PipelineMode::Async, solve);
    let medea = run_pipeline(&scenario, true, PipelineMode::Async, solve);
    let sync = run_pipeline(&scenario, true, PipelineMode::Sync, solve);

    let mut report = Report::new(
        "fig11c",
        "Task scheduling latency (ms) on Google-like trace at 200x",
        &["scheduler", "tasks", "p5", "p25", "p50", "p75", "p99"],
    );
    for (name, run) in [
        ("MEDEA async (short tasks)", &medea),
        ("MEDEA sync tick", &sync),
        ("YARN", &yarn),
    ] {
        let b = box_stats(&run.task_latencies);
        report.push(vec![
            name.to_string(),
            run.task_latencies.len().to_string(),
            f2(b.p5),
            f2(b.p25),
            f2(b.p50),
            f2(b.p75),
            f2(b.p99),
        ]);
    }
    report.finish();

    let bm = box_stats(&medea.task_latencies);
    let bs = box_stats(&sync.task_latencies);
    let by = box_stats(&yarn.task_latencies);
    println!(
        "\nPaper claim: despite the extra LRA load, Medea's task scheduling \
         latency matches YARN's because the solve runs off the critical \
         path. Measured medians: MEDEA async {:.0} ms vs YARN {:.0} ms \
         ({:+.0}%); the synchronous tick jumps to {:.0} ms ({:+.0}%) — the \
         heartbeats due during each solve wait for it.",
        bm.p50,
        by.p50,
        (bm.p50 / by.p50.max(1e-9) - 1.0) * 100.0,
        bs.p50,
        (bs.p50 / by.p50.max(1e-9) - 1.0) * 100.0,
    );
    println!(
        "Conflicts resolved by resubmission in the async run: {} \
         (of {} deployments).",
        medea.commit_conflicts, medea.deployments
    );
}
