//! Figure 7: application performance (runtime box plots) of TensorFlow,
//! HBase insert, HBase Workload A, and GridMix under Medea, J-Kube,
//! J-Kube++, and YARN (§7.2).
//!
//! A TF+HBase fleet is deployed with each scheduler on a GridMix-loaded
//! cluster (scaled from the paper's 400 nodes / 45 TF + 50 HBase to keep
//! the CPLEX-free ILP runs short; see EXPERIMENTS.md); per-instance
//! runtimes come from the performance model applied to the placements the
//! schedulers actually produced.

use std::sync::Arc;

use medea_bench::{deploy_lras_with_metrics, f2, Report};
use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
use medea_core::{LraAlgorithm, LraRequest};
use medea_obs::MetricsRegistry;
use medea_sim::apps;
use medea_sim::{box_stats, fill_with_batch, BoxStats, PerfModel, PlacementProfile};

const N_TF: usize = 18;
const N_HBASE: usize = 22;

fn fleet() -> Vec<LraRequest> {
    let mut reqs = Vec::new();
    for i in 0..N_TF {
        reqs.push(apps::tensorflow_instance(ApplicationId(1000 + i as u64)));
    }
    for i in 0..N_HBASE {
        reqs.push(apps::hbase_instance(ApplicationId(2000 + i as u64), 10));
    }
    // Interleave TF and HBase as mixed arrivals.
    let mut mixed = Vec::new();
    let (mut a, mut b) = (0, N_TF);
    while a < N_TF || b < N_TF + N_HBASE {
        if a < N_TF {
            mixed.push(reqs[a].clone());
            a += 1;
        }
        if b < N_TF + N_HBASE {
            mixed.push(reqs[b].clone());
            b += 1;
        }
    }
    mixed
}

struct SchedulerRuntimes {
    tf: Vec<f64>,
    hbase_insert: Vec<f64>,
    hbase_a: Vec<f64>,
    gridmix: Vec<f64>,
    unplaced: usize,
}

fn run(alg: LraAlgorithm, seed: u64, registry: &Arc<MetricsRegistry>) -> SchedulerRuntimes {
    let mut cluster = ClusterState::homogeneous(150, Resources::new(16 * 1024, 16), 10);
    // GridMix jobs account for 50% of the cluster's memory (§7.2).
    fill_with_batch(&mut cluster, 0.5, seed);
    let reqs = fleet();
    let result = deploy_lras_with_metrics(cluster, alg, &reqs, 2, registry);

    let model = PerfModel::new();
    let hb_model = PerfModel::io_bound();
    let tf_tag = Tag::new("tf_w");
    let hb_tag = Tag::new("hb_rs");
    let mut out = SchedulerRuntimes {
        tf: Vec::new(),
        hbase_insert: Vec::new(),
        hbase_a: Vec::new(),
        gridmix: Vec::new(),
        unplaced: result.unplaced,
    };
    for &app in &result.deployed {
        if app.0 >= 2000 {
            let prof = PlacementProfile::of_app(&result.state, app, &hb_tag);
            out.hbase_insert
                .push(hb_model.runtime(180.0, &prof, seed * 31 + app.0));
            out.hbase_a
                .push(hb_model.runtime(150.0, &prof, seed * 37 + app.0));
        } else {
            let prof = PlacementProfile::of_app(&result.state, app, &tf_tag);
            out.tf.push(model.runtime(280.0, &prof, seed * 41 + app.0));
        }
    }
    // GridMix runtimes are unaffected by the LRA scheduler (the task path
    // is identical); only placement noise differs.
    for i in 0..40u64 {
        out.gridmix
            .push(30.0 * (1.0 + 0.05 * ((seed * 7 + i) % 10) as f64 / 10.0));
    }
    out
}

fn push_box(report: &mut Report, alg: &str, b: &BoxStats) {
    report.push(vec![
        alg.to_string(),
        f2(b.p5),
        f2(b.p25),
        f2(b.p50),
        f2(b.p75),
        f2(b.p99),
    ]);
}

fn main() {
    let algorithms = [
        ("MEDEA", LraAlgorithm::Ilp),
        ("J-KUBE", LraAlgorithm::JKube),
        ("J-KUBE++", LraAlgorithm::JKubePlusPlus),
        ("YARN", LraAlgorithm::Yarn),
    ];
    let mut tf_report = Report::new(
        "fig7a",
        "TensorFlow runtime box stats (min)",
        &["scheduler", "p5", "p25", "p50", "p75", "p99"],
    );
    let mut ins_report = Report::new(
        "fig7b",
        "HBase insert runtime box stats (sec)",
        &["scheduler", "p5", "p25", "p50", "p75", "p99"],
    );
    let mut wa_report = Report::new(
        "fig7c",
        "HBase workload A runtime box stats (sec)",
        &["scheduler", "p5", "p25", "p50", "p75", "p99"],
    );
    let mut gm_report = Report::new(
        "fig7d",
        "GridMix runtime box stats (sec)",
        &["scheduler", "p5", "p25", "p50", "p75", "p99"],
    );

    let registry = MetricsRegistry::new();
    let mut medians = Vec::new();
    for (name, alg) in algorithms {
        let r = run(alg, 11, &registry);
        println!("{name}: deployed with {} unplaced", r.unplaced);
        let tf = box_stats(&r.tf);
        push_box(&mut tf_report, name, &tf);
        push_box(&mut ins_report, name, &box_stats(&r.hbase_insert));
        let wa = box_stats(&r.hbase_a);
        push_box(&mut wa_report, name, &wa);
        push_box(&mut gm_report, name, &box_stats(&r.gridmix));
        medians.push((name, tf.p50, wa.p50, box_stats(&r.gridmix).p50));
    }
    tf_report.finish();
    ins_report.finish();
    wa_report.finish();
    gm_report.finish();

    let get = |n: &str| medians.iter().find(|m| m.0 == n).unwrap();
    let (_, tf_m, wa_m, _) = *get("MEDEA");
    let (_, tf_j, wa_j, _) = *get("J-KUBE");
    let (_, tf_y, wa_y, _) = *get("YARN");
    println!(
        "\nPaper claims: median runtime is ~32% longer on J-Kube for TF \
         (measured: {:+.0}%) and ~23% longer for HBase Workload A (measured: \
         {:+.0}%); vs YARN, Medea's median is up to 2.1x shorter (measured: \
         TF {:.2}x, WA {:.2}x); GridMix runtimes are similar across all \
         schedulers.",
        (tf_j / tf_m - 1.0) * 100.0,
        (wa_j / wa_m - 1.0) * 100.0,
        tf_y / tf_m,
        wa_y / wa_m,
    );

    let snap = registry.snapshot();
    if let Some(h) = snap.histogram("core.ilp_solve_us") {
        println!(
            "\nILP solver effort (MEDEA runs): {} solves, p50 {:.0} us, \
             p99 {:.0} us, max {} us; {} branch-and-bound nodes explored.",
            h.count,
            h.p50,
            h.p99,
            h.max,
            snap.counter("solver.bnb_nodes_explored_total").unwrap_or(0),
        );
    }
}
