//! `recovery_bench`: crash-recovery cost at 500–20000 nodes, emitted as
//! machine-readable JSON (`BENCH_recovery.json`).
//!
//! Each scale attaches a file-backed journal (under
//! `target/recovery_bench/`), fills the cluster with journaled task
//! allocations — a checkpoint installed halfway, so the second half of
//! the fill is the replay tail — and then measures the work-preserving
//! restart path end to end:
//!
//! - `restore_us` / `replayed_ops`: wall-clock cost of
//!   [`MedeaScheduler::restart`]'s journal restore (checkpoint load +
//!   tail replay + index/γ rebuild), with faithful node reports (zero
//!   divergence). This is the RM-failover blackout contribution of
//!   state reconstruction.
//! - `tail_restore_us`: the same restore after an explicit checkpoint,
//!   i.e. the floor where the tail is empty — the difference is what
//!   the checkpoint cadence buys.
//! - divergence repair at ~1% container loss: a second restart whose
//!   node reports drop a sampled 1% of containers; the row records how
//!   many phantoms anti-entropy released and verifies that every one is
//!   classified and the invariant audit stays clean.
//!
//! Usage: `cargo run --release -p medea-bench --bin recovery_bench`
//! (`--smoke` runs the 500-node scale only, for CI).

use std::fmt::Write as _;
use std::time::Instant;

use medea_cluster::{ApplicationId, ClusterState, NodeId, Resources};
use medea_core::{LraAlgorithm, MedeaScheduler, NodeReport, TaskJobRequest};
use medea_journal::{FileStorage, Wal};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// Task containers allocated per node during the fill (each one is a
/// journaled mutation, so this also sets the journal's record volume).
const CONTAINERS_PER_NODE: usize = 4;

struct ScaleResult {
    nodes: usize,
    containers: usize,
    wal_records: u64,
    wal_bytes: u64,
    restore_us: u64,
    replayed_ops: u64,
    tail_restore_us: u64,
    lossy_phantoms_released: usize,
    lossy_restore_us: u64,
    audit_clean: bool,
}

/// Ground-truth node reports straight from the scheduler's own state
/// (the zero-divergence baseline).
fn faithful_reports(m: &MedeaScheduler) -> Vec<NodeReport> {
    m.state()
        .node_ids()
        .map(|n| NodeReport {
            node: n,
            available: m.state().is_available(n),
            containers: m
                .state()
                .containers_on(n)
                .map(|c| c.to_vec())
                .unwrap_or_default(),
        })
        .collect()
}

/// Builds a journaled scheduler at the given scale and fills it with
/// `CONTAINERS_PER_NODE` task containers per node, checkpointing at the
/// halfway mark so the second half forms the replay tail.
fn build(nodes: usize) -> MedeaScheduler {
    let cluster =
        ClusterState::homogeneous(nodes, Resources::new(16 * 1024, 16), (nodes / 40).max(1));
    let mut m = MedeaScheduler::new(cluster, LraAlgorithm::NodeCandidates, 10);

    // The journal lives inside the workspace build directory; each scale
    // gets a fresh one so restores never see a stale log.
    let dir = format!("target/recovery_bench/{nodes}");
    let _ = std::fs::remove_dir_all(&dir);
    let storage = FileStorage::open(&dir).expect("journal dir under target/ is writable");
    m.attach_journal(Wal::new(storage), 0)
        .expect("initial checkpoint installs");

    let half = nodes / 2;
    for (i, batch) in [(0usize, half), (half, nodes)].iter().enumerate() {
        let (from, to) = *batch;
        for node in from..to {
            m.submit_tasks(
                TaskJobRequest::new(
                    ApplicationId(1 + node as u64),
                    Resources::new(1024, 1),
                    CONTAINERS_PER_NODE,
                ),
                i as u64,
            )
            .expect("task job submits");
            let allocs = m.heartbeat(NodeId(node as u32), i as u64);
            assert_eq!(allocs.len(), CONTAINERS_PER_NODE, "fill must allocate");
        }
        if i == 0 {
            m.checkpoint(1).expect("mid-fill checkpoint installs");
        }
    }
    m
}

fn bench_scale(nodes: usize) -> ScaleResult {
    let mut m = build(nodes);
    let containers = m.state().num_containers();
    let stats = m.journal_stats();
    let reports = faithful_reports(&m);

    // Zero-divergence restore: checkpoint + half-fill tail replay.
    let report = m.restart(10, &reports).expect("journaled restore succeeds");
    assert!(report.restored_from_journal);
    assert_eq!(report.phantom_containers_released, 0);
    let restore_us = report.restore_us;
    let replayed_ops = report.replayed_ops as u64;

    // Empty-tail floor: checkpoint right before restarting.
    m.checkpoint(11).expect("checkpoint installs");
    let report = m.restart(12, &reports).expect("restore succeeds");
    assert_eq!(report.replayed_ops, 0, "checkpoint truncates the tail");
    let tail_restore_us = report.restore_us;

    // Divergence repair: node reports drop ~1% of containers.
    let mut rng = StdRng::seed_from_u64(0x4EC07E4 + nodes as u64);
    let mut lossy = reports;
    let mut dropped = 0usize;
    for r in &mut lossy {
        r.containers.retain(|_| {
            let keep = rng.random_range(0..100u32) != 0;
            if !keep {
                dropped += 1;
            }
            keep
        });
    }
    let t = Instant::now();
    let report = m.restart(13, &lossy).expect("lossy restore succeeds");
    let lossy_restore_us = t.elapsed().as_micros() as u64;
    assert_eq!(
        report.phantom_containers_released, dropped,
        "anti-entropy releases exactly the divergence"
    );
    assert_eq!(
        report.lost_lra_containers + report.lost_task_containers,
        dropped,
        "every phantom is classified"
    );
    let audit_clean = report.audit_error.is_none() && m.audit().is_ok();

    ScaleResult {
        nodes,
        containers,
        wal_records: stats.records_appended,
        wal_bytes: stats.bytes_appended,
        restore_us,
        replayed_ops,
        tail_restore_us,
        lossy_phantoms_released: dropped,
        lossy_restore_us,
        audit_clean,
    }
}

fn write_json(mode: &str, results: &[ScaleResult]) -> std::io::Result<()> {
    let mut body = String::new();
    body.push_str("{\n");
    let _ = writeln!(body, "  \"bench\": \"recovery_bench\",");
    let _ = writeln!(body, "  \"mode\": \"{mode}\",");
    body.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str("    {");
        let _ = write!(
            body,
            "\"nodes\": {}, \"containers\": {}, \"wal_records\": {}, \
             \"wal_bytes\": {}, \"restore_us\": {}, \"replayed_ops\": {}, \
             \"tail_restore_us\": {}, \"lossy_phantoms_released\": {}, \
             \"lossy_restore_us\": {}, \"audit_clean\": {}",
            r.nodes,
            r.containers,
            r.wal_records,
            r.wal_bytes,
            r.restore_us,
            r.replayed_ops,
            r.tail_restore_us,
            r.lossy_phantoms_released,
            r.lossy_restore_us,
            r.audit_clean,
        );
        body.push('}');
        if i + 1 < results.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("  ]\n}\n");
    std::fs::write("BENCH_recovery.json", body)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let scales: &[usize] = if smoke { &[500] } else { &[500, 5000, 20000] };
    let mut results = Vec::new();
    for &nodes in scales {
        let r = bench_scale(nodes);
        assert!(r.audit_clean, "{nodes} nodes: post-repair audit must hold");
        eprintln!(
            "{} nodes: {} containers, {} wal records ({} bytes); \
             restore {} us ({} replayed ops), empty-tail floor {} us; \
             1% loss: {} phantoms repaired in {} us",
            r.nodes,
            r.containers,
            r.wal_records,
            r.wal_bytes,
            r.restore_us,
            r.replayed_ops,
            r.tail_restore_us,
            r.lossy_phantoms_released,
            r.lossy_restore_us,
        );
        results.push(r);
    }
    write_json(mode, &results).expect("BENCH_recovery.json writes");
}
