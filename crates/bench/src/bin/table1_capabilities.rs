//! Table 1: support for the LRA scheduling requirements R1–R4 across
//! existing schedulers and Medea, plus the capability rows derived from
//! the algorithms actually implemented in this reproduction.

use medea_bench::Report;
use medea_core::{implemented_capabilities, paper_table1, render_table, LraAlgorithm};

fn main() {
    println!("Paper Table 1 (literature assessment):\n");
    print!("{}", render_table(&paper_table1()));

    println!("\nImplemented algorithms (derived from code behaviour):\n");
    let rows: Vec<_> = LraAlgorithm::ALL
        .iter()
        .map(|&a| implemented_capabilities(a))
        .collect();
    print!("{}", render_table(&rows));

    // CSV output of the paper table.
    let mut report = Report::new(
        "table1",
        "Scheduler capability matrix (R1-R4)",
        &[
            "system",
            "affinity",
            "anti_affinity",
            "cardinality",
            "intra",
            "inter",
            "high_level",
            "global_objectives",
            "low_latency",
        ],
    );
    for r in paper_table1() {
        report.push(vec![
            r.system.to_string(),
            r.affinity.to_string(),
            r.anti_affinity.to_string(),
            r.cardinality.to_string(),
            r.intra.to_string(),
            r.inter.to_string(),
            r.high_level.to_string(),
            r.global_objectives.to_string(),
            r.low_latency.to_string(),
        ]);
    }
    report.write_csv();
}
