//! Figure 9: constraint violations (%) under four sweeps (§7.4):
//! (a) LRA cluster utilization 10–90%;
//! (b) task-based utilization 10–60% with LRAs at 10%;
//! (c) scheduling periodicity 1–6 (LRAs considered per cycle);
//! (d) inter-application constraint complexity 1–10.
//!
//! Cluster: simulated 100 nodes x <16 GB, 16 cores> in 10 racks (scaled
//! from the paper's 500 nodes; see EXPERIMENTS.md). HBase instances carry
//! the §7.1 constraints. Pass a subfigure letter (`a`..`d`) as the first
//! argument to run one sweep; default runs all four.

use medea_bench::{deploy_lras, pct, Report};
use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, Resources, Tag};
use medea_constraints::{Cardinality, PlacementConstraint, TagExpr};
use medea_core::{LraAlgorithm, LraRequest};
use medea_sim::fill_with_batch;

const ALGOS: [LraAlgorithm; 5] = [
    LraAlgorithm::Ilp,
    LraAlgorithm::NodeCandidates,
    LraAlgorithm::TagPopularity,
    LraAlgorithm::JKube,
    LraAlgorithm::Serial,
];

fn cluster() -> ClusterState {
    ClusterState::homogeneous(100, Resources::new(16 * 1024, 16), 10)
}

/// The Fig. 9a/10 workload: HBase-like instances of 8 workers with a
/// capacity-matched 6-per-node cap, so that violation-free placements
/// exist across the whole sweep (see EXPERIMENTS.md: the paper's literal
/// 2-per-node cap bounds satisfiable worker memory at 25% of the cluster,
/// which would saturate every scheduler above ~30% utilization).
pub fn fig9a_workload(n: usize, first_id: u64) -> Vec<LraRequest> {
    (0..n)
        .map(|i| medea_sim::apps::hbase_like(ApplicationId(first_id + i as u64), 8, 6))
        .collect()
}

/// Instances that fit a utilization fraction, bounded by both memory and
/// the cardinality cap (6 workers per node).
pub fn fig9a_count(cluster: &ClusterState, fraction: f64) -> usize {
    let per_instance = 8 * 2048 + 3 * 1024; // 8 workers + master/thrift/sec
    let memory_cap = cluster.total_capacity().memory_mb / per_instance;
    let worker_cap = cluster.num_nodes() as u64 * 6 / 8;
    ((memory_cap.min(worker_cap)) as f64 * fraction) as usize
}

/// (a) violations vs LRA utilization: deploy incrementally, snapshotting
/// the violation fraction as utilization crosses each checkpoint.
fn fig9a() {
    let checkpoints = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut report = Report::new(
        "fig9a",
        "Constraint violations (%) vs LRA cluster utilization",
        &[
            "lra_util_pct",
            "MEDEA-ILP",
            "MEDEA-NC",
            "MEDEA-TP",
            "J-KUBE",
            "Serial",
        ],
    );
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); ALGOS.len()];
    for (ai, &alg) in ALGOS.iter().enumerate() {
        let base = cluster();
        let total = fig9a_count(&base, 0.9);
        let reqs = fig9a_workload(total, 100);
        // Deploy in checkpointed stages so one pass yields all points.
        let mut state = base;
        let mut deployed_so_far = 0usize;
        let mut constraints = Vec::new();
        for &cp in &checkpoints {
            let want = fig9a_count(&cluster(), cp).min(total);
            let stage = &reqs[deployed_so_far..want];
            let res = deploy_lras(state, alg, stage, 2);
            state = res.state;
            constraints.extend(res.constraints);
            deployed_so_far = want;
            let stats = medea_constraints::violation_stats(&state, constraints.iter());
            series[ai].push(stats.violating_fraction());
        }
        eprintln!("fig9a: {alg} done");
    }
    for (i, &cp) in checkpoints.iter().enumerate() {
        let mut row = vec![format!("{:.0}", cp * 100.0)];
        for s in &series {
            row.push(pct(s[i]));
        }
        report.push(row);
    }
    report.finish();
}

/// (b) violations vs task-based utilization (LRAs fixed at 10%).
fn fig9b() {
    let task_utils = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
    let mut report = Report::new(
        "fig9b",
        "Constraint violations (%) vs task-based utilization (LRAs at 10%)",
        &[
            "task_util_pct",
            "MEDEA-ILP",
            "MEDEA-NC",
            "MEDEA-TP",
            "J-KUBE",
            "Serial",
        ],
    );
    for &tu in &task_utils {
        let mut row = vec![format!("{:.0}", tu * 100.0)];
        for &alg in &ALGOS {
            let mut state = cluster();
            fill_with_batch(&mut state, tu, 17);
            let n = fig9a_count(&state, 0.12);
            let reqs = fig9a_workload(n, 500);
            let res = deploy_lras(state, alg, &reqs, 2);
            row.push(pct(res.violations().violating_fraction()));
        }
        report.push(row);
        eprintln!("fig9b: task util {tu} done");
    }
    report.finish();
}

/// (c) violations vs periodicity (LRAs per scheduling cycle), LRAs at 10%.
///
/// Violations are measured *at placement time* (immediately after each
/// batch commits): our greedy schedulers score the effect of a placement
/// on previously deployed subjects, so a consumer whose producer arrives
/// one cycle later gets "repaired" — an improvement over the paper's
/// implementation that would otherwise flatten this figure. At-placement
/// violations equal the paper's end-state metric for a repair-free
/// scheduler. See EXPERIMENTS.md.
fn fig9c() {
    let periodicities = [1usize, 2, 3, 4, 5, 6];
    let mut report = Report::new(
        "fig9c",
        "Constraint violations at placement time (%) vs scheduling periodicity",
        &[
            "periodicity",
            "MEDEA-ILP",
            "MEDEA-NC",
            "MEDEA-TP",
            "J-KUBE",
            "Serial",
        ],
    );
    for &p in &periodicities {
        let mut row = vec![p.to_string()];
        for &alg in &ALGOS {
            // Paired consumer-then-producer submissions at staggered
            // distances: the consumer's inter-app affinity is satisfiable
            // at placement time only when the producer lands in the same
            // cycle, so larger cycles co-schedule more pairs.
            let reqs = paired_affinity_workload(8, 900);
            let mut state = cluster();
            let mut checked = 0usize;
            let mut violated = 0usize;
            let mut deployed_constraints: Vec<PlacementConstraint> = Vec::new();
            for batch in reqs.chunks(p.max(1)) {
                let res = deploy_lras(state, alg, batch, p);
                state = res.state;
                // Measure this batch's own constraints immediately after
                // its commit (at-placement violations).
                let batch_constraints: Vec<_> =
                    batch.iter().flat_map(|r| r.constraints.clone()).collect();
                let stats = medea_constraints::violation_stats(&state, batch_constraints.iter());
                violated += stats.containers_violating;
                // Denominator: every LRA container placed, as in the
                // paper's "percentage of containers" metric.
                checked += batch.iter().map(|r| r.num_containers()).sum::<usize>();
                deployed_constraints.extend(batch_constraints);
            }
            let frac = if checked == 0 {
                0.0
            } else {
                violated as f64 / checked as f64
            };
            row.push(pct(frac));
        }
        report.push(row);
        eprintln!("fig9c: periodicity {p} done");
    }
    report.finish();
}

/// Pairs of LRAs where the *first-submitted* has rack affinity to the
/// second (a forward reference): only a scheduler that considers both
/// requests in one cycle can satisfy it deliberately — with periodicity 1
/// the consumer is placed before its producer exists (§7.4: "the
/// importance of considering multiple container requests at a time for
/// satisfying inter-application constraints").
fn paired_affinity_workload(pairs: usize, first_id: u64) -> Vec<LraRequest> {
    let mut consumers = Vec::new();
    let mut producers = Vec::new();
    for i in 0..pairs {
        let cons_app = ApplicationId(first_id + 2 * i as u64);
        let prod_app = ApplicationId(first_id + 2 * i as u64 + 1);
        let ptag = Tag::new(format!("prod{i}"));
        let ctag = Tag::new(format!("cons{i}"));
        // Consumer submitted first, referencing the future producer.
        consumers.push(LraRequest::uniform(
            cons_app,
            5,
            Resources::new(2048, 1),
            vec![ctag.clone()],
            vec![PlacementConstraint::affinity(
                TagExpr::tag(ctag),
                TagExpr::tag(ptag.clone()),
                NodeGroupId::rack(),
            )],
        ));
        producers.push(LraRequest::uniform(
            prod_app,
            5,
            Resources::new(2048, 1),
            vec![ptag],
            vec![],
        ));
    }
    // Stagger producer arrivals 1-3 positions behind their consumers so
    // that successively larger scheduling cycles co-schedule successively
    // more pairs (no parity artifacts), and interleave unconstrained
    // filler services (as in a real mixed submission stream).
    let mut reqs = Vec::new();
    let mut pending: Vec<(usize, LraRequest)> = Vec::new();
    for (i, c) in consumers.into_iter().enumerate() {
        reqs.push(c);
        reqs.push(LraRequest::uniform(
            ApplicationId(first_id + 1000 + i as u64),
            5,
            Resources::new(1024, 1),
            vec![Tag::new(format!("filler{i}"))],
            vec![],
        ));
        pending.push((reqs.len() + (i % 3), producers[i].clone()));
        pending.retain(|(at, p)| {
            if *at <= reqs.len() {
                reqs.push(p.clone());
                false
            } else {
                true
            }
        });
    }
    for (_, p) in pending {
        reqs.push(p);
    }
    reqs
}

/// (d) violations vs constraint complexity: inter-application cardinality
/// chains involving up to X LRAs.
fn fig9d() {
    let complexities = [1usize, 2, 4, 6, 8, 10];
    let mut report = Report::new(
        "fig9d",
        "Constraint violations (%) vs inter-application constraint complexity",
        &[
            "complexity",
            "MEDEA-ILP",
            "MEDEA-NC",
            "MEDEA-TP",
            "J-KUBE",
            "Serial",
        ],
    );
    for &x in &complexities {
        let mut row = vec![x.to_string()];
        for &alg in &ALGOS {
            let state = cluster();
            // Three groups of X mutually-referencing LRAs; the batch holds
            // a whole group, so batch-aware schedulers see all references.
            let reqs: Vec<LraRequest> = (0..3)
                .flat_map(|g| complexity_group(x, 2000 + 100 * g, g as usize))
                .collect();
            let res = deploy_lras(state, alg, &reqs, x.max(2));
            row.push(pct(res.violations().violating_fraction()));
        }
        report.push(row);
        eprintln!("fig9d: complexity {x} done");
    }
    report.finish();
}

/// A group of `x` LRAs with *circular* inter-application constraints:
/// LRA i has rack affinity to LRA (i+1) mod x and a node-cardinality cap
/// toward it. The forward references mean one-at-a-time scheduling cannot
/// plan for them; a batch scheduler sees the whole group at once.
fn complexity_group(x: usize, first_id: u64, group: usize) -> Vec<LraRequest> {
    let x = x.max(1);
    let mut reqs = Vec::new();
    for i in 0..x {
        let app = ApplicationId(first_id + i as u64);
        let tag = Tag::new(format!("g{group}c{i}"));
        let mut constraints = Vec::new();
        if x > 1 {
            let next = Tag::new(format!("g{group}c{}", (i + 1) % x));
            constraints.push(PlacementConstraint::affinity(
                TagExpr::tag(tag.clone()),
                TagExpr::tag(next.clone()),
                NodeGroupId::rack(),
            ));
            constraints.push(PlacementConstraint::new(
                tag.clone(),
                next,
                Cardinality::at_most(2),
                NodeGroupId::node(),
            ));
        }
        reqs.push(LraRequest::uniform(
            app,
            4,
            Resources::new(2048, 1),
            vec![tag],
            constraints,
        ));
    }
    reqs
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "a" => fig9a(),
        "b" => fig9b(),
        "c" => fig9c(),
        "d" => fig9d(),
        _ => {
            fig9a();
            fig9b();
            fig9c();
            fig9d();
        }
    }
    println!(
        "\nPaper claims: Medea-ILP keeps violations under ~10% everywhere \
         (near zero in 9a even at 90% utilization); the heuristics sit in \
         the 10-20% band; J-Kube and Serial are worst; batching (9c) and \
         lookahead matter most for inter-application constraints (9d)."
    );
}
