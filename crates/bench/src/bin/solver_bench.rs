//! `solver_bench`: the MILP core's benchmark trajectory, emitted as
//! machine-readable JSON (`BENCH_solver.json`) so successive PRs can
//! compare solve-time medians on identical instances.
//!
//! Three instance families:
//!
//! 1. **`lp_relaxation/*`** — cold simplex solves of the assignment-shaped
//!    placement models the LRA scheduler emits (Fig. 6-scale batches).
//! 2. **`milp_exact/*`** — full branch-and-bound solves of the same
//!    shapes (the Fig. 9-shaped ILP instances the acceptance criteria
//!    track); identical to the `benches/solver_bench.rs` instances so the
//!    numbers line up with `cargo bench`.
//! 3. **`ilp_round/*`** — end-to-end scheduler rounds placing HBase-like
//!    batches (the Fig. 9a workload), once with the cross-round basis
//!    cache disabled (`cold`) and once with it shared across rounds
//!    (`warm`). Round time is dominated by model building, so the two
//!    typically sit within noise; the cache's per-solve effect shows in
//!    the `milp_exact` warm-start counts and the
//!    `core.ilp_warm_start_hits_total` metric.
//!
//! Reference medians of the pre-eta-file dense solver (recorded on this
//! machine immediately before the sparse rewrite landed) are embedded in
//! the JSON under `"dense_baseline_us"` for the `milp_exact` instances.
//!
//! Usage: `cargo run --release -p medea-bench --bin solver_bench`
//! (`--smoke` runs a fast, low-iteration variant for CI; the JSON is
//! still written with `"mode": "smoke"` so trajectories never mix modes).

use std::cell::Cell;
use std::fmt::Write as _;
use std::time::Instant;

use medea_bench::placement_model;
use medea_cluster::{ApplicationId, ClusterState, Resources};
use medea_core::{place_with_ilp, IlpConfig};
use medea_solver::{Milp, Simplex, SolveEvent, SolveInstrumentation};

/// Accumulates solver events across repeated solves of one instance.
#[derive(Default)]
struct Tally {
    pivots: Cell<u64>,
    refactorizations: Cell<u64>,
    warm_starts: Cell<u64>,
}

impl SolveInstrumentation for Tally {
    fn record(&self, event: SolveEvent) {
        match event {
            SolveEvent::SimplexPivots(n) => self.pivots.set(self.pivots.get() + n),
            SolveEvent::Refactorizations(n) => {
                self.refactorizations.set(self.refactorizations.get() + n)
            }
            SolveEvent::WarmStartUsed => self.warm_starts.set(self.warm_starts.get() + 1),
            _ => {}
        }
    }
}

/// One benchmarked instance's summary statistics.
struct InstanceResult {
    name: String,
    iters: usize,
    median_us: u64,
    p99_us: u64,
    mean_us: u64,
    pivots_per_solve: u64,
    refactorizations_per_solve: u64,
    warm_starts_per_solve: f64,
    /// Median of the pre-PR dense solver on this instance, when recorded.
    dense_baseline_us: Option<u64>,
}

fn summarize(
    name: &str,
    mut samples: Vec<u64>,
    tally: &Tally,
    dense_baseline_us: Option<u64>,
) -> InstanceResult {
    samples.sort_unstable();
    let iters = samples.len();
    let median_us = samples[iters / 2];
    let p99_idx = ((iters as f64 * 0.99).ceil() as usize).clamp(1, iters) - 1;
    let p99_us = samples[p99_idx];
    let mean_us = samples.iter().sum::<u64>() / iters as u64;
    InstanceResult {
        name: name.to_string(),
        iters,
        median_us,
        p99_us,
        mean_us,
        pivots_per_solve: tally.pivots.get() / iters as u64,
        refactorizations_per_solve: tally.refactorizations.get() / iters as u64,
        warm_starts_per_solve: tally.warm_starts.get() as f64 / iters as f64,
        dense_baseline_us,
    }
}

/// Times `f` for `iters` iterations after `warmup` untimed runs.
fn time_solves<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> Vec<u64> {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_micros() as u64);
    }
    samples
}

/// Dense-solver medians recorded immediately before the sparse eta-file
/// rewrite, on the instances that still exist verbatim (see DESIGN.md).
fn dense_baseline(name: &str) -> Option<u64> {
    match name {
        "lp_relaxation/10x16" => Some(136),
        "lp_relaxation/20x32" => Some(1_599),
        "lp_relaxation/26x48" => Some(5_671),
        "milp_exact/8x12" => Some(17_783),
        "milp_exact/12x16" => Some(319_870),
        _ => None,
    }
}

/// A Fig. 9a-shaped scheduling round: a batch of HBase-like instances
/// (8 workers, 6-per-node cardinality cap) against a fixed cluster.
fn ilp_round(state: &ClusterState, cfg: &IlpConfig, first_app: u64) {
    let reqs: Vec<_> = (0..2)
        .map(|i| medea_sim::apps::hbase_like(ApplicationId(first_app + i), 8, 6))
        .collect();
    let out = place_with_ilp(state, &reqs, &[], cfg);
    assert!(
        out.iter().all(|o| o.placement().is_some()),
        "bench round must place its batch"
    );
}

fn json_escape_free(s: &str) -> &str {
    debug_assert!(s.chars().all(|c| c != '"' && c != '\\' && c >= ' '));
    s
}

fn write_json(mode: &str, results: &[InstanceResult]) -> std::io::Result<()> {
    let mut body = String::new();
    body.push_str("{\n");
    let _ = writeln!(body, "  \"bench\": \"solver_bench\",");
    let _ = writeln!(body, "  \"mode\": \"{mode}\",");
    body.push_str("  \"instances\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str("    {");
        let _ = write!(
            body,
            "\"name\": \"{}\", \"iters\": {}, \"median_us\": {}, \"p99_us\": {}, \
             \"mean_us\": {}, \"pivots_per_solve\": {}, \"refactorizations_per_solve\": {}, \
             \"warm_starts_per_solve\": {:.2}",
            json_escape_free(&r.name),
            r.iters,
            r.median_us,
            r.p99_us,
            r.mean_us,
            r.pivots_per_solve,
            r.refactorizations_per_solve,
            r.warm_starts_per_solve,
        );
        if let Some(b) = r.dense_baseline_us {
            let speedup = b as f64 / r.median_us.max(1) as f64;
            let _ = write!(
                body,
                ", \"dense_baseline_us\": {b}, \"speedup_vs_dense\": {speedup:.2}"
            );
        }
        body.push('}');
        if i + 1 < results.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("  ]\n}\n");
    std::fs::write("BENCH_solver.json", body)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (lp_iters, milp_iters, rounds) = if smoke { (5, 3, 4) } else { (30, 10, 12) };
    let mode = if smoke { "smoke" } else { "full" };
    let mut results: Vec<InstanceResult> = Vec::new();

    // Family 1: LP relaxations (cold simplex).
    for &(containers, nodes) in &[(10usize, 16usize), (20, 32), (26, 48)] {
        let name = format!("lp_relaxation/{containers}x{nodes}");
        let p = placement_model(containers, nodes);
        let tally = Tally::default();
        let samples = time_solves(2, lp_iters, || {
            let sol = Simplex::new(&p).solve();
            tally.record(SolveEvent::SimplexPivots(sol.iterations as u64));
            tally.record(SolveEvent::Refactorizations(sol.refactorizations as u64));
        });
        results.push(summarize(&name, samples, &tally, dense_baseline(&name)));
    }

    // Family 2: exact MILP solves (the acceptance-tracked instances).
    for &(containers, nodes) in &[(8usize, 12usize), (12, 16)] {
        let name = format!("milp_exact/{containers}x{nodes}");
        let p = placement_model(containers, nodes);
        let tally = Tally::default();
        let samples = time_solves(1, milp_iters, || {
            Milp::new(&p)
                .with_instrumentation(&tally)
                .solve()
                .expect("bench model must validate");
        });
        results.push(summarize(&name, samples, &tally, dense_baseline(&name)));
    }

    // Family 3: scheduler rounds, cold vs cross-round warm cache. The
    // state is held fixed so every round solves the same skeleton — the
    // steady state the cache targets.
    let state = ClusterState::homogeneous(30, Resources::new(16 * 1024, 16), 3);
    for warm in [false, true] {
        let name = format!("ilp_round/fig9_{}", if warm { "warm" } else { "cold" });
        let cfg = IlpConfig {
            warm_cache: if warm {
                IlpConfig::default().warm_cache
            } else {
                None
            },
            ..IlpConfig::default()
        };
        let mut app = 1u64;
        let samples = time_solves(1, rounds, || {
            ilp_round(&state, &cfg, app);
            app += 100;
        });
        results.push(summarize(&name, samples, &Tally::default(), None));
    }

    println!(
        "{:<24} {:>6} {:>10} {:>10} {:>10} {:>8} {:>6} {:>6}",
        "instance", "iters", "median_us", "p99_us", "mean_us", "pivots", "refac", "warm"
    );
    for r in &results {
        println!(
            "{:<24} {:>6} {:>10} {:>10} {:>10} {:>8} {:>6} {:>6.2}",
            r.name,
            r.iters,
            r.median_us,
            r.p99_us,
            r.mean_us,
            r.pivots_per_solve,
            r.refactorizations_per_solve,
            r.warm_starts_per_solve,
        );
        if let Some(b) = r.dense_baseline_us {
            println!(
                "{:<24} {:>6} {:>10} (dense baseline; {:.2}x)",
                "",
                "",
                b,
                b as f64 / r.median_us.max(1) as f64
            );
        }
    }
    match write_json(mode, &results) {
        Ok(()) => println!("(json: BENCH_solver.json)"),
        Err(e) => eprintln!("warning: cannot write BENCH_solver.json: {e}"),
    }
}
