//! Figure 11b: the benefit of the two-scheduler design (§7.5).
//!
//! A capacity-tight cluster runs a bursty task stream plus a rolling LRA
//! churn, and the LRA solve deadline is swept from instant to most of
//! the scheduling interval. The synchronous pipeline is the
//! single-scheduler strawman: the solve runs on the heartbeat path, so
//! every task due while it runs waits — task latency inflates with the
//! deadline. The asynchronous pipeline is Medea's design: the solve
//! elapses off the critical path against a snapshot, and the cost shows
//! up instead as commit-time conflicts (stale placements invalidated and
//! resubmitted, §5.4), which grow with the deadline but never touch the
//! task path. Both runs are on the simulated clock and must drain.

use medea_bench::{f2, f3, run_pipeline, PipelineScenario, Report};
use medea_sim::{box_stats, PipelineMode, SolveLatencyModel};

/// Pools task latencies and conflict counts across trace seeds, so one
/// bursty arrival pattern does not dominate a row.
fn pooled(
    scenario: &PipelineScenario,
    mode: PipelineMode,
    lat: SolveLatencyModel,
    seeds: &[u64],
) -> (Vec<f64>, usize, usize) {
    let mut latencies = Vec::new();
    let mut conflicts = 0;
    let mut deployments = 0;
    for &seed in seeds {
        let mut s = scenario.clone();
        s.trace_seed = seed;
        let run = run_pipeline(&s, true, mode, lat);
        latencies.extend(run.task_latencies);
        conflicts += run.commit_conflicts;
        deployments += run.deployments;
    }
    (latencies, conflicts, deployments)
}

fn main() {
    let scenario = PipelineScenario::contention();
    let seeds = [7u64, 21, 35];
    let deadlines = [0u64, 1_000, 2_500, 5_000, 7_500];

    let mut report = Report::new(
        "fig11b",
        "Task latency (ms) vs LRA solve deadline: sync (one scheduler) vs async (two)",
        &[
            "deadline",
            "sync_p50",
            "sync_p99",
            "async_p50",
            "async_p99",
            "slowdown",
            "conflicts",
            "conflict_rate",
        ],
    );
    let mut max_conflicts = 0usize;
    for &d in &deadlines {
        let lat = SolveLatencyModel::fixed(d);
        let (sync_lat, sync_conflicts, _) = pooled(&scenario, PipelineMode::Sync, lat, &seeds);
        let (async_lat, conflicts, deployments) =
            pooled(&scenario, PipelineMode::Async, lat, &seeds);
        assert_eq!(
            sync_conflicts, 0,
            "nothing mutates between a sync propose and its commit"
        );
        let bs = box_stats(&sync_lat);
        let ba = box_stats(&async_lat);
        let attempts = deployments + conflicts;
        max_conflicts = max_conflicts.max(conflicts);
        report.push(vec![
            d.to_string(),
            f2(bs.p50),
            f2(bs.p99),
            f2(ba.p50),
            f2(ba.p99),
            f2(bs.p50 / ba.p50.max(1e-9)),
            conflicts.to_string(),
            f3(conflicts as f64 / attempts.max(1) as f64),
        ]);
        eprintln!("fig11b: deadline {d} done");
    }
    report.finish();

    println!(
        "\nPaper claim: putting the solver on the task path (the \
         single-scheduler design) inflates task latency as solves get \
         longer, while the two-scheduler design keeps the task path flat \
         and pays with commit conflicts instead — {max_conflicts} at the \
         longest deadline here, every one resolved by resubmission rather \
         than by stalling tasks."
    );
}
