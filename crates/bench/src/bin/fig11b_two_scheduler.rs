//! Figure 11b: the benefit of the two-scheduler design (§7.5).
//!
//! A 256-node cluster is driven to full utilization by a mix of LRAs
//! (varying fraction of the resources) and task-based jobs. `MEDEA` routes
//! only the LRAs through the ILP solver (tasks go through the heartbeat
//! path); `ILP-ALL` is the §7.5 strawman that solves *everything* with the
//! ILP, turning each task job into a constraint-free LRA request. The
//! total LRA scheduling latency explodes for ILP-ALL at low LRA fractions
//! because the solver time is dominated by task containers.

use std::sync::Arc;

use medea_bench::{f2, Report};
use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
use medea_core::{LraAlgorithm, LraRequest, LraScheduler};
use medea_obs::MetricsRegistry;
use medea_sim::apps;

/// Total time spent placing the LRA requests when each solver batch also
/// carries `task_requests` converted task jobs (ILP-ALL) or none (Medea).
fn total_lra_latency(
    lra_count: usize,
    task_containers: usize,
    ilp_all: bool,
    registry: &Arc<MetricsRegistry>,
) -> f64 {
    let cluster = ClusterState::homogeneous(256, Resources::new(16 * 1024, 16), 8);
    let mut scheduler = LraScheduler::new(LraAlgorithm::Ilp);
    scheduler.ilp.metrics = Some(Arc::clone(registry));
    let mut total = 0.0;
    let mut state = cluster;
    let mut constraints = Vec::new();
    let tasks_per_batch = if lra_count == 0 {
        task_containers
    } else {
        task_containers / lra_count.max(1)
    };
    for i in 0..lra_count.max(1) {
        let mut batch = Vec::new();
        if i < lra_count {
            batch.push(apps::hbase_instance(ApplicationId(100 + i as u64), 10));
        }
        if ilp_all && tasks_per_batch > 0 {
            // Task jobs as constraint-free single-shot requests.
            batch.push(LraRequest::uniform(
                ApplicationId(9000 + i as u64),
                tasks_per_batch.min(40),
                Resources::new(1024, 1),
                vec![Tag::new("task")],
                vec![],
            ));
        }
        let t0 = std::time::Instant::now();
        let outcomes = scheduler.place(&state, &batch, &constraints);
        total += t0.elapsed().as_secs_f64();
        for (req, out) in batch.iter().zip(outcomes) {
            if let Some(pl) = out.placement() {
                for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                    let _ =
                        state.allocate(req.app, n, c, medea_cluster::ExecutionKind::LongRunning);
                }
                constraints.extend(req.constraints.iter().cloned());
            }
        }
    }
    total
}

fn main() {
    // Fraction of cluster resources used by LRAs; the rest is task load.
    let fractions = [0.2, 0.4, 0.6, 0.8, 1.0];
    // Total container budget representing a fully utilized 256-node run
    // (scaled down to keep the strawman's runtime tolerable).
    let total_containers = 480usize;

    let mut report = Report::new(
        "fig11b",
        "Total LRA scheduling latency (s): Medea vs single-scheduler ILP-ALL",
        &["lra_fraction_pct", "MEDEA", "ILP-ALL", "slowdown"],
    );
    // Separate registries expose how much solver work each design does.
    let medea_registry = MetricsRegistry::new();
    let ilp_all_registry = MetricsRegistry::new();
    for &f in &fractions {
        let lra_containers = (total_containers as f64 * f) as usize;
        let lra_count = (lra_containers / 13).max(1);
        let task_containers = total_containers - lra_containers;
        let medea = total_lra_latency(lra_count, 0, false, &medea_registry);
        let ilp_all = total_lra_latency(lra_count, task_containers, true, &ilp_all_registry);
        report.push(vec![
            format!("{:.0}", f * 100.0),
            f2(medea),
            f2(ilp_all),
            f2(ilp_all / medea.max(1e-9)),
        ]);
        eprintln!("fig11b: fraction {f} done");
    }
    report.finish();

    println!(
        "\nPaper claim: the single-scheduler design (ILP-ALL) inflates LRA \
         scheduling latency most when LRAs are a small fraction of the load \
         (9.5x at 20% in the paper); the slowdown column should shrink \
         toward 1x as the LRA fraction approaches 100%."
    );

    let pivots = |r: &MetricsRegistry| {
        r.snapshot()
            .counter("solver.simplex_pivots_total")
            .unwrap_or(0)
    };
    println!(
        "\nSolver effort across the whole sweep: Medea {} simplex pivots, \
         ILP-ALL {} — routing tasks around the solver is where the latency \
         gap comes from.",
        pivots(&medea_registry),
        pivots(&ilp_all_registry),
    );
}
