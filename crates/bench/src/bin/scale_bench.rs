//! `scale_bench`: cluster-scale scheduling rounds at 500–50000 nodes,
//! emitted as machine-readable JSON (`BENCH_scale.json`).
//!
//! Each scale builds a census-shaped cluster (racks of ~40 nodes, service
//! units of ~100, ten upgrade domains — the §2.3 production shape), fills
//! half the machines with background LRA containers carrying service tags,
//! and then times NodeCandidates heuristic rounds that place an HBase-like
//! instance (8 workers + 3 auxiliaries, §7.1) under the paper's
//! constraints plus a population of deployed anti-affinity constraints.
//!
//! Beyond round latency, each scale reports:
//! - nodes touched by the index queries of one candidate-selection pass,
//!   in indexed and scan mode (the same pass, so directly comparable);
//! - incremental index maintenance cost (ops during populate, and
//!   nanoseconds per allocate/release maintenance op);
//! - the pre-index scan-engine median recorded on this machine right
//!   before the index layer landed (same workload, same seeds), so the
//!   JSON carries its own speedup denominator;
//! - full sharded-vs-unsharded scheduler rounds (10 LRAs × 8 containers
//!   through [`MedeaScheduler::tick`]): the same batch placed by one
//!   monolithic solve and by per-shard solves over service-unit shards.
//!   The speedup is purely algorithmic — a single thread runs the shard
//!   solves back-to-back, each scanning only its shard's nodes. At
//!   20000+ nodes the sharded round must be at most half the unsharded
//!   round (enforced here, so CI catches regressions).
//!
//! Usage: `cargo run --release -p medea-bench --bin scale_bench`
//! (`--smoke` runs the 500- and 20000-node scales only, for CI).

use std::fmt::Write as _;
use std::time::Instant;

use medea_cluster::{
    ApplicationId, ClusterState, ContainerRequest, ExecutionKind, IndexConfig, NodeGroupId, NodeId,
    Resources, ShardConfig, Tag,
};
use medea_constraints::PlacementConstraint;
use medea_core::{
    HeuristicScheduler, LraAlgorithm, LraRequest, MedeaScheduler, ObjectiveWeights, Ordering,
    Scorer,
};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// Distinct background service tags (bounds the tag-index breadth).
const SERVICE_TAGS: u32 = 50;

/// One benchmarked scale's summary statistics.
struct ScaleResult {
    nodes: usize,
    iters: usize,
    median_us: u64,
    p99_us: u64,
    mean_us: u64,
    populate_us: u64,
    /// Node entries visited by index queries during one
    /// candidate-selection pass, indexed mode.
    nodes_touched_indexed: u64,
    /// Same pass with the index disabled (every query scans all nodes).
    nodes_touched_scan: u64,
    /// Incremental index maintenance ops performed while populating.
    index_update_ops_populate: u64,
    /// Mean maintenance cost per allocate/release index op.
    index_update_ns_per_op: u64,
    /// Median of the pre-index scan-based engine at this scale, when
    /// recorded (see `pre_index_baseline`).
    pre_index_baseline_us: Option<u64>,
    /// Median full-scheduler round (propose + commit of 10 LRAs × 8
    /// containers), monolithic solve.
    unsharded_round_us: u64,
    /// Same round split into per-shard solves.
    sharded_round_us: u64,
    /// Shard count of the sharded run (service-unit basis).
    shards: usize,
}

/// Contiguous equal partition of `n` nodes into `parts` sets (the shape
/// `NodeGroups::register_partition` builds).
fn partition(n: usize, parts: usize) -> Vec<Vec<NodeId>> {
    let parts = parts.max(1);
    let mut sets: Vec<Vec<NodeId>> = vec![Vec::new(); parts];
    for i in 0..n {
        sets[i * parts / n.max(1)].push(NodeId(i as u32));
    }
    sets
}

/// Census-shaped cluster: 16 GB/16-core nodes, ~40-node racks, ~100-node
/// service units, 10 upgrade domains, half the nodes' worth of background
/// LRA containers (4-container apps tagged `svc0..svc49`), plus the
/// deployed anti-affinity constraints those services carry.
fn census_cluster(n: usize) -> (ClusterState, Vec<PlacementConstraint>) {
    let mut state = ClusterState::homogeneous(n, Resources::new(16 * 1024, 16), (n / 40).max(1));
    state.register_group(NodeGroupId::service_unit(), partition(n, (n / 100).max(1)));
    state.register_group(NodeGroupId::upgrade_domain(), partition(n, 10));

    let mut rng = StdRng::seed_from_u64(0xC0DE + n as u64);
    let target = n / 2;
    let mut placed = 0usize;
    let mut app = 1_000u64;
    while placed < target {
        let svc = rng.random_range(0..SERVICE_TAGS);
        let req = ContainerRequest::new(Resources::new(2048, 1), [Tag::new(format!("svc{svc}"))]);
        for _ in 0..4 {
            loop {
                let node = NodeId(rng.random_range(0..n as u32));
                if state
                    .allocate(ApplicationId(app), node, &req, ExecutionKind::LongRunning)
                    .is_ok()
                {
                    break;
                }
            }
            placed += 1;
        }
        app += 1;
    }

    let deployed: Vec<PlacementConstraint> = (0..SERVICE_TAGS)
        .step_by(2)
        .map(|k| {
            let t = Tag::new(format!("svc{k}"));
            PlacementConstraint::anti_affinity(t.clone(), t, NodeGroupId::node())
        })
        .collect();
    (state, deployed)
}

/// One scheduling round: place an HBase-like instance (8 workers,
/// 6-per-node cardinality cap) with the NodeCandidates heuristic.
fn scale_round(state: &ClusterState, deployed: &[PlacementConstraint], app: u64) {
    let reqs = vec![medea_sim::apps::hbase_like(ApplicationId(app), 8, 6)];
    let out = HeuristicScheduler::new(Ordering::NodeCandidates).place(state, &reqs, deployed);
    assert!(
        out.iter().all(|o| o.placement().is_some()),
        "bench round must place its batch"
    );
}

/// Node entries visited by index queries during one candidate-selection
/// pass (every batch item × every node through
/// [`Scorer::is_violation_free`] — the initial `Nc` computation of the
/// NodeCandidates heuristic), measured on a working copy in the given
/// index mode. In scan mode every query charges the full node count, so
/// the two figures quantify exactly what the index avoids.
fn candidate_pass_nodes_touched(
    state: &ClusterState,
    deployed: &[PlacementConstraint],
    app: u64,
    config: IndexConfig,
) -> u64 {
    let mut work = state.clone().with_index_config(config);
    let reqs = vec![medea_sim::apps::hbase_like(ApplicationId(app), 8, 6)];
    let mut constraints: Vec<PlacementConstraint> = deployed.to_vec();
    for r in &reqs {
        constraints.extend(r.constraints.iter().cloned());
    }
    let scorer = Scorer::new(ObjectiveWeights::default(), constraints);
    let nodes: Vec<NodeId> = work.node_ids().collect();
    let before = work.index_stats().nodes_visited;
    for r in &reqs {
        for c in &r.containers {
            for &n in &nodes {
                scorer.is_violation_free(&mut work, r.app, c, n);
            }
        }
    }
    work.index_stats().nodes_visited - before
}

/// Mean incremental-maintenance cost per index op, via timed
/// allocate/release churn on a working copy.
fn index_update_cost_ns(state: &ClusterState) -> u64 {
    let mut work = state.clone();
    let req = ContainerRequest::new(Resources::new(1, 1), [Tag::new("bench_churn")]);
    let n = work.num_nodes() as u32;
    let before_ops = work.index_stats().update_ops;
    let t = Instant::now();
    let pairs = 2_000u32;
    for i in 0..pairs {
        let node = NodeId(i % n);
        if let Ok(id) = work.allocate(
            ApplicationId(900_000),
            node,
            &req,
            ExecutionKind::LongRunning,
        ) {
            work.release(id).expect("churn container exists");
        }
    }
    let elapsed_ns = t.elapsed().as_nanos() as u64;
    let ops = (work.index_stats().update_ops - before_ops).max(1);
    elapsed_ns / ops
}

/// Pre-index medians of the scan-based engine, recorded on this machine
/// immediately before the incremental index layer landed (same workload,
/// same seeds; see DESIGN.md "Cluster-scale index layer").
fn pre_index_baseline(nodes: usize) -> Option<u64> {
    match nodes {
        500 => Some(425_987),
        2_000 => Some(3_393_465),
        5_000 => Some(17_512_941),
        _ => None,
    }
}

/// Outcome of the sharded-vs-unsharded scheduler-round comparison.
struct ShardCompare {
    unsharded_round_us: u64,
    sharded_round_us: u64,
    shards: usize,
}

/// Times full scheduler rounds — 10 LRAs of 8 containers each, every app
/// carrying its own node-level anti-affinity — through
/// [`MedeaScheduler::tick`], once with a monolithic solve and once with
/// per-shard solves (service-unit shards, footprint-free entries
/// round-robined). The apps' tags are distinct, so shard solves cannot
/// interact and every round must commit conflict-free; the asserts keep
/// the bench honest about that.
fn sharded_comparison(state: &ClusterState, nodes: usize, iters: usize) -> ShardCompare {
    // Whole service units per shard; capped so small scales still get a
    // meaningful (>= 2-way) split.
    let shards = (nodes / 1250).clamp(2, 16);
    let mut app_base = 700_000u64;
    let mut run = |config: Option<ShardConfig>| -> u64 {
        let mut m = MedeaScheduler::new(state.clone(), LraAlgorithm::Serial, 10);
        if let Some(c) = config {
            m.set_sharding(c);
        }
        let mut samples = Vec::with_capacity(iters);
        for it in 0..iters as u64 {
            let now = 10 * it;
            for _ in 0..10 {
                let tag = format!("lra{app_base}");
                m.submit_lra(
                    LraRequest::uniform(
                        ApplicationId(app_base),
                        8,
                        Resources::new(512, 0),
                        vec![Tag::new(tag.clone())],
                        vec![PlacementConstraint::anti_affinity(
                            tag.as_str(),
                            tag.as_str(),
                            NodeGroupId::node(),
                        )],
                    ),
                    now,
                )
                .expect("bench LRA submits cleanly");
                app_base += 1;
            }
            let t = Instant::now();
            let deployed = m.tick(now);
            samples.push(t.elapsed().as_micros() as u64);
            assert_eq!(deployed.len(), 10, "comparison round must deploy its batch");
        }
        assert_eq!(
            m.stats().commit_conflicts,
            0,
            "disjoint apps cannot conflict"
        );
        samples.sort_unstable();
        samples[samples.len() / 2]
    };
    let unsharded_round_us = run(None);
    let sharded_round_us = run(Some(ShardConfig::with_shards(shards)));
    ShardCompare {
        unsharded_round_us,
        sharded_round_us,
        shards,
    }
}

fn time_rounds<F: FnMut()>(warmup: usize, iters: usize, mut f: F) -> Vec<u64> {
    for _ in 0..warmup {
        f();
    }
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_micros() as u64);
    }
    samples
}

struct PassStats {
    nodes_touched_indexed: u64,
    nodes_touched_scan: u64,
    index_update_ops_populate: u64,
    index_update_ns_per_op: u64,
}

fn summarize(
    nodes: usize,
    mut samples: Vec<u64>,
    populate_us: u64,
    pass: PassStats,
    pre_index_baseline_us: Option<u64>,
    compare: ShardCompare,
) -> ScaleResult {
    samples.sort_unstable();
    let iters = samples.len();
    let median_us = samples[iters / 2];
    let p99_idx = ((iters as f64 * 0.99).ceil() as usize).clamp(1, iters) - 1;
    ScaleResult {
        nodes,
        iters,
        median_us,
        p99_us: samples[p99_idx],
        mean_us: samples.iter().sum::<u64>() / iters as u64,
        populate_us,
        nodes_touched_indexed: pass.nodes_touched_indexed,
        nodes_touched_scan: pass.nodes_touched_scan,
        index_update_ops_populate: pass.index_update_ops_populate,
        index_update_ns_per_op: pass.index_update_ns_per_op,
        pre_index_baseline_us,
        unsharded_round_us: compare.unsharded_round_us,
        sharded_round_us: compare.sharded_round_us,
        shards: compare.shards,
    }
}

fn write_json(mode: &str, results: &[ScaleResult]) -> std::io::Result<()> {
    let mut body = String::new();
    body.push_str("{\n");
    let _ = writeln!(body, "  \"bench\": \"scale_bench\",");
    let _ = writeln!(body, "  \"mode\": \"{mode}\",");
    body.push_str("  \"scales\": [\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str("    {");
        let _ = write!(
            body,
            "\"nodes\": {}, \"iters\": {}, \"median_us\": {}, \"p99_us\": {}, \
             \"mean_us\": {}, \"populate_us\": {}, \
             \"nodes_touched_indexed\": {}, \"nodes_touched_scan\": {}, \
             \"index_update_ops_populate\": {}, \"index_update_ns_per_op\": {}",
            r.nodes,
            r.iters,
            r.median_us,
            r.p99_us,
            r.mean_us,
            r.populate_us,
            r.nodes_touched_indexed,
            r.nodes_touched_scan,
            r.index_update_ops_populate,
            r.index_update_ns_per_op,
        );
        if let Some(b) = r.pre_index_baseline_us {
            let speedup = b as f64 / r.median_us.max(1) as f64;
            let _ = write!(
                body,
                ", \"pre_index_baseline_us\": {b}, \"speedup_vs_scan\": {speedup:.2}"
            );
        }
        let shard_speedup = r.unsharded_round_us as f64 / r.sharded_round_us.max(1) as f64;
        let _ = write!(
            body,
            ", \"unsharded_round_us\": {}, \"sharded_round_us\": {}, \
             \"shards\": {}, \"shard_speedup\": {shard_speedup:.2}",
            r.unsharded_round_us, r.sharded_round_us, r.shards,
        );
        body.push('}');
        if i + 1 < results.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("  ]\n}\n");
    std::fs::write("BENCH_scale.json", body)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };
    let scales: &[(usize, usize, usize)] = if smoke {
        // The 20000-node row keeps the sharded-speedup gate in CI.
        &[(500, 1, 2), (20000, 0, 2)]
    } else {
        &[
            (500, 1, 3),
            (2000, 0, 3),
            (5000, 0, 2),
            (20000, 0, 2),
            (50000, 0, 2),
        ]
    };
    let mut results = Vec::new();
    for &(nodes, warmup, iters) in scales {
        let t = Instant::now();
        let (state, deployed) = census_cluster(nodes);
        let populate_us = t.elapsed().as_micros() as u64;
        let index_update_ops_populate = state.index_stats().update_ops;
        let mut app = 500_000u64;
        let samples = time_rounds(warmup, iters, || {
            scale_round(&state, &deployed, app);
            app += 1;
        });
        let pass = PassStats {
            nodes_touched_indexed: candidate_pass_nodes_touched(
                &state,
                &deployed,
                app,
                IndexConfig::enabled(),
            ),
            nodes_touched_scan: candidate_pass_nodes_touched(
                &state,
                &deployed,
                app,
                IndexConfig::disabled(),
            ),
            index_update_ops_populate,
            index_update_ns_per_op: index_update_cost_ns(&state),
        };
        let compare = sharded_comparison(&state, nodes, iters.max(2));
        if nodes >= 20_000 {
            assert!(
                compare.sharded_round_us * 2 <= compare.unsharded_round_us,
                "sharded round ({} us) must be at most half the unsharded \
                 round ({} us) at {} nodes",
                compare.sharded_round_us,
                compare.unsharded_round_us,
                nodes,
            );
        }
        let r = summarize(
            nodes,
            samples,
            populate_us,
            pass,
            pre_index_baseline(nodes),
            compare,
        );
        println!(
            "{:>5} nodes: iters {:>2} median {:>10} us p99 {:>10} us populate {:>8} us \
             touched {:>8}/{:>8} (indexed/scan) index {:>5} ns/op \
             round {:>9}/{:>9} us (unsharded/sharded x{})",
            r.nodes,
            r.iters,
            r.median_us,
            r.p99_us,
            r.populate_us,
            r.nodes_touched_indexed,
            r.nodes_touched_scan,
            r.index_update_ns_per_op,
            r.unsharded_round_us,
            r.sharded_round_us,
            r.shards,
        );
        results.push(r);
    }
    match write_json(mode, &results) {
        Ok(()) => println!("(json: BENCH_scale.json)"),
        Err(e) => eprintln!("warning: cannot write BENCH_scale.json: {e}"),
    }
}
