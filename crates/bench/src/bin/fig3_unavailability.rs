//! Figure 3: percentage of unavailable machines over four days, cluster
//! total and four individual service units (synthetic trace per the
//! paper's §2.3 characterization; DESIGN.md substitution 3).

use medea_bench::{pct, Report};
use medea_sim::{FailureParams, UnavailabilityTrace};

fn main() {
    let params = FailureParams {
        hours: 4 * 24,
        ..FailureParams::default()
    };
    let trace = UnavailabilityTrace::generate(&params, 33);

    let mut report = Report::new(
        "fig3",
        "Unavailable machines (%) over 4 days: total and SU1-SU4",
        &["hour", "total", "SU1", "SU2", "SU3", "SU4"],
    );
    for hour in 0..trace.hours() {
        report.push(vec![
            hour.to_string(),
            pct(trace.total_at(hour)),
            pct(trace.fractions[hour][0]),
            pct(trace.fractions[hour][1]),
            pct(trace.fractions[hour][2]),
            pct(trace.fractions[hour][3]),
        ]);
    }
    // Print only a summary table; the full hourly series goes to CSV.
    let mut peak_su = 0.0f64;
    let mut peak_total = 0.0f64;
    let mut low_hours = 0usize;
    for hour in 0..trace.hours() {
        peak_total = peak_total.max(trace.total_at(hour));
        for su in 0..4 {
            peak_su = peak_su.max(trace.fractions[hour][su]);
        }
        if (0..4).all(|su| trace.fractions[hour][su] < 0.03) {
            low_hours += 1;
        }
    }
    report.write_csv();
    println!(
        "Figure 3 trace written to CSV ({} hourly rows).",
        trace.hours()
    );
    println!(
        "Paper claims: SU unavailability usually <3% (measured: {:.0}% of \
         hours), spikes reach 25-100% (measured SU peak: {:.0}%), and the \
         cluster total stays far below single-SU spikes (measured total \
         peak: {:.1}%).",
        low_hours as f64 / trace.hours() as f64 * 100.0,
        peak_su * 100.0,
        peak_total * 100.0
    );
}
