//! Figure 11a: average LRA scheduling latency vs cluster size (§7.5).
//!
//! Cluster sizes 50–5000 nodes; each run generates LRAs consuming ~20% of
//! the cluster and measures the mean wall-clock placement time per batch
//! for Medea-ILP, Medea-NC, Medea-TP, and J-Kube. Absolute numbers differ
//! from the paper's CPLEX-backed deployment; the *ordering* (heuristics
//! fastest, J-Kube scoring every node, ILP slowest) is the claim under
//! reproduction.

use std::sync::Arc;

use medea_bench::{deploy_lras_with_metrics, f2, lra_mix, Report};
use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
use medea_core::{LraAlgorithm, LraRequest, TaskJobRequest};
use medea_obs::MetricsRegistry;
use medea_sim::{SimDriver, SimEvent};

const ALGOS: [LraAlgorithm; 4] = [
    LraAlgorithm::Ilp,
    LraAlgorithm::NodeCandidates,
    LraAlgorithm::TagPopularity,
    LraAlgorithm::JKube,
];

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");
    let sizes: &[usize] = if quick {
        &[50, 200, 1000]
    } else if full {
        &[50, 500, 1000, 2000, 5000]
    } else {
        &[50, 500, 1000, 2000]
    };

    // One registry across the sweep and the end-to-end run below, so the
    // final snapshot spans bench.*, solver.*, core.*, task.*, and sim.*.
    let registry = MetricsRegistry::new();

    let mut report = Report::new(
        "fig11a",
        "Mean LRA scheduling latency (ms) vs cluster size",
        &["nodes", "MEDEA-ILP", "MEDEA-NC", "MEDEA-TP", "J-KUBE"],
    );
    for &n in sizes {
        let mut row = vec![n.to_string()];
        for &alg in &ALGOS {
            let cluster = ClusterState::homogeneous(n, Resources::new(16 * 1024, 16), 10);
            // LRAs for ~20% of the cluster, capped to keep the sweep short.
            let count = ((n as f64 * 16.0 * 0.2) / 23.25).round() as usize;
            let count = count.clamp(2, 6);
            let reqs = lra_mix(count, 1.0, 100);
            let res = deploy_lras_with_metrics(cluster, alg, &reqs, 2, &registry);
            let per_lra_ms = if res.deployed.is_empty() {
                f64::NAN
            } else {
                res.batch_times.iter().map(|d| d.as_secs_f64()).sum::<f64>() * 1000.0
                    / res.deployed.len() as f64
            };
            row.push(f2(per_lra_ms));
        }
        report.push(row);
        eprintln!("fig11a: {n} nodes done");
    }
    report.finish();

    println!(
        "\nPaper claims: the heuristics are cheapest (NC more expensive than \
         TP), J-Kube pays for scoring every node, and the ILP is the most \
         expensive but still small next to LRA lifetimes (hours to months). \
         Compare columns left to right in each row above."
    );

    // End-to-end smoke run through the full two-scheduler pipeline (LRAs
    // at the scheduling interval, tasks at heartbeat latency) sharing the
    // sweep's registry, then dump the metrics snapshot.
    let cluster = ClusterState::homogeneous(32, Resources::new(16 * 1024, 16), 4);
    let mut sim =
        SimDriver::new(cluster, LraAlgorithm::Ilp, 1_000).with_metrics(Arc::clone(&registry));
    sim.start_heartbeats();
    for (i, req) in lra_mix(4, 0.5, 9_000).into_iter().enumerate() {
        sim.schedule(i as u64 * 500, SimEvent::SubmitLra(req));
    }
    sim.schedule(
        100,
        SimEvent::SubmitTasks {
            job: TaskJobRequest::new(ApplicationId(9_900), Resources::new(1024, 1), 24),
            duration: 2_000,
        },
    );
    sim.schedule(
        12_000,
        SimEvent::SubmitLra(LraRequest::uniform(
            ApplicationId(9_901),
            4,
            Resources::new(2048, 2),
            vec![Tag::new("smoke")],
            vec![],
        )),
    );
    sim.run_until(20_000);
    eprintln!(
        "fig11a: end-to-end smoke run deployed {} LRAs, allocated {} tasks",
        sim.metrics().deployments.len(),
        sim.metrics().task_latencies.len(),
    );

    println!("\nmetrics snapshot:");
    println!("{}", registry.snapshot_json());
}
