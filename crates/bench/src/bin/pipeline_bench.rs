//! `pipeline_bench`: the placement pipeline's benchmark trajectory,
//! emitted as machine-readable JSON (`BENCH_pipeline.json`) so successive
//! PRs can compare the sync-vs-async numbers on identical scenarios.
//!
//! Two experiments, both on the simulated clock (deterministic per seed):
//!
//! 1. **Task latency under LRA solve load** (the Fig. 11c claim): the
//!    same Google-trace-like task stream runs with no LRAs (baseline),
//!    with LRAs under the async pipeline, and with LRAs under the
//!    synchronous compatibility mode. The async median must sit within
//!    10% of the baseline; the monolithic sync tick degrades measurably
//!    because every heartbeat due during a solve waits for it.
//! 2. **Conflict rate vs. solve deadline** (the Fig. 11b trade-off): on
//!    a capacity-tight cluster, the longer a proposal is in flight, the
//!    more commit-time conflicts the async pipeline resolves by
//!    resubmission — the price of taking the ILP off the critical path,
//!    while sync pays with task latency instead.
//!
//! Usage: `cargo run --release -p medea-bench --bin pipeline_bench`
//! (`--smoke` runs the scaled-down CI variant; the JSON records
//! `"mode": "smoke"` so trajectories never mix scales).

use std::fmt::Write as _;

use medea_bench::{paper_solve_model, run_pipeline, PipelineRun, PipelineScenario};
use medea_sim::{box_stats, BoxStats, PipelineMode, SolveLatencyModel};

/// One arm of the task-latency comparison.
struct LatencyArm {
    name: &'static str,
    tasks: usize,
    stats: BoxStats,
    lra_p50: f64,
    deployments: usize,
    conflicts: usize,
}

fn latency_arm(name: &'static str, run: &PipelineRun) -> LatencyArm {
    LatencyArm {
        name,
        tasks: run.task_latencies.len(),
        stats: box_stats(&run.task_latencies),
        lra_p50: if run.lra_latencies.is_empty() {
            0.0
        } else {
            box_stats(&run.lra_latencies).p50
        },
        deployments: run.deployments,
        conflicts: run.commit_conflicts,
    }
}

/// One row of the deadline sweep.
struct SweepRow {
    deadline: u64,
    sync_task_p50: f64,
    sync_task_p99: f64,
    async_task_p50: f64,
    async_task_p99: f64,
    async_conflicts: usize,
    async_conflict_rate: f64,
    async_deployments: usize,
}

fn write_json(mode: &str, arms: &[LatencyArm], sweep: &[SweepRow]) -> std::io::Result<()> {
    let mut body = String::new();
    body.push_str("{\n");
    let _ = writeln!(body, "  \"bench\": \"pipeline_bench\",");
    let _ = writeln!(body, "  \"mode\": \"{mode}\",");
    body.push_str("  \"task_latency\": {\n");
    for a in arms {
        let _ = writeln!(
            body,
            "    \"{}\": {{\"tasks\": {}, \"p50\": {:.1}, \"p99\": {:.1}, \"mean\": {:.1}, \
             \"lra_p50\": {:.1}, \"deployments\": {}, \"conflicts\": {}}},",
            a.name,
            a.tasks,
            a.stats.p50,
            a.stats.p99,
            a.stats.mean,
            a.lra_p50,
            a.deployments,
            a.conflicts,
        );
    }
    let base = arms[0].stats.p50.max(1e-9);
    let _ = writeln!(
        body,
        "    \"async_vs_baseline_p50_pct\": {:.1},",
        (arms[1].stats.p50 / base - 1.0) * 100.0
    );
    let _ = writeln!(
        body,
        "    \"sync_vs_baseline_p50_pct\": {:.1}",
        (arms[2].stats.p50 / base - 1.0) * 100.0
    );
    body.push_str("  },\n");
    body.push_str("  \"conflict_sweep\": [\n");
    for (i, r) in sweep.iter().enumerate() {
        let _ = write!(
            body,
            "    {{\"deadline_ticks\": {}, \"sync_task_p50\": {:.1}, \"sync_task_p99\": {:.1}, \
             \"async_task_p50\": {:.1}, \"async_task_p99\": {:.1}, \"async_conflicts\": {}, \
             \"async_conflict_rate\": {:.3}, \"async_deployments\": {}}}",
            r.deadline,
            r.sync_task_p50,
            r.sync_task_p99,
            r.async_task_p50,
            r.async_task_p99,
            r.async_conflicts,
            r.async_conflict_rate,
            r.async_deployments,
        );
        if i + 1 < sweep.len() {
            body.push(',');
        }
        body.push('\n');
    }
    body.push_str("  ]\n}\n");
    std::fs::write("BENCH_pipeline.json", body)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mode = if smoke { "smoke" } else { "full" };

    // Experiment 1: task latency with the solver on vs. off the critical
    // path, against the no-LRA baseline.
    let scenario = if smoke {
        PipelineScenario::latency_comparison().smoke()
    } else {
        PipelineScenario::latency_comparison()
    };
    let solve = paper_solve_model();
    let baseline = run_pipeline(&scenario, false, PipelineMode::Async, solve);
    let async_run = run_pipeline(&scenario, true, PipelineMode::Async, solve);
    let sync_run = run_pipeline(&scenario, true, PipelineMode::Sync, solve);
    let arms = [
        latency_arm("baseline", &baseline),
        latency_arm("async", &async_run),
        latency_arm("sync", &sync_run),
    ];

    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>9} {:>9} {:>8} {:>9}",
        "arm", "tasks", "p50", "p99", "mean", "lra_p50", "deploys", "conflicts"
    );
    for a in &arms {
        println!(
            "{:<10} {:>7} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>8} {:>9}",
            a.name,
            a.tasks,
            a.stats.p50,
            a.stats.p99,
            a.stats.mean,
            a.lra_p50,
            a.deployments,
            a.conflicts,
        );
    }
    let base_p50 = arms[0].stats.p50.max(1e-9);
    let async_pct = (arms[1].stats.p50 / base_p50 - 1.0) * 100.0;
    let sync_pct = (arms[2].stats.p50 / base_p50 - 1.0) * 100.0;
    println!(
        "\nTask latency medians vs. no-LRA baseline: async {async_pct:+.1}%, sync {sync_pct:+.1}%"
    );
    assert!(
        async_pct.abs() <= 10.0,
        "async pipeline must keep the task-latency median within 10% of the \
         no-LRA baseline (got {async_pct:+.1}%)"
    );
    assert!(
        sync_pct > async_pct,
        "the monolithic sync tick must degrade task latency more than async \
         (sync {sync_pct:+.1}% vs async {async_pct:+.1}%)"
    );

    // Experiment 2: async conflict rate (and sync task-latency cost) as a
    // function of the solve deadline.
    let contention = if smoke {
        PipelineScenario::contention().smoke()
    } else {
        PipelineScenario::contention()
    };
    let deadlines: &[u64] = if smoke {
        &[0, 2_500, 7_500]
    } else {
        &[0, 1_000, 2_500, 5_000, 7_500]
    };
    let mut sweep = Vec::new();
    for &d in deadlines {
        let lat = SolveLatencyModel::fixed(d);
        let sync = run_pipeline(&contention, true, PipelineMode::Sync, lat);
        let async_ = run_pipeline(&contention, true, PipelineMode::Async, lat);
        assert_eq!(sync.commit_conflicts, 0, "sync commit cannot see drift");
        let sync_stats = box_stats(&sync.task_latencies);
        let async_stats = box_stats(&async_.task_latencies);
        let attempts = async_.deployments + async_.commit_conflicts;
        sweep.push(SweepRow {
            deadline: d,
            sync_task_p50: sync_stats.p50,
            sync_task_p99: sync_stats.p99,
            async_task_p50: async_stats.p50,
            async_task_p99: async_stats.p99,
            async_conflicts: async_.commit_conflicts,
            async_conflict_rate: async_.commit_conflicts as f64 / attempts.max(1) as f64,
            async_deployments: async_.deployments,
        });
        eprintln!("pipeline_bench: deadline {d} done");
    }

    println!(
        "\n{:>9} {:>12} {:>12} {:>13} {:>13} {:>10} {:>9}",
        "deadline", "sync_p50", "sync_p99", "async_p50", "async_p99", "conflicts", "rate"
    );
    for r in &sweep {
        println!(
            "{:>9} {:>12.1} {:>12.1} {:>13.1} {:>13.1} {:>10} {:>9.3}",
            r.deadline,
            r.sync_task_p50,
            r.sync_task_p99,
            r.async_task_p50,
            r.async_task_p99,
            r.async_conflicts,
            r.async_conflict_rate,
        );
    }

    match write_json(mode, &arms, &sweep) {
        Ok(()) => println!("(json: BENCH_pipeline.json)"),
        Err(e) => eprintln!("warning: cannot write BENCH_pipeline.json: {e}"),
    }
}
