//! Figure 2b: HBase YCSB throughput with and without node anti-affinity
//! constraints, with and without cgroups isolation (§2.2).
//!
//! Region servers are deployed with YARN (constraint-unaware, ends up
//! collocating) and with Medea (anti-affinity); per-workload throughput
//! comes from the performance model under 60% batch load, as in the paper.

use medea_bench::{f2, Report};
use medea_cluster::{ApplicationId, ClusterState, ExecutionKind, Resources, Tag};
use medea_constraints::PlacementConstraint;
use medea_core::{LraAlgorithm, LraRequest, LraScheduler};
use medea_sim::{fill_with_batch, PerfModel};

/// Deploys `instances` HBase-like apps of `rs_per_instance` region servers
/// each and returns the mean number of *other* region servers collocated
/// with each region server.
fn mean_collocation(alg: LraAlgorithm, with_constraint: bool) -> f64 {
    let mut cluster = ClusterState::homogeneous(60, Resources::new(16 * 1024, 16), 6);
    // Batch jobs use 60% of the cluster's memory (paper setup).
    fill_with_batch(&mut cluster, 0.6, 7);
    let scheduler = LraScheduler::new(alg);
    let mut constraints = Vec::new();
    let mut deployed_constraints: Vec<PlacementConstraint> = Vec::new();
    if with_constraint {
        constraints.push(PlacementConstraint::anti_affinity(
            "hb_rs",
            "hb_rs",
            medea_cluster::NodeGroupId::node(),
        ));
    }
    for i in 0..8u64 {
        let req = LraRequest::uniform(
            ApplicationId(100 + i),
            10,
            Resources::new(2048, 1),
            vec![Tag::new("hb"), Tag::new("hb_rs")],
            constraints.clone(),
        );
        let out = scheduler.place(&cluster, std::slice::from_ref(&req), &deployed_constraints);
        if let Some(pl) = out[0].placement() {
            for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                let _ = cluster.allocate(req.app, n, c, ExecutionKind::LongRunning);
            }
            deployed_constraints.extend(req.constraints.iter().cloned());
        }
    }
    // Mean collocated *other* region servers per region server.
    let rs = Tag::new("hb_rs");
    let mut total = 0.0;
    let mut count = 0usize;
    for n in cluster.node_ids() {
        let g = cluster.gamma(n, &rs);
        if g > 0 {
            total += (g * (g - 1)) as f64;
            count += g as usize;
        }
    }
    if count == 0 {
        0.0
    } else {
        total / count as f64
    }
}

fn main() {
    // Per-workload base throughputs (Kops/s) shaped like YCSB A-F.
    let workloads = [
        ("A", 45.0),
        ("B", 60.0),
        ("C", 75.0),
        ("D", 55.0),
        ("E", 25.0),
        ("F", 40.0),
    ];
    let batch_util = 0.6;

    let yarn_coll = mean_collocation(LraAlgorithm::Yarn, false);
    let medea_coll = mean_collocation(LraAlgorithm::Ilp, true);
    println!("mean collocated region servers: YARN={yarn_coll:.2}, MEDEA={medea_coll:.2}");

    let plain = PerfModel::new();
    let iso = PerfModel::new().with_cgroups();
    let mut report = Report::new(
        "fig2b",
        "HBase YCSB throughput (Kops/s) with node anti-affinity and cgroups",
        &["workload", "YARN", "YARN-Cgroups", "MEDEA", "MEDEA-Cgroups"],
    );
    let mut sums = [0.0f64; 4];
    for (name, base) in workloads {
        let vals = [
            plain.ycsb_throughput(base, yarn_coll.round() as u32, batch_util),
            iso.ycsb_throughput(base, yarn_coll.round() as u32, batch_util),
            plain.ycsb_throughput(base, medea_coll.round() as u32, batch_util),
            iso.ycsb_throughput(base, medea_coll.round() as u32, batch_util),
        ];
        for (s, v) in sums.iter_mut().zip(vals) {
            *s += v;
        }
        report.push(vec![
            name.to_string(),
            f2(vals[0]),
            f2(vals[1]),
            f2(vals[2]),
            f2(vals[3]),
        ]);
    }
    report.finish();

    println!(
        "\nPaper claims: no-constraints achieves ~34% lower throughput than \
         anti-affinity (measured: {:.0}% lower); cgroups improve \
         no-constraints by ~20% (measured: {:.0}%) but cannot match \
         anti-affinity (measured: {}).",
        (1.0 - sums[0] / sums[2]) * 100.0,
        (sums[1] / sums[0] - 1.0) * 100.0,
        if sums[1] < sums[2] {
            "holds"
        } else {
            "VIOLATED"
        }
    );
}
