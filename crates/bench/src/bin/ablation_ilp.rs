//! Ablation study of the ILP scheduler's engineering devices (not a paper
//! figure; DESIGN.md §5 commits to ablating these design choices):
//!
//! 1. **MIP start** — seeding branch and bound with the greedy heuristic
//!    placement (anytime behaviour);
//! 2. **Symmetry breaking** — lexicographic rows over identical
//!    containers;
//! 3. **Candidate cap** — the equivalence-class candidate budget.
//!
//! Each variant deploys the same HBase batch sequence; we report wall
//! time, placement success, and end-state violations.

use std::time::Instant;

use medea_bench::{f2, pct, Report};
use medea_cluster::{ApplicationId, ClusterState, Resources};
use medea_core::{IlpConfig, LraAlgorithm, LraScheduler};
use medea_sim::apps;

fn run(cfg: IlpConfig) -> (f64, usize, f64) {
    let cluster = ClusterState::homogeneous(60, Resources::new(16 * 1024, 16), 6);
    let reqs: Vec<_> = (0..8u64)
        .map(|i| apps::hbase_instance(ApplicationId(100 + i), 10))
        .collect();
    let mut scheduler = LraScheduler::new(LraAlgorithm::Ilp);
    scheduler.ilp = cfg;

    let mut state = cluster;
    let mut constraints = Vec::new();
    let mut placed = 0usize;
    let t0 = Instant::now();
    for batch in reqs.chunks(2) {
        let outcomes = scheduler.place(&state, batch, &constraints);
        for (req, out) in batch.iter().zip(outcomes) {
            if let Some(pl) = out.placement() {
                for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                    let _ =
                        state.allocate(req.app, n, c, medea_cluster::ExecutionKind::LongRunning);
                }
                constraints.extend(req.constraints.iter().cloned());
                placed += 1;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let viol = medea_constraints::violation_stats(&state, constraints.iter());
    (elapsed, placed, viol.violating_fraction())
}

fn main() {
    let mut report = Report::new(
        "ablation_ilp",
        "ILP ablations: wall time, LRAs placed, end-state violations",
        &["variant", "seconds", "placed", "violations_pct"],
    );
    // Each variant gets a freshly defaulted config: cloning one base
    // would share its Arc'd warm-start cache, letting earlier variants'
    // bases speed up later ones and bias the comparison.
    let variants: Vec<(&str, IlpConfig)> = vec![
        ("baseline", IlpConfig::default()),
        (
            "no-mip-start",
            IlpConfig {
                mip_start: false,
                ..IlpConfig::default()
            },
        ),
        (
            "no-symmetry",
            IlpConfig {
                symmetry_breaking: false,
                ..IlpConfig::default()
            },
        ),
        (
            "candidates=16",
            IlpConfig {
                max_candidates: 16,
                ..IlpConfig::default()
            },
        ),
        (
            "candidates=64",
            IlpConfig {
                max_candidates: 64,
                ..IlpConfig::default()
            },
        ),
    ];
    for (name, cfg) in variants {
        let (secs, placed, viol) = run(cfg);
        report.push(vec![
            name.to_string(),
            f2(secs),
            placed.to_string(),
            pct(viol),
        ]);
        eprintln!("ablation: {name} done");
    }
    report.finish();

    println!(
        "\nExpected: removing the MIP start costs time and/or quality \
         (branch and bound must find an incumbent from scratch within the \
         deadline); removing symmetry breaking inflates the search; the \
         candidate cap trades solve time against placement quality."
    );
}
