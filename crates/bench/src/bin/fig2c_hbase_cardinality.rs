//! Figure 2c: total YCSB runtime of 10 HBase region servers as the
//! maximum region servers per node varies from 1 (anti-affinity) to 10
//! (full affinity), on low- (5% GridMix) and high- (70%) utilized
//! clusters (§2.2).

use medea_bench::{f2, Report};
use medea_sim::{PerfModel, PlacementProfile};

fn main() {
    let model = PerfModel::io_bound();
    // Base: the time to run all six YCSB workloads (minutes).
    let base_min = 22.0;
    let sweeps = [1u32, 2, 4, 8, 10];

    let mut report = Report::new(
        "fig2c",
        "HBase total runtime (min) vs max region servers per node",
        &["max_rs_per_node", "low_utilized", "high_utilized"],
    );
    let mut low_curve = Vec::new();
    let mut high_curve = Vec::new();
    for &c in &sweeps {
        // Average several seeded runs so measurement noise cannot flip
        // marginal optima.
        let avg = |ext: f64, seed0: u64| -> f64 {
            (0..5)
                .map(|k| {
                    model.runtime(
                        base_min,
                        &PlacementProfile::packed(10, c, 1, ext),
                        seed0 + 1000 * k + c as u64,
                    )
                })
                .sum::<f64>()
                / 5.0
        };
        let low = avg(0.05, 0);
        let high = avg(0.70, 100);
        low_curve.push((c, low));
        high_curve.push((c, high));
        report.push(vec![c.to_string(), f2(low), f2(high)]);
    }
    report.finish();

    let argmin = |curve: &[(u32, f64)]| curve.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap().0;
    println!(
        "\nPaper claim: intermediate cardinality beats both extremes, and the \
         optimum depends on cluster load. Measured optima: low-utilized = \
         {} RS/node, high-utilized = {} RS/node.",
        argmin(&low_curve),
        argmin(&high_curve)
    );
}
