//! Figure 1: machines used for long-running applications in six analytics
//! clusters (synthetic census; DESIGN.md substitution 7).

use medea_bench::{pct, Report};
use medea_sim::generate_census;

fn main() {
    let census = generate_census(2018);
    let mut report = Report::new(
        "fig1",
        "Machines used for LRAs in six analytics clusters (%)",
        &["cluster", "machines", "lra_share_pct"],
    );
    for c in &census {
        report.push(vec![
            c.name.clone(),
            c.machines.to_string(),
            pct(c.lra_share),
        ]);
    }
    report.finish();

    let min_share = census.iter().map(|c| c.lra_share).fold(1.0, f64::min);
    let dedicated = census.iter().filter(|c| c.lra_share >= 0.999).count();
    println!(
        "\nPaper claim: every cluster uses at least 10% of machines for LRAs \
         (measured minimum: {:.0}%), and two clusters are exclusively LRAs \
         (measured: {dedicated}).",
        min_share * 100.0
    );
}
