//! Figure 8: application resilience over 15 days — CDF of the maximum
//! per-LRA container unavailability per hour, for Medea vs J-Kube
//! placements with service-unit anti-affinity constraints (§7.3).
//!
//! Unlike the paper's post-hoc analysis, this experiment is *event
//! driven*: the synthetic SU unavailability trace is compiled into a
//! deterministic schedule of node-crash/recover events
//! ([`ChaosSchedule`]), the schedule is injected into the discrete-event
//! simulator, and per-LRA unavailability is *measured* from the live
//! cluster state while the recovery pipeline re-places killed
//! containers. J-Kube ignores cardinality, so it spreads only as far as
//! least-allocated scoring happens to take it — and pays for it when a
//! service unit goes down.
//!
//! `--smoke` runs a short fixed-seed chaos scenario (node crashes +
//! solver stalls against the ILP algorithm) as a CI gate: it must
//! complete without panics, re-place at least 95% of killed LRA
//! containers, and emit the recovery counters in the obs snapshot.

use std::sync::Arc;

use medea_bench::{f2, Report};
use medea_cluster::{
    ApplicationId, ClusterState, ExecutionKind, NodeGroupId, NodeId, Resources, Tag,
};
use medea_constraints::{Cardinality, PlacementConstraint, TagExpr};
use medea_core::{LraAlgorithm, LraRequest};
use medea_obs::MetricsRegistry;
use medea_sim::{
    fill_with_batch, su_partition, Cdf, ChaosConfig, ChaosSchedule, FailureParams, SimDriver,
    SimEvent, UnavailabilityTrace,
};

const SUS: usize = 25;
const NODES_PER_SU: usize = 20;
const LRAS: usize = 10;
const CONTAINERS: usize = 100;
/// 1 tick = 1 s.
const TICKS_PER_HOUR: u64 = 3_600;

fn build_cluster(seed: u64, sus: &[Vec<NodeId>]) -> ClusterState {
    let n: usize = sus.iter().map(Vec::len).sum();
    let mut cluster = ClusterState::homogeneous(n, Resources::new(16 * 1024, 32), 10);
    cluster.register_group(NodeGroupId::service_unit(), sus.to_vec());
    // Uneven pre-existing load so least-allocated packing is non-uniform:
    // fill even-numbered SUs more heavily.
    fill_with_batch(&mut cluster, 0.35, seed);
    for (su, nodes) in sus.iter().enumerate() {
        if su % 2 == 0 {
            for &node in nodes.iter().take(nodes.len() / 2) {
                let _ = cluster.allocate(
                    ApplicationId(8_000_000 + su as u64),
                    node,
                    &medea_cluster::ContainerRequest::new(Resources::new(10 * 1024, 4), []),
                    ExecutionKind::Task,
                );
            }
        }
    }
    cluster
}

fn fleet_requests() -> Vec<LraRequest> {
    (0..LRAS)
        .map(|i| {
            let app = ApplicationId(100 + i as u64);
            let spread = PlacementConstraint::new(
                TagExpr::and([Tag::new("svc"), Tag::app_id(app)]),
                TagExpr::and([Tag::new("svc"), Tag::app_id(app)]),
                Cardinality::at_most(4),
                NodeGroupId::service_unit(),
            );
            LraRequest::uniform(
                app,
                CONTAINERS,
                Resources::new(1024, 1),
                vec![Tag::new("svc")],
                vec![spread],
            )
        })
        .collect()
}

/// Runs one algorithm through the full chaos horizon, sampling each
/// LRA's container unavailability; returns the hourly worst-case (%)
/// series across the fleet.
///
/// Sampling a fixed grid would miss the damage entirely: the recovery
/// pipeline re-places killed containers within a few scheduler ticks,
/// far faster than an hour. We instead sample immediately after every
/// crash event — the instantaneous dip before recovery kicks in is
/// exactly what placement spread controls — plus the hour boundary for
/// any lingering (capacity-bound) unavailability.
fn run_fleet(alg: LraAlgorithm, trace: &UnavailabilityTrace, chaos: &ChaosSchedule) -> Vec<f64> {
    let sus = su_partition(SUS * NODES_PER_SU, SUS);
    let mut sim = SimDriver::new(build_cluster(5, &sus), alg, 30);
    for req in fleet_requests() {
        sim.schedule(0, SimEvent::SubmitLra(req));
    }
    // Let the fleet deploy at the first scheduler ticks before any
    // failure can land.
    sim.run_until(59);
    let deployed = sim.metrics().deployments.len();
    if deployed < LRAS {
        eprintln!("warning: {alg:?} deployed only {deployed}/{LRAS} LRAs");
    }
    sim.inject_chaos(chaos);

    let crash_times: Vec<u64> = chaos
        .events
        .iter()
        .filter(|(t, e)| *t >= 60 && matches!(*e, SimEvent::NodeCrash(_)))
        .map(|&(t, _)| t)
        .collect();
    let mut series = Vec::with_capacity(trace.hours());
    let mut next_crash = 0usize;
    for hour in 1..=trace.hours() as u64 {
        let mut worst = 0.0f64;
        while next_crash < crash_times.len() && crash_times[next_crash] <= hour * TICKS_PER_HOUR {
            sim.run_until(crash_times[next_crash]);
            worst = worst.max(fleet_unavailability(&sim));
            next_crash += 1;
        }
        sim.run_until(hour * TICKS_PER_HOUR);
        worst = worst.max(fleet_unavailability(&sim));
        series.push(worst * 100.0);
    }
    series
}

/// Worst per-LRA fraction of containers currently missing or sitting on
/// an unavailable node.
fn fleet_unavailability(sim: &SimDriver) -> f64 {
    let state = sim.medea().state();
    let mut live = [0u32; LRAS];
    for alloc in state.allocations() {
        let id = alloc.app.0;
        if (100..100 + LRAS as u64).contains(&id)
            && alloc.kind == ExecutionKind::LongRunning
            && state.is_available(alloc.node)
        {
            live[(id - 100) as usize] += 1;
        }
    }
    live.iter()
        .map(|&l| 1.0 - l as f64 / CONTAINERS as f64)
        .fold(0.0, f64::max)
}

fn chaos_for(trace: &UnavailabilityTrace, sus: &[Vec<NodeId>]) -> ChaosSchedule {
    ChaosSchedule::from_trace(
        trace,
        sus,
        &ChaosConfig {
            seed: 15,
            ticks_per_hour: TICKS_PER_HOUR,
            baseline_crash_probability: 0.0005,
            ..ChaosConfig::default()
        },
    )
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let trace = UnavailabilityTrace::generate(&FailureParams::default(), 15);
    let sus = su_partition(SUS * NODES_PER_SU, SUS);
    let chaos = chaos_for(&trace, &sus);
    println!(
        "chaos schedule: {} events ({} crashes) over {} h",
        chaos.len(),
        chaos.crashes(),
        trace.hours()
    );

    let m_series = run_fleet(LraAlgorithm::TagPopularity, &trace, &chaos);
    let j_series = run_fleet(LraAlgorithm::JKube, &trace, &chaos);
    let m_cdf = Cdf::new(m_series.iter().copied());
    let j_cdf = Cdf::new(j_series.iter().copied());

    let mut report = Report::new(
        "fig8",
        "CDF of max container unavailability per LRA (%), 15 days of injected failures",
        &["quantile", "MEDEA", "J-KUBE"],
    );
    for q in [0.05, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        report.push(vec![
            format!("{q:.2}"),
            f2(m_cdf.quantile(q)),
            f2(j_cdf.quantile(q)),
        ]);
    }
    report.finish();

    let gain = |q: f64| -> f64 {
        let j = j_cdf.quantile(q);
        if j <= f64::EPSILON {
            0.0
        } else {
            (1.0 - m_cdf.quantile(q) / j) * 100.0
        }
    };
    println!(
        "\nPaper claims: Medea improves median unavailability by ~16% and \
         maximum by ~24% vs J-Kube. Measured on injected events: median \
         {:+.0}%, maximum {:+.0}%.",
        gain(0.5),
        gain(1.0)
    );
}

/// Fixed-seed chaos smoke scenario for CI: small cluster, ILP
/// scheduling, node crashes + solver stalls; asserts zero silent loss
/// and a >= 95% replacement ratio, and prints the obs JSON snapshot.
fn smoke() {
    const S_SUS: usize = 5;
    const S_NODES: usize = 8;
    const S_LRAS: u64 = 6;
    const S_CONTAINERS: usize = 10;
    const S_HOURS: usize = 24;

    let sus = su_partition(S_SUS * S_NODES, S_SUS);
    let mut cluster =
        ClusterState::homogeneous(S_SUS * S_NODES, Resources::new(16 * 1024, 16), S_SUS);
    cluster.register_group(NodeGroupId::service_unit(), sus.clone());

    let registry = MetricsRegistry::new();
    let mut sim =
        SimDriver::new(cluster, LraAlgorithm::Ilp, 30).with_metrics(Arc::clone(&registry));
    for app in 1..=S_LRAS {
        let tag = format!("svc{app}");
        sim.schedule(
            app,
            SimEvent::SubmitLra(LraRequest::uniform(
                ApplicationId(app),
                S_CONTAINERS,
                Resources::new(2048, 2),
                vec![Tag::new(tag.clone())],
                vec![PlacementConstraint::anti_affinity(
                    tag.as_str(),
                    tag.as_str(),
                    NodeGroupId::node(),
                )],
            )),
        );
    }

    let trace = UnavailabilityTrace::generate(
        &FailureParams {
            service_units: S_SUS,
            hours: S_HOURS,
            spike_probability: 0.05,
            ..FailureParams::default()
        },
        8,
    );
    let chaos = ChaosSchedule::from_trace(
        &trace,
        &sus,
        &ChaosConfig {
            seed: 8,
            ticks_per_hour: TICKS_PER_HOUR,
            baseline_crash_probability: 0.01,
            flapping_nodes: 1,
            solver_stall_probability: 0.5,
            ..ChaosConfig::default()
        },
    );
    assert!(chaos.crashes() > 0, "smoke needs crashes");
    assert!(chaos.stalls() > 0, "smoke needs solver stalls");
    sim.inject_chaos(&chaos);
    sim.run_until(S_HOURS as u64 * TICKS_PER_HOUR + 50_000);

    let r = sim.medea().recovery_report();
    println!(
        "chaos smoke: {} events, {} crashes, {} stalls; containers lost={} \
         replaced={} unplaceable={} pending={} (ratio {:.3})",
        chaos.len(),
        chaos.crashes(),
        chaos.stalls(),
        r.containers_lost,
        r.containers_replaced,
        r.containers_unplaceable,
        r.containers_pending,
        r.replacement_ratio()
    );
    println!("{}", registry.snapshot_json());

    let mut failed = false;
    if !r.accounted() {
        eprintln!("FAIL: recovery accounting leaks containers");
        failed = true;
    }
    if r.containers_lost == 0 {
        eprintln!("FAIL: chaos killed no LRA containers");
        failed = true;
    }
    if r.replacement_ratio() < 0.95 {
        eprintln!(
            "FAIL: replacement ratio {:.3} below 0.95",
            r.replacement_ratio()
        );
        failed = true;
    }
    let snap = registry.snapshot();
    for series in [
        "core.recovery_containers_lost_total",
        "core.recovery_replaced_total",
        "sim.chaos_node_crashes_total",
        "sim.chaos_solver_stalls_total",
    ] {
        if snap.counter(series).unwrap_or(0) == 0 {
            eprintln!("FAIL: metric {series} missing or zero");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("chaos smoke: OK");
}
