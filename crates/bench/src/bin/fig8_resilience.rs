//! Figure 8: application resilience over 15 days — CDF of the maximum
//! per-LRA container unavailability per hour, for Medea vs J-Kube
//! placements with service-unit anti-affinity constraints (§7.3).
//!
//! The cluster is split into 25 service units with uneven pre-existing
//! load; LRAs of 100 containers each request spreading across SUs via a
//! cardinality constraint (J-Kube ignores cardinality, so it spreads only
//! as far as least-allocated scoring happens to take it). Hourly machine
//! unavailability comes from the synthetic SU failure trace.

use medea_bench::{f2, Report};
use medea_cluster::{
    ApplicationId, ClusterState, ExecutionKind, NodeGroupId, NodeId, Resources, Tag,
};
use medea_constraints::{Cardinality, PlacementConstraint, TagExpr};
use medea_core::{LraAlgorithm, LraRequest, LraScheduler};
use medea_sim::{fill_with_batch, Cdf, FailureParams, UnavailabilityTrace};

const SUS: usize = 25;
const NODES_PER_SU: usize = 20;
const LRAS: usize = 10;
const CONTAINERS: usize = 100;

fn build_cluster(seed: u64) -> ClusterState {
    let n = SUS * NODES_PER_SU;
    let mut cluster = ClusterState::homogeneous(n, Resources::new(16 * 1024, 32), 10);
    // Register service units as a node group.
    let sus: Vec<Vec<NodeId>> = (0..SUS)
        .map(|su| {
            (0..NODES_PER_SU)
                .map(|i| NodeId((su * NODES_PER_SU + i) as u32))
                .collect()
        })
        .collect();
    cluster.register_group(NodeGroupId::service_unit(), sus);
    // Uneven pre-existing load so least-allocated packing is non-uniform:
    // fill even-numbered SUs more heavily.
    fill_with_batch(&mut cluster, 0.35, seed);
    for su in 0..SUS {
        if su % 2 == 0 {
            for i in 0..NODES_PER_SU / 2 {
                let node = NodeId((su * NODES_PER_SU + i) as u32);
                let _ = cluster.allocate(
                    ApplicationId(8_000_000 + su as u64),
                    node,
                    &medea_cluster::ContainerRequest::new(Resources::new(10 * 1024, 4), []),
                    ExecutionKind::Task,
                );
            }
        }
    }
    cluster
}

/// Places the LRA fleet; returns per-LRA container counts per SU.
fn place_fleet(alg: LraAlgorithm) -> Vec<Vec<u32>> {
    let mut cluster = build_cluster(5);
    // Medea`s tag-popularity heuristic is used (the paper`s 100-
    // container LRAs exceed what our CPLEX substitute handles per batch);
    // the *constraint handling* is what differs: J-Kube drops cardinality.
    let scheduler = LraScheduler::new(alg);
    let mut deployed_constraints = Vec::new();
    let mut per_lra = Vec::new();
    for i in 0..LRAS {
        let app = ApplicationId(100 + i as u64);
        let spread = PlacementConstraint::new(
            TagExpr::and([Tag::new("svc"), Tag::app_id(app)]),
            TagExpr::and([Tag::new("svc"), Tag::app_id(app)]),
            Cardinality::at_most(4),
            NodeGroupId::service_unit(),
        );
        let req = LraRequest::uniform(
            app,
            CONTAINERS,
            Resources::new(1024, 1),
            vec![Tag::new("svc")],
            vec![spread.clone()],
        );
        let out = scheduler.place(&cluster, std::slice::from_ref(&req), &deployed_constraints);
        let mut counts = vec![0u32; SUS];
        if let Some(pl) = out[0].placement() {
            for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                let _ = cluster.allocate(app, n, c, ExecutionKind::LongRunning);
                counts[n.0 as usize / NODES_PER_SU] += 1;
            }
            deployed_constraints.extend(req.constraints.iter().cloned());
        } else {
            eprintln!("warning: {alg} failed to place LRA {i}");
        }
        per_lra.push(counts);
    }
    per_lra
}

fn worst_case_series(trace: &UnavailabilityTrace, fleet: &[Vec<u32>]) -> Vec<f64> {
    (0..trace.hours())
        .map(|h| {
            fleet
                .iter()
                .map(|counts| trace.app_unavailability(h, counts))
                .fold(0.0, f64::max)
                * 100.0
        })
        .collect()
}

fn main() {
    let trace = UnavailabilityTrace::generate(&FailureParams::default(), 15);

    let medea = place_fleet(LraAlgorithm::TagPopularity);
    let jkube = place_fleet(LraAlgorithm::JKube);

    let spread_of = |fleet: &[Vec<u32>]| -> f64 {
        // Mean of each LRA's maximum per-SU concentration.
        fleet
            .iter()
            .map(|c| *c.iter().max().unwrap_or(&0) as f64)
            .sum::<f64>()
            / fleet.len() as f64
    };
    println!(
        "mean max-containers-per-SU: MEDEA={:.1}, J-KUBE={:.1}",
        spread_of(&medea),
        spread_of(&jkube)
    );

    let m_series = worst_case_series(&trace, &medea);
    let j_series = worst_case_series(&trace, &jkube);
    let m_cdf = Cdf::new(m_series.iter().copied());
    let j_cdf = Cdf::new(j_series.iter().copied());

    let mut report = Report::new(
        "fig8",
        "CDF of max container unavailability per LRA (%), 15 days",
        &["quantile", "MEDEA", "J-KUBE"],
    );
    for q in [0.05, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0] {
        report.push(vec![
            format!("{q:.2}"),
            f2(m_cdf.quantile(q)),
            f2(j_cdf.quantile(q)),
        ]);
    }
    report.finish();

    let med_gain = (1.0 - m_cdf.quantile(0.5) / j_cdf.quantile(0.5)) * 100.0;
    let max_gain = (1.0 - m_cdf.quantile(1.0) / j_cdf.quantile(1.0)) * 100.0;
    println!(
        "\nPaper claims: Medea improves median unavailability by ~16% and \
         maximum by ~24% vs J-Kube. Measured: median {med_gain:+.0}%, \
         maximum {max_gain:+.0}%.",
    );
}
