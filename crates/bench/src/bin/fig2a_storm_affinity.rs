//! Figure 2a: Memcached lookup latency under three Storm placement
//! policies (§2.2): YARN (no constraints), Medea intra-only, Medea
//! intra+inter affinity.
//!
//! The Storm+Memcached pipeline is placed with the real schedulers; the
//! collocation actually achieved determines the lookup-latency
//! distribution via the performance model (DESIGN.md substitution 2).

use medea_bench::{f2, Report};
use medea_cluster::{ApplicationId, ClusterState, ExecutionKind, NodeId, Resources};
use medea_core::{LraAlgorithm, LraScheduler};
use medea_sim::apps::{memcached_instance, storm_instance, StormAffinity};
use medea_sim::{Cdf, PerfModel};

/// Places memcached + storm with a policy; returns per-supervisor
/// collocation with memcached.
fn place_policy(alg: LraAlgorithm, affinity: StormAffinity) -> Vec<bool> {
    let mut cluster = ClusterState::homogeneous(40, Resources::new(16 * 1024, 16), 4);
    let scheduler = LraScheduler::new(alg);

    // Deploy memcached first (it serves many applications).
    let mem = memcached_instance(ApplicationId(1));
    let out = scheduler.place(&cluster, std::slice::from_ref(&mem), &[]);
    let mem_node: NodeId = out[0].placement().expect("memcached placed").nodes[0];
    for (c, &n) in mem
        .containers
        .iter()
        .zip(&out[0].placement().unwrap().nodes)
    {
        cluster
            .allocate(mem.app, n, c, ExecutionKind::LongRunning)
            .unwrap();
    }

    // Deploy the Storm topology with the policy's constraints.
    let storm = storm_instance(ApplicationId(2), affinity);
    let deployed = scheduler.place(&cluster, std::slice::from_ref(&storm), &mem.constraints);
    let nodes = deployed[0].placement().expect("storm placed").nodes.clone();
    nodes.iter().map(|&n| n == mem_node).collect()
}

fn main() {
    let model = PerfModel::new();
    let policies: [(&str, LraAlgorithm, StormAffinity); 3] = [
        ("YARN", LraAlgorithm::Yarn, StormAffinity::None),
        (
            "MEDEA-intra-only",
            LraAlgorithm::Ilp,
            StormAffinity::IntraOnly,
        ),
        ("MEDEA", LraAlgorithm::Ilp, StormAffinity::IntraInter),
    ];

    let mut report = Report::new(
        "fig2a",
        "Memcached lookup latency CDF (ms) under Storm placement policies",
        &["policy", "p10", "p25", "p50", "p75", "p90", "p99", "mean"],
    );
    let mut means = Vec::new();
    for (i, (name, alg, affinity)) in policies.iter().enumerate() {
        let collocated = place_policy(*alg, *affinity);
        // Lookups are issued by every supervisor; sample per supervisor.
        let mut samples = Vec::new();
        for (si, &coll) in collocated.iter().enumerate() {
            samples.extend(model.lookup_latency_samples(coll, 2_000, (i * 10 + si) as u64));
        }
        let cdf = Cdf::new(samples.iter().copied());
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        means.push((name.to_string(), mean));
        report.push(vec![
            name.to_string(),
            f2(cdf.quantile(0.10)),
            f2(cdf.quantile(0.25)),
            f2(cdf.quantile(0.50)),
            f2(cdf.quantile(0.75)),
            f2(cdf.quantile(0.90)),
            f2(cdf.quantile(0.99)),
            f2(mean),
        ]);
    }
    report.finish();

    let yarn = means[0].1;
    let intra = means[1].1;
    let full = means[2].1;
    println!(
        "\nPaper claim: intra-only cannot improve mean Memcached latency \
         (measured: intra-only/yarn = {:.2}); intra+inter reduces mean lookup \
         latency by ~4.6x over intra-only (measured: {:.1}x).",
        intra / yarn,
        intra / full
    );
}
