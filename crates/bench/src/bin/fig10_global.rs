//! Figure 10: global cluster objectives vs LRA utilization (§7.4):
//! (a) percentage of fragmented nodes (free < 1 core / 2 GB yet not fully
//! utilized); (b) coefficient of variation of node memory utilization
//! (load imbalance). Same sweep as Fig. 9a.

use medea_bench::{deploy_lras, f3, pct, Report};
use medea_cluster::ApplicationId;
use medea_cluster::{ClusterState, Resources};
use medea_core::LraAlgorithm;
use medea_core::LraRequest;

const ALGOS: [LraAlgorithm; 5] = [
    LraAlgorithm::Ilp,
    LraAlgorithm::NodeCandidates,
    LraAlgorithm::TagPopularity,
    LraAlgorithm::JKube,
    LraAlgorithm::Serial,
];

fn cluster() -> ClusterState {
    ClusterState::homogeneous(100, Resources::new(16 * 1024, 16), 10)
}

/// Same workload and sizing as Fig. 9a (see that binary's docs).
fn workload(n: usize, first_id: u64) -> Vec<LraRequest> {
    (0..n)
        .map(|i| medea_sim::apps::hbase_like(ApplicationId(first_id + i as u64), 8, 6))
        .collect()
}

fn count_for(cluster: &ClusterState, fraction: f64) -> usize {
    let per_instance = 8 * 2048 + 3 * 1024;
    let memory_cap = cluster.total_capacity().memory_mb / per_instance;
    let worker_cap = cluster.num_nodes() as u64 * 6 / 8;
    ((memory_cap.min(worker_cap)) as f64 * fraction) as usize
}

fn main() {
    let checkpoints = [0.1, 0.3, 0.5, 0.7, 0.9];
    let mut frag = Report::new(
        "fig10a",
        "Fragmented nodes (%) vs LRA utilization",
        &[
            "lra_util_pct",
            "MEDEA-ILP",
            "MEDEA-NC",
            "MEDEA-TP",
            "J-KUBE",
            "Serial",
        ],
    );
    let mut cv = Report::new(
        "fig10b",
        "Coefficient of variation of node memory utilization (%) vs LRA utilization",
        &[
            "lra_util_pct",
            "MEDEA-ILP",
            "MEDEA-NC",
            "MEDEA-TP",
            "J-KUBE",
            "Serial",
        ],
    );

    let mut frag_series: Vec<Vec<f64>> = vec![Vec::new(); ALGOS.len()];
    let mut cv_series: Vec<Vec<f64>> = vec![Vec::new(); ALGOS.len()];
    for (ai, &alg) in ALGOS.iter().enumerate() {
        let base = cluster();
        let total = count_for(&base, 0.9);
        let reqs = workload(total, 100);
        let mut state = base;
        let mut deployed = 0usize;
        for &cp in &checkpoints {
            let want = count_for(&cluster(), cp).min(total);
            let res = deploy_lras(state, alg, &reqs[deployed..want], 2);
            state = res.state;
            deployed = want;
            let stats = state.utilization_stats();
            frag_series[ai].push(stats.fragmented_fraction);
            cv_series[ai].push(stats.memory_cv);
        }
        eprintln!("fig10: {alg} done");
    }
    for (i, &cp) in checkpoints.iter().enumerate() {
        let mut frow = vec![format!("{:.0}", cp * 100.0)];
        let mut crow = vec![format!("{:.0}", cp * 100.0)];
        for ai in 0..ALGOS.len() {
            frow.push(pct(frag_series[ai][i]));
            crow.push(f3(cv_series[ai][i] * 100.0));
        }
        frag.push(frow);
        cv.push(crow);
    }
    frag.finish();
    cv.finish();

    println!(
        "\nPaper claims: all algorithms show few fragmented nodes except at \
         high utilization; load imbalance (CV) is highest at low utilization \
         and evens out as the cluster fills; Serial is the outlier."
    );
}
