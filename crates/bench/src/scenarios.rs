//! Shared experiment scaffolding: deploy LRA mixes with a chosen
//! algorithm and measure the §7.4 global-objective metrics.

use std::sync::Arc;
use std::time::{Duration, Instant};

use medea_cluster::{ApplicationId, ClusterState, ExecutionKind};
use medea_constraints::{violation_stats, PlacementConstraint, ViolationStats};
use medea_core::{LraAlgorithm, LraRequest, LraScheduler};
use medea_obs::MetricsRegistry;
use medea_sim::apps;

/// Result of statically deploying a list of LRAs.
#[derive(Debug)]
pub struct DeployResult {
    /// Final cluster state.
    pub state: ClusterState,
    /// Active constraints of all successfully deployed LRAs.
    pub constraints: Vec<PlacementConstraint>,
    /// Applications deployed.
    pub deployed: Vec<ApplicationId>,
    /// Requests that could not be placed.
    pub unplaced: usize,
    /// Wall-clock placement time per batch.
    pub batch_times: Vec<Duration>,
}

impl DeployResult {
    /// Violation statistics over the deployed constraints.
    pub fn violations(&self) -> ViolationStats {
        violation_stats(&self.state, self.constraints.iter())
    }

    /// Mean per-LRA scheduling latency (batch time / batch size).
    pub fn mean_lra_latency(&self) -> Duration {
        if self.batch_times.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.batch_times.iter().sum();
        total / self.batch_times.len() as u32
    }
}

/// Deploys `requests` onto `cluster` in batches of `batch_size` (the
/// paper's *periodicity*: how many LRAs each scheduling cycle considers),
/// committing successful placements and accumulating constraints.
pub fn deploy_lras(
    cluster: ClusterState,
    algorithm: LraAlgorithm,
    requests: &[LraRequest],
    batch_size: usize,
) -> DeployResult {
    deploy_with(
        cluster,
        LraScheduler::new(algorithm),
        requests,
        batch_size,
        None,
    )
}

/// Like [`deploy_lras`], but wires `registry` into the scheduler so the
/// ILP path reports `solver.*` / `core.*` series, and records each batch
/// placement time into the `bench.place_batch_us` histogram.
pub fn deploy_lras_with_metrics(
    cluster: ClusterState,
    algorithm: LraAlgorithm,
    requests: &[LraRequest],
    batch_size: usize,
    registry: &Arc<MetricsRegistry>,
) -> DeployResult {
    let mut scheduler = LraScheduler::new(algorithm);
    scheduler.ilp.metrics = Some(Arc::clone(registry));
    deploy_with(cluster, scheduler, requests, batch_size, Some(registry))
}

fn deploy_with(
    mut cluster: ClusterState,
    scheduler: LraScheduler,
    requests: &[LraRequest],
    batch_size: usize,
    registry: Option<&Arc<MetricsRegistry>>,
) -> DeployResult {
    let mut constraints: Vec<PlacementConstraint> = Vec::new();
    let mut deployed = Vec::new();
    let mut unplaced = 0usize;
    let mut batch_times = Vec::new();

    for batch in requests.chunks(batch_size.max(1)) {
        let t0 = Instant::now();
        let outcomes = scheduler.place(&cluster, batch, &constraints);
        let elapsed = t0.elapsed();
        if let Some(m) = registry {
            m.histogram("bench.place_batch_us").record_duration(elapsed);
        }
        batch_times.push(elapsed);
        for (req, outcome) in batch.iter().zip(outcomes) {
            match outcome.placement() {
                Some(pl) => {
                    let mut ok = true;
                    let mut ids = Vec::new();
                    for (c, &n) in req.containers.iter().zip(&pl.nodes) {
                        match cluster.allocate(req.app, n, c, ExecutionKind::LongRunning) {
                            Ok(id) => ids.push(id),
                            Err(_) => {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        deployed.push(req.app);
                        constraints.extend(req.constraints.iter().cloned());
                    } else {
                        for id in ids {
                            let _ = cluster.release(id);
                        }
                        unplaced += 1;
                    }
                }
                None => unplaced += 1,
            }
        }
    }
    DeployResult {
        state: cluster,
        constraints,
        deployed,
        unplaced,
        batch_times,
    }
}

/// An alternating HBase/TensorFlow mix of `n` instances (the §7.4
/// workload uses HBase instances; §7.2 mixes both).
pub fn lra_mix(n: usize, hbase_fraction: f64, first_app_id: u64) -> Vec<LraRequest> {
    let n_hbase = (n as f64 * hbase_fraction).round() as usize;
    (0..n)
        .map(|i| {
            let app = ApplicationId(first_app_id + i as u64);
            if i < n_hbase {
                apps::hbase_instance(app, 10)
            } else {
                apps::tensorflow_instance(app)
            }
        })
        .collect()
}

/// How many HBase instances (10 workers + 3 aux ≈ 23.25 GB each) fit a
/// target fraction of the cluster's memory.
pub fn hbase_count_for_utilization(cluster: &ClusterState, fraction: f64) -> usize {
    let per_instance = apps::hbase_instance(ApplicationId(0), 10)
        .total_resources()
        .memory_mb;
    let budget = cluster.total_capacity().memory_mb as f64 * fraction;
    (budget / per_instance as f64).floor() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::Resources;

    #[test]
    fn deploy_commits_and_counts() {
        let cluster = ClusterState::homogeneous(20, Resources::new(16 * 1024, 16), 4);
        let reqs = lra_mix(4, 0.5, 100);
        let res = deploy_lras(cluster, LraAlgorithm::NodeCandidates, &reqs, 2);
        assert_eq!(res.deployed.len() + res.unplaced, 4);
        assert!(res.deployed.len() >= 3, "most should place");
        assert_eq!(res.batch_times.len(), 2);
        let v = res.violations();
        assert!(v.containers_checked > 0);
    }

    #[test]
    fn deploy_with_metrics_records_batches() {
        let cluster = ClusterState::homogeneous(20, Resources::new(16 * 1024, 16), 4);
        let reqs = lra_mix(4, 0.5, 100);
        let registry = MetricsRegistry::new();
        let res =
            deploy_lras_with_metrics(cluster, LraAlgorithm::NodeCandidates, &reqs, 2, &registry);
        assert_eq!(res.batch_times.len(), 2);
        let snap = registry.snapshot();
        let hist = snap
            .histogram("bench.place_batch_us")
            .expect("series exists");
        assert_eq!(hist.count, 2);
    }

    #[test]
    fn utilization_sizing() {
        let cluster = ClusterState::homogeneous(100, Resources::new(16 * 1024, 16), 10);
        let n = hbase_count_for_utilization(&cluster, 0.5);
        // 100 * 16 GB * 0.5 = 800 GB; instance = 23.25 GB -> 34.
        assert!((30..40).contains(&n), "got {n}");
    }

    #[test]
    fn mix_fractions() {
        let reqs = lra_mix(10, 1.0, 0);
        assert_eq!(reqs.len(), 10);
        // All HBase at fraction 1.0: 13 containers each.
        assert!(reqs.iter().all(|r| r.num_containers() == 13));
        let mixed = lra_mix(10, 0.5, 0);
        let tf = mixed.iter().filter(|r| r.num_containers() == 11).count();
        assert_eq!(tf, 5);
    }
}
