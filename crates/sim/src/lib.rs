//! Simulation substrate for the Medea reproduction: the discrete-event
//! cluster simulator, workload generators, and the performance and
//! failure models that substitute for the paper's physical testbed and
//! production traces (see DESIGN.md §3 for the substitution table).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
mod census;
mod chaos;
mod driver;
mod failures;
mod metrics;
mod perfmodel;
mod workload;

pub use census::{generate_census, ClusterCensus};
pub use chaos::{su_partition, ChaosConfig, ChaosSchedule};
pub use driver::{PipelineMode, SimDriver, SimEvent, SimMetrics};
pub use failures::{FailureParams, UnavailabilityTrace};
pub use metrics::{box_stats, coefficient_of_variation, percentile, BoxStats, Cdf};
pub use perfmodel::{PerfModel, PerfParams, PlacementProfile, SolveLatencyModel};
pub use workload::{fill_with_batch, GoogleTraceLike, GridMix};
