//! Statistics helpers for the evaluation harness: percentiles, box-plot
//! summaries (the paper's Fig. 7 format), CDFs, and coefficients of
//! variation.

/// Box-plot summary in the paper's format (§7.2): whiskers at p5/p99,
/// box at p25/p75, line at the median.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// 5th percentile (lower whisker).
    pub p5: f64,
    /// 25th percentile (box bottom).
    pub p25: f64,
    /// Median.
    pub p50: f64,
    /// 75th percentile (box top).
    pub p75: f64,
    /// 99th percentile (upper whisker).
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

/// Computes a percentile (0–100) by linear interpolation on a sorted copy.
///
/// Returns `f64::NAN` for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    percentile_sorted(&v, p)
}

/// Computes a percentile on an already-sorted slice.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = (p / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Computes the Fig. 7 box statistics of a sample.
pub fn box_stats(values: &[f64]) -> BoxStats {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(f64::total_cmp);
    let mean = if v.is_empty() {
        f64::NAN
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    };
    BoxStats {
        p5: percentile_sorted(&v, 5.0),
        p25: percentile_sorted(&v, 25.0),
        p50: percentile_sorted(&v, 50.0),
        p75: percentile_sorted(&v, 75.0),
        p99: percentile_sorted(&v, 99.0),
        mean,
    }
}

/// Coefficient of variation (σ/μ); 0 when the mean is 0 or the sample
/// has fewer than two points.
pub fn coefficient_of_variation(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    var.sqrt() / mean.abs()
}

/// An empirical CDF: sorted values with cumulative probabilities, suitable
/// for the paper's CDF figures (2a, 8).
#[derive(Debug, Clone)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from a sample.
    pub fn new(values: impl IntoIterator<Item = f64>) -> Self {
        let mut sorted: Vec<f64> = values.into_iter().collect();
        sorted.sort_by(f64::total_cmp);
        Cdf { sorted }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Returns `true` if the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn probability_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF: the value at quantile `q` in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q * 100.0)
    }

    /// Emits `(value, probability)` points sampled at each data point,
    /// thinned to at most `max_points` (for plotting/CSV output).
    pub fn points(&self, max_points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || max_points == 0 {
            return Vec::new();
        }
        let n = self.sorted.len();
        let step = (n as f64 / max_points as f64).max(1.0);
        let mut out = Vec::new();
        let mut i = 0.0;
        while (i as usize) < n {
            let idx = i as usize;
            out.push((self.sorted[idx], (idx + 1) as f64 / n as f64));
            i += step;
        }
        if out.last().map(|&(v, _)| v) != self.sorted.last().copied() {
            out.push((*self.sorted.last().unwrap(), 1.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert!((percentile(&v, 25.0) - 2.0).abs() < 1e-12);
        assert!((percentile(&v, 10.0) - 1.4).abs() < 1e-12);
    }

    #[test]
    fn percentile_empty_and_single() {
        assert!(percentile(&[], 50.0).is_nan());
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn nan_samples_sort_last_and_keep_order_total() {
        // total_cmp places NaN above every finite value, so a stray NaN
        // sample lands at the top of the sorted order deterministically.
        // The previous partial_cmp(..).unwrap_or(Equal) comparator was not
        // a total order: NaN compared Equal to everything, so the sort
        // result (and every percentile below the NaN) depended on the
        // input permutation.
        let a = [f64::NAN, 3.0, 1.0, 2.0];
        let b = [3.0, 1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&a, 0.0), 1.0);
        assert_eq!(percentile(&a, 0.0), percentile(&b, 0.0));
        // p50 of 4 samples interpolates between ranks 1 and 2 of the
        // sorted order [1, 2, 3, NaN] => 2.5, regardless of where the
        // NaN appeared in the input.
        assert_eq!(percentile(&a, 50.0), 2.5);
        assert_eq!(percentile(&b, 50.0), 2.5);
        let cdf_a = Cdf::new(a);
        let cdf_b = Cdf::new(b);
        assert_eq!(cdf_a.quantile(0.0), cdf_b.quantile(0.0));
        assert_eq!(cdf_a.probability_at(2.0), 0.5);
    }

    #[test]
    fn box_stats_ordering() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = box_stats(&v);
        assert!(b.p5 <= b.p25 && b.p25 <= b.p50 && b.p50 <= b.p75 && b.p75 <= b.p99);
        assert!((b.p50 - 50.5).abs() < 1.0);
        assert!((b.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cv_properties() {
        assert_eq!(coefficient_of_variation(&[5.0, 5.0, 5.0]), 0.0);
        assert_eq!(coefficient_of_variation(&[1.0]), 0.0);
        let uneven = coefficient_of_variation(&[1.0, 9.0]);
        let even = coefficient_of_variation(&[4.0, 6.0]);
        assert!(uneven > even);
    }

    #[test]
    fn cdf_probabilities() {
        let cdf = Cdf::new([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.probability_at(0.5), 0.0);
        assert_eq!(cdf.probability_at(2.0), 0.5);
        assert_eq!(cdf.probability_at(10.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 2.5);
    }

    #[test]
    fn cdf_points_thinning() {
        let cdf = Cdf::new((0..1000).map(|i| i as f64));
        let pts = cdf.points(50);
        assert!(pts.len() <= 52);
        assert_eq!(pts.last().unwrap().1, 1.0);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
