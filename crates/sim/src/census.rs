//! Synthetic cluster census for Fig. 1: the share of machines used for
//! LRAs across six analytics clusters.
//!
//! Substitute for Microsoft's internal census (DESIGN.md §3, substitution
//! 7), generated from the figure's published reading: every cluster
//! dedicates at least 10% of its machines to LRAs, and two of the six are
//! used exclusively for LRAs.

use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// One cluster's LRA census entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterCensus {
    /// Cluster label (C1–C6 in the paper).
    pub name: String,
    /// Total machines (tens of thousands in the paper).
    pub machines: usize,
    /// Fraction of machines running LRAs, in `[0, 1]`.
    pub lra_share: f64,
}

/// Generates the six-cluster census of Fig. 1.
///
/// Four mixed clusters draw their LRA share from `[0.10, 0.65]`
/// (increasing across clusters, as in the figure), and two are dedicated
/// (share 1.0).
pub fn generate_census(seed: u64) -> Vec<ClusterCensus> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(6);
    let mut share_floor: f64 = 0.10;
    for i in 0..4 {
        let ceil = (share_floor + 0.2).min(0.65);
        let share = rng.random_range(share_floor..ceil);
        share_floor = share;
        out.push(ClusterCensus {
            name: format!("C{}", i + 1),
            machines: rng.random_range(20_000..60_000),
            lra_share: share,
        });
    }
    for i in 4..6 {
        out.push(ClusterCensus {
            name: format!("C{}", i + 1),
            machines: rng.random_range(20_000..60_000),
            lra_share: 1.0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_matches_figure_reading() {
        let census = generate_census(1);
        assert_eq!(census.len(), 6);
        // At least 10% everywhere.
        assert!(census.iter().all(|c| c.lra_share >= 0.10));
        // Exactly two dedicated clusters.
        let dedicated = census.iter().filter(|c| c.lra_share >= 0.999).count();
        assert_eq!(dedicated, 2);
        // Tens of thousands of machines each.
        assert!(census.iter().all(|c| c.machines >= 10_000));
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate_census(9), generate_census(9));
    }
}
