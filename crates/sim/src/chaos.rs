//! Deterministic, seeded fault injection (§2.3, §7.3).
//!
//! Turns an [`UnavailabilityTrace`] — hourly per-service-unit
//! unavailability fractions — into a concrete, reproducible schedule of
//! [`SimEvent`]s: correlated node crashes when an SU spikes, recoveries
//! when the spike subsides, an independent baseline crash rate, optional
//! flapping nodes, and injected solver stalls. The same seed always
//! yields the same event sequence, so chaos runs are regression-testable.

use medea_cluster::NodeId;
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

use crate::driver::SimEvent;
use crate::failures::UnavailabilityTrace;

/// Configuration of the chaos engine.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// RNG seed; the schedule is a pure function of (trace, SUs, config).
    pub seed: u64,
    /// Simulation ticks per trace hour.
    pub ticks_per_hour: u64,
    /// SU unavailability fraction at or above which the hour counts as a
    /// correlated outage: that fraction of the SU's nodes is crashed.
    pub spike_threshold: f64,
    /// Scale on the crashed fraction during spikes (1.0 = crash exactly
    /// the trace's fraction of the SU).
    pub crash_fraction_scale: f64,
    /// Per-node, per-hour probability of an independent baseline crash.
    pub baseline_crash_probability: f64,
    /// Downtime of a baseline crash, in ticks.
    pub baseline_downtime: u64,
    /// Number of flapping nodes (repeated crash/recover cycles).
    pub flapping_nodes: usize,
    /// Ticks between a flapping node's crashes.
    pub flap_period: u64,
    /// Crash/recover cycles each flapping node goes through.
    pub flap_cycles: u32,
    /// Per-hour probability of an injected solver stall.
    pub solver_stall_probability: f64,
    /// Scheduling cycles each injected stall lasts.
    pub stall_cycles: u32,
    /// Per-hour probability of a resource-manager crash (RM failover
    /// chaos; 0 disables).
    pub rm_crash_probability: f64,
    /// Ticks the RM stays down per crash before restarting.
    pub rm_outage_ticks: u64,
    /// Per-container probability of dying during each RM outage (the
    /// divergence the anti-entropy reconciliation must repair).
    pub rm_loss_rate: f64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            ticks_per_hour: 3_600,
            spike_threshold: 0.2,
            crash_fraction_scale: 1.0,
            baseline_crash_probability: 0.002,
            baseline_downtime: 1_800,
            flapping_nodes: 0,
            flap_period: 600,
            flap_cycles: 4,
            solver_stall_probability: 0.0,
            stall_cycles: 3,
            rm_crash_probability: 0.0,
            rm_outage_ticks: 5_000,
            rm_loss_rate: 0.0,
        }
    }
}

/// A fully materialized, time-sorted fault-injection schedule.
#[derive(Debug, Clone)]
pub struct ChaosSchedule {
    /// `(tick, event)` pairs in non-decreasing tick order.
    pub events: Vec<(u64, SimEvent)>,
}

impl ChaosSchedule {
    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of node-crash events in the schedule.
    pub fn crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::NodeCrash(_)))
            .count()
    }

    /// Number of injected solver stalls in the schedule.
    pub fn stalls(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::SolverStall { .. }))
            .count()
    }

    /// Number of resource-manager crashes in the schedule.
    pub fn rm_crashes(&self) -> usize {
        self.events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::RmCrash { .. }))
            .count()
    }

    /// Derives a chaos schedule from an unavailability trace.
    ///
    /// `su_nodes[su]` lists the node ids of service unit `su` (see
    /// [`su_partition`] for the homogeneous case). Each trace hour:
    ///
    /// - an SU whose unavailability is at or above the spike threshold
    ///   crashes (fraction × scale) of its nodes, keeping them down while
    ///   the spike lasts and recovering them when it subsides — the
    ///   paper's *correlated* unavailability;
    /// - every up node independently crashes with the baseline
    ///   probability, recovering after the configured downtime;
    /// - a solver stall is injected with the configured probability.
    ///
    /// Flapping nodes (the first `flapping_nodes` nodes of the first SU)
    /// additionally cycle crash → recover with the configured period. At
    /// the end of the trace every node still down is recovered, so a
    /// sufficiently long run always converges to a fully available
    /// cluster.
    pub fn from_trace(
        trace: &UnavailabilityTrace,
        su_nodes: &[Vec<NodeId>],
        cfg: &ChaosConfig,
    ) -> ChaosSchedule {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut events: Vec<(u64, SimEvent)> = Vec::new();
        let sus = su_nodes.len().min(trace.service_units());
        // Per SU: nodes currently down due to the ongoing spike.
        let mut spike_down: Vec<Vec<NodeId>> = vec![Vec::new(); sus];
        // Nodes down for any reason, with the tick they come back (so
        // baseline crashes never target an already-down node).
        let mut down_until: std::collections::HashMap<NodeId, u64> =
            std::collections::HashMap::new();

        for hour in 0..trace.hours() {
            let start = hour as u64 * cfg.ticks_per_hour;
            // Baseline-crashed nodes whose downtime elapsed are up again.
            down_until.retain(|_, back| *back > start);
            for su in 0..sus {
                let f = trace.fractions[hour][su];
                let su_size = su_nodes[su].len();
                let target = if f >= cfg.spike_threshold {
                    (((f * cfg.crash_fraction_scale) * su_size as f64).round() as usize)
                        .min(su_size)
                } else {
                    0
                };
                // Grow the outage: crash additional up nodes of the SU.
                while spike_down[su].len() < target {
                    let candidates: Vec<NodeId> = su_nodes[su]
                        .iter()
                        .copied()
                        .filter(|n| !down_until.contains_key(n))
                        .collect();
                    if candidates.is_empty() {
                        break;
                    }
                    let pick = candidates[rng.random_range(0..candidates.len())];
                    let t = start + rng.random_range(0..cfg.ticks_per_hour);
                    events.push((t, SimEvent::NodeCrash(pick)));
                    spike_down[su].push(pick);
                    down_until.insert(pick, u64::MAX); // until spike ends
                }
                // Shrink the outage: recover nodes beyond the target.
                while spike_down[su].len() > target {
                    let idx = rng.random_range(0..spike_down[su].len());
                    let node = spike_down[su].remove(idx);
                    let t = start + rng.random_range(0..cfg.ticks_per_hour);
                    events.push((t, SimEvent::NodeRecover(node)));
                    down_until.remove(&node);
                }
                // Independent baseline crashes among the SU's up nodes.
                if cfg.baseline_crash_probability > 0.0 {
                    for &node in &su_nodes[su] {
                        if down_until.get(&node).copied().unwrap_or(0) > start {
                            continue;
                        }
                        if rng.random_range(0.0..1.0) < cfg.baseline_crash_probability {
                            let t = start + rng.random_range(0..cfg.ticks_per_hour);
                            let back = t + cfg.baseline_downtime.max(1);
                            events.push((t, SimEvent::NodeCrash(node)));
                            events.push((back, SimEvent::NodeRecover(node)));
                            down_until.insert(node, back);
                        }
                    }
                }
            }
            if cfg.solver_stall_probability > 0.0
                && rng.random_range(0.0..1.0) < cfg.solver_stall_probability
            {
                let t = start + rng.random_range(0..cfg.ticks_per_hour);
                events.push((
                    t,
                    SimEvent::SolverStall {
                        cycles: cfg.stall_cycles,
                    },
                ));
            }
            if cfg.rm_crash_probability > 0.0
                && rng.random_range(0.0..1.0) < cfg.rm_crash_probability
            {
                let t = start + rng.random_range(0..cfg.ticks_per_hour);
                events.push((
                    t,
                    SimEvent::RmCrash {
                        outage_ticks: cfg.rm_outage_ticks,
                        loss_rate: cfg.rm_loss_rate,
                    },
                ));
            }
        }

        // Flapping nodes: repeated short crash/recover cycles, phased
        // randomly within the first hour.
        let flappers: Vec<NodeId> = su_nodes
            .iter()
            .flatten()
            .copied()
            .take(cfg.flapping_nodes)
            .collect();
        for node in flappers {
            let phase = rng.random_range(0..cfg.ticks_per_hour.max(1));
            for cycle in 0..cfg.flap_cycles as u64 {
                let t = phase + cycle * cfg.flap_period.max(2);
                events.push((t, SimEvent::NodeCrash(node)));
                events.push((t + cfg.flap_period.max(2) / 2, SimEvent::NodeRecover(node)));
            }
        }

        // End of trace: bring every still-down node back, so chaos runs
        // converge to a fully available cluster.
        let end = trace.hours() as u64 * cfg.ticks_per_hour;
        let mut still_down: Vec<NodeId> = down_until.keys().copied().collect();
        still_down.sort();
        for node in still_down {
            if down_until[&node] >= end {
                events.push((end, SimEvent::NodeRecover(node)));
            }
        }

        events.sort_by_key(|&(t, _)| t);
        ChaosSchedule { events }
    }
}

/// Splits `num_nodes` nodes into `service_units` contiguous service
/// units, remainder distributed to the first SUs (the homogeneous
/// cluster layout used by the figure binaries).
pub fn su_partition(num_nodes: usize, service_units: usize) -> Vec<Vec<NodeId>> {
    let sus = service_units.max(1);
    let base = num_nodes / sus;
    let extra = num_nodes % sus;
    let mut out = Vec::with_capacity(sus);
    let mut next = 0u32;
    for su in 0..sus {
        let size = base + usize::from(su < extra);
        out.push(
            (0..size)
                .map(|_| {
                    let n = NodeId(next);
                    next += 1;
                    n
                })
                .collect(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failures::FailureParams;

    fn trace() -> UnavailabilityTrace {
        UnavailabilityTrace::generate(
            &FailureParams {
                service_units: 4,
                hours: 48,
                spike_probability: 0.02,
                ..FailureParams::default()
            },
            7,
        )
    }

    #[test]
    fn su_partition_covers_all_nodes() {
        let p = su_partition(10, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.iter().map(Vec::len).sum::<usize>(), 10);
        assert_eq!(p[0].len(), 4); // remainder goes first
        let all: Vec<u32> = p.iter().flatten().map(|n| n.0).collect();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn same_seed_same_schedule() {
        let t = trace();
        let sus = su_partition(40, 4);
        let cfg = ChaosConfig {
            flapping_nodes: 2,
            solver_stall_probability: 0.3,
            ..ChaosConfig::default()
        };
        let a = ChaosSchedule::from_trace(&t, &sus, &cfg);
        let b = ChaosSchedule::from_trace(&t, &sus, &cfg);
        assert!(!a.is_empty(), "chaos schedule must produce events");
        assert_eq!(format!("{:?}", a.events), format!("{:?}", b.events));
    }

    #[test]
    fn different_seed_different_schedule() {
        let t = trace();
        let sus = su_partition(40, 4);
        let a = ChaosSchedule::from_trace(&t, &sus, &ChaosConfig::default());
        let b = ChaosSchedule::from_trace(
            &t,
            &sus,
            &ChaosConfig {
                seed: 1337,
                ..ChaosConfig::default()
            },
        );
        assert_ne!(format!("{:?}", a.events), format!("{:?}", b.events));
    }

    #[test]
    fn schedule_is_time_sorted_and_crashes_precede_matching_recoveries() {
        let t = trace();
        let sus = su_partition(40, 4);
        let s = ChaosSchedule::from_trace(&t, &sus, &ChaosConfig::default());
        assert!(s.events.windows(2).all(|w| w[0].0 <= w[1].0));
        // Every node that crashes eventually recovers (end-of-trace
        // convergence guarantee).
        let mut balance: std::collections::HashMap<NodeId, i64> = std::collections::HashMap::new();
        for (_, e) in &s.events {
            match e {
                SimEvent::NodeCrash(n) => *balance.entry(*n).or_insert(0) += 1,
                SimEvent::NodeRecover(n) => *balance.entry(*n).or_insert(0) -= 1,
                _ => {}
            }
        }
        assert!(
            balance.values().all(|&v| v <= 0),
            "every crash needs a recovery: {balance:?}"
        );
    }

    #[test]
    fn flapping_nodes_flap() {
        let t = trace();
        let sus = su_partition(8, 2);
        let cfg = ChaosConfig {
            flapping_nodes: 1,
            flap_cycles: 3,
            baseline_crash_probability: 0.0,
            ..ChaosConfig::default()
        };
        let s = ChaosSchedule::from_trace(&t, &sus, &cfg);
        let flapper_crashes = s
            .events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::NodeCrash(n) if *n == NodeId(0)))
            .count();
        assert!(flapper_crashes >= 3, "flapper must crash repeatedly");
    }

    #[test]
    fn stall_probability_one_stalls_every_hour() {
        let t = trace();
        let sus = su_partition(8, 2);
        let cfg = ChaosConfig {
            solver_stall_probability: 1.0,
            baseline_crash_probability: 0.0,
            ..ChaosConfig::default()
        };
        let s = ChaosSchedule::from_trace(&t, &sus, &cfg);
        assert_eq!(s.stalls(), t.hours());
    }
}
