//! Synthetic workload generators: GridMix-like batch jobs and a
//! Google-trace-like task stream (DESIGN.md §3, substitutions 4–5).

use medea_cluster::{
    ApplicationId, ClusterState, ContainerRequest, ExecutionKind, NodeId, Resources,
};
use medea_core::TaskJobRequest;
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// GridMix-like batch-job generator (the paper uses GridMix \[24\] to
/// produce Tez jobs resembling production workloads, parameterized by the
/// fraction of cluster memory they occupy).
#[derive(Debug)]
pub struct GridMix {
    rng: StdRng,
    next_app: u64,
    /// Mean tasks per job (heavy-tailed around this).
    pub mean_tasks: usize,
    /// Mean task duration in ticks.
    pub mean_duration: u64,
    /// Per-task memory in MB.
    pub task_memory_mb: u64,
}

impl GridMix {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        GridMix {
            rng: StdRng::seed_from_u64(seed),
            next_app: 1_000_000,
            mean_tasks: 20,
            mean_duration: 30_000,
            task_memory_mb: 1024,
        }
    }

    /// Generates one job: task count is log-uniform in
    /// `[mean/4, mean*4]`, duration log-uniform in `[mean/4, mean*4]`.
    pub fn next_job(&mut self) -> (TaskJobRequest, u64) {
        let app = ApplicationId(self.next_app);
        self.next_app += 1;
        let tasks = log_uniform(&mut self.rng, self.mean_tasks as f64) as usize;
        let duration = log_uniform(&mut self.rng, self.mean_duration as f64) as u64;
        (
            TaskJobRequest::new(app, Resources::new(self.task_memory_mb, 1), tasks.max(1)),
            duration.max(1),
        )
    }

    /// Generates jobs until their aggregate memory demand reaches
    /// `fraction` of the cluster's total memory.
    pub fn jobs_for_fraction(
        &mut self,
        cluster: &ClusterState,
        fraction: f64,
    ) -> Vec<(TaskJobRequest, u64)> {
        let target = (cluster.total_capacity().memory_mb as f64 * fraction) as u64;
        let mut out = Vec::new();
        let mut used = 0u64;
        while used < target {
            let (job, dur) = self.next_job();
            used += job.resources.memory_mb * job.count as u64;
            out.push((job, dur));
        }
        out
    }
}

/// Log-uniform sample in `[mean/4, mean*4]`.
fn log_uniform(rng: &mut StdRng, mean: f64) -> f64 {
    let lo = (mean / 4.0).max(1.0).ln();
    let hi = (mean * 4.0).ln();
    (rng.random_range(lo..hi)).exp()
}

/// Fills the cluster with plain batch containers until its memory
/// utilization reaches `fraction`, spreading round-robin. Returns the
/// allocated container ids (all owned by synthetic `batch` apps).
///
/// This is the static-load shortcut used by the §7.4 experiments, where
/// only the *presence* of batch load matters, not its dynamics.
pub fn fill_with_batch(
    cluster: &mut ClusterState,
    fraction: f64,
    seed: u64,
) -> Vec<medea_cluster::ContainerId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let target = (cluster.total_capacity().memory_mb as f64 * fraction) as u64;
    let mut placed = 0u64;
    let mut out = Vec::new();
    let app = ApplicationId(9_999_999);
    let nodes: Vec<NodeId> = cluster.node_ids().collect();
    let mut attempts = 0;
    while placed < target && attempts < nodes.len() * 64 {
        attempts += 1;
        let node = nodes[rng.random_range(0..nodes.len())];
        let mem = *[512u64, 1024, 2048]
            .get(rng.random_range(0..3usize))
            .unwrap();
        let req = ContainerRequest::new(Resources::new(mem, 1), []);
        if let Ok(id) = cluster.allocate(app, node, &req, ExecutionKind::Task) {
            placed += mem;
            out.push(id);
        }
    }
    out
}

/// Google-cluster-trace-like task stream for the Fig. 11c experiment: a
/// bursty arrival process of small jobs with heavy-tailed task counts and
/// short durations, sped up 200x as in the paper.
#[derive(Debug)]
pub struct GoogleTraceLike {
    rng: StdRng,
    next_app: u64,
    /// Speed-up factor applied to inter-arrival times (paper: 200).
    pub speedup: f64,
    /// Mean inter-arrival time of jobs at 1x speed, in ticks.
    pub mean_interarrival: f64,
}

impl GoogleTraceLike {
    /// Creates a trace generator.
    pub fn new(seed: u64) -> Self {
        GoogleTraceLike {
            rng: StdRng::seed_from_u64(seed),
            next_app: 5_000_000,
            speedup: 200.0,
            mean_interarrival: 60_000.0,
        }
    }

    /// Generates `n` job arrivals as `(time, job, task_duration)`.
    ///
    /// Task counts follow a Zipf-like heavy tail (many 1-task jobs, rare
    /// large fan-outs), durations are log-uniform seconds, matching the
    /// published character of the Google trace.
    pub fn arrivals(&mut self, n: usize) -> Vec<(u64, TaskJobRequest, u64)> {
        let mut out = Vec::with_capacity(n);
        let mut now = 0.0f64;
        for _ in 0..n {
            // Exponential inter-arrival, sped up.
            let u: f64 = self.rng.random_range(1e-9..1.0);
            now += -u.ln() * self.mean_interarrival / self.speedup;
            let app = ApplicationId(self.next_app);
            self.next_app += 1;
            // Heavy-tailed task count: P(k) ~ 1/k^2 truncated at 100.
            let tasks = zipf_like(&mut self.rng, 100);
            let duration = log_uniform(&mut self.rng, 20_000.0) as u64;
            let mem = *[512u64, 1024, 2048]
                .get(self.rng.random_range(0..3usize))
                .unwrap();
            out.push((
                now as u64,
                TaskJobRequest::new(app, Resources::new(mem, 1), tasks),
                duration.max(100),
            ));
        }
        out
    }
}

/// Zipf(2)-like sample in `[1, max]` via inverse transform.
fn zipf_like(rng: &mut StdRng, max: usize) -> usize {
    let u: f64 = rng.random_range(0.0..1.0);
    // Inverse of P(K <= k) ≈ 1 - 1/k for exponent 2.
    let k = (1.0 / (1.0 - u)).floor() as usize;
    k.clamp(1, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gridmix_jobs_reach_target_fraction() {
        let cluster = ClusterState::homogeneous(10, Resources::new(16 * 1024, 16), 2);
        let mut g = GridMix::new(42);
        let jobs = g.jobs_for_fraction(&cluster, 0.5);
        let total: u64 = jobs
            .iter()
            .map(|(j, _)| j.resources.memory_mb * j.count as u64)
            .sum();
        let target = cluster.total_capacity().memory_mb / 2;
        assert!(total >= target);
        assert!(total < target + 200 * 1024, "overshoot bounded by one job");
    }

    #[test]
    fn gridmix_is_deterministic_per_seed() {
        let mut a = GridMix::new(7);
        let mut b = GridMix::new(7);
        for _ in 0..10 {
            let (ja, da) = a.next_job();
            let (jb, db) = b.next_job();
            assert_eq!(ja.count, jb.count);
            assert_eq!(da, db);
        }
    }

    #[test]
    fn fill_reaches_utilization() {
        let mut cluster = ClusterState::homogeneous(10, Resources::new(16 * 1024, 64), 2);
        fill_with_batch(&mut cluster, 0.6, 1);
        let stats = cluster.utilization_stats();
        assert!(
            (stats.mean_memory_utilization - 0.6).abs() < 0.05,
            "got {}",
            stats.mean_memory_utilization
        );
    }

    #[test]
    fn google_trace_arrivals_are_ordered_and_bursty() {
        let mut g = GoogleTraceLike::new(3);
        let arr = g.arrivals(200);
        assert_eq!(arr.len(), 200);
        for w in arr.windows(2) {
            assert!(w[0].0 <= w[1].0);
        }
        // Heavy tail: most jobs small, some large.
        let small = arr.iter().filter(|(_, j, _)| j.count <= 2).count();
        let large = arr.iter().filter(|(_, j, _)| j.count >= 10).count();
        assert!(small > 100, "most jobs should be small, got {small}");
        assert!(large >= 1, "some jobs should fan out");
    }

    #[test]
    fn zipf_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..1000 {
            let k = zipf_like(&mut rng, 50);
            assert!((1..=50).contains(&k));
        }
    }
}
