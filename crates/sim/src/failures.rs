//! Machine-unavailability model (Figs. 3 and 8).
//!
//! Substitute for the Microsoft production traces (DESIGN.md §3,
//! substitution 3), generated from the paper's own characterization
//! (§2.3): clusters are split into *service units* (SUs); per-SU
//! unavailability is "usually below 3% but can spike to 25% or even
//! 100%"; unavailability is strongly correlated *within* an SU, and SUs
//! "tend to fail asynchronously".

use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// Configuration of the synthetic unavailability trace.
#[derive(Debug, Clone, Copy)]
pub struct FailureParams {
    /// Number of service units (the paper's cluster has 25; Fig. 3 shows
    /// 4 of them).
    pub service_units: usize,
    /// Trace length in hours (Fig. 3: 4 days; Fig. 8: 15 days).
    pub hours: usize,
    /// Median baseline hourly unavailability per SU (e.g. 0.01 = 1%).
    pub baseline_median: f64,
    /// Probability per SU-hour that a correlated spike starts.
    pub spike_probability: f64,
    /// Minimum spike magnitude (fraction of the SU down).
    pub spike_min: f64,
    /// Mean spike duration in hours.
    pub spike_duration: f64,
}

impl Default for FailureParams {
    fn default() -> Self {
        FailureParams {
            service_units: 25,
            hours: 15 * 24,
            baseline_median: 0.01,
            spike_probability: 0.004,
            spike_min: 0.25,
            spike_duration: 4.0,
        }
    }
}

/// An hourly per-service-unit unavailability trace.
#[derive(Debug, Clone)]
pub struct UnavailabilityTrace {
    /// `fractions[hour][su]` = fraction of the SU's machines down.
    pub fractions: Vec<Vec<f64>>,
}

impl UnavailabilityTrace {
    /// Generates a trace with the given parameters and seed.
    pub fn generate(params: &FailureParams, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fractions = vec![vec![0.0; params.service_units]; params.hours];
        // Per-SU baseline level (some SUs are chronically worse).
        let baselines: Vec<f64> = (0..params.service_units)
            .map(|_| params.baseline_median * rng.random_range(0.3..3.0))
            .collect();
        // Ongoing spikes: per SU remaining (hours, magnitude).
        let mut spike: Vec<(f64, f64)> = vec![(0.0, 0.0); params.service_units];
        for row in fractions.iter_mut() {
            for su in 0..params.service_units {
                // Spike lifecycle: start, decay, end.
                if spike[su].0 <= 0.0 && rng.random_range(0.0..1.0) < params.spike_probability {
                    let magnitude = if rng.random_range(0.0..1.0) < 0.2 {
                        1.0 // full-SU upgrade
                    } else {
                        rng.random_range(params.spike_min..0.8)
                    };
                    let duration = rng.random_range(1.0..2.0 * params.spike_duration);
                    spike[su] = (duration, magnitude);
                }
                let base = (baselines[su] * rng.random_range(0.5..1.5)).min(0.05);
                let level = if spike[su].0 > 0.0 {
                    spike[su].0 -= 1.0;
                    spike[su].1.max(base)
                } else {
                    base
                };
                row[su] = level.clamp(0.0, 1.0);
            }
        }
        UnavailabilityTrace { fractions }
    }

    /// Number of hours in the trace.
    pub fn hours(&self) -> usize {
        self.fractions.len()
    }

    /// Number of service units.
    pub fn service_units(&self) -> usize {
        self.fractions.first().map(|f| f.len()).unwrap_or(0)
    }

    /// Cluster-total unavailability at an hour (SUs weighted equally,
    /// as the paper's SUs hold a couple of thousand machines each).
    ///
    /// Hours beyond the end of the trace report full availability (0.0),
    /// so callers may probe past the horizon without panicking.
    pub fn total_at(&self, hour: usize) -> f64 {
        let Some(f) = self.fractions.get(hour) else {
            return 0.0;
        };
        if f.is_empty() {
            return 0.0;
        }
        f.iter().sum::<f64>() / f.len() as f64
    }

    /// Expected fraction of unavailable containers for an application
    /// whose containers are distributed as `containers_per_su`.
    ///
    /// Hours beyond the end of the trace report full availability (0.0).
    pub fn app_unavailability(&self, hour: usize, containers_per_su: &[u32]) -> f64 {
        let total: u32 = containers_per_su.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let Some(f) = self.fractions.get(hour) else {
            return 0.0;
        };
        let down: f64 = containers_per_su
            .iter()
            .enumerate()
            .map(|(su, &c)| c as f64 * f.get(su).copied().unwrap_or(0.0))
            .sum();
        down / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> UnavailabilityTrace {
        UnavailabilityTrace::generate(&FailureParams::default(), 42)
    }

    #[test]
    fn shape_matches_params() {
        let t = trace();
        assert_eq!(t.hours(), 360);
        assert_eq!(t.service_units(), 25);
    }

    #[test]
    fn baseline_is_usually_low_with_spikes() {
        // §2.3: "unavailability in a service unit is usually below 3% but
        // can spike to 25% or even 100%".
        let t = trace();
        let mut low = 0usize;
        let mut spiky = 0usize;
        let mut total = 0usize;
        for hour in 0..t.hours() {
            for su in 0..t.service_units() {
                let f = t.fractions[hour][su];
                total += 1;
                if f < 0.03 {
                    low += 1;
                }
                if f >= 0.25 {
                    spiky += 1;
                }
            }
        }
        assert!(low as f64 / total as f64 > 0.85, "baseline should dominate");
        assert!(spiky > 0, "spikes must occur");
    }

    #[test]
    fn sus_fail_asynchronously() {
        // §2.3: when one SU is 100% down, the total stays low (~8%).
        let t = trace();
        for hour in 0..t.hours() {
            let max_su = t.fractions[hour].iter().cloned().fold(0.0f64, f64::max);
            if max_su >= 0.9 {
                assert!(
                    t.total_at(hour) < 0.3,
                    "total should stay far below a single SU's spike"
                );
            }
        }
    }

    #[test]
    fn spread_placement_has_lower_worst_case() {
        // An app spread over all SUs sees at most the average; an app
        // packed in one SU sees that SU's spikes in full.
        let t = trace();
        let spread: Vec<u32> = vec![4; 25];
        let packed: Vec<u32> = {
            let mut v = vec![0; 25];
            v[3] = 100;
            v
        };
        let worst = |per_su: &[u32]| -> f64 {
            (0..t.hours())
                .map(|h| t.app_unavailability(h, per_su))
                .fold(0.0, f64::max)
        };
        assert!(worst(&spread) <= worst(&packed) + 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = UnavailabilityTrace::generate(&FailureParams::default(), 7);
        let b = UnavailabilityTrace::generate(&FailureParams::default(), 7);
        assert_eq!(a.fractions, b.fractions);
    }

    #[test]
    fn empty_app_has_zero_unavailability() {
        let t = trace();
        assert_eq!(t.app_unavailability(0, &[]), 0.0);
        assert_eq!(t.app_unavailability(0, &[0, 0, 0]), 0.0);
    }

    #[test]
    fn out_of_range_hour_is_fully_available() {
        // Regression: probing past the trace horizon used to index-panic.
        let t = trace();
        assert_eq!(t.total_at(t.hours()), 0.0);
        assert_eq!(t.total_at(t.hours() + 1_000_000), 0.0);
        assert_eq!(t.app_unavailability(t.hours(), &[5, 5]), 0.0);
        assert_eq!(t.app_unavailability(usize::MAX, &[5, 5]), 0.0);
        let empty = UnavailabilityTrace { fractions: vec![] };
        assert_eq!(empty.total_at(0), 0.0);
        assert_eq!(empty.app_unavailability(0, &[1]), 0.0);
    }
}
