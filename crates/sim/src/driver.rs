//! Discrete-event simulation driver.
//!
//! Reproduces the paper's simulator (§7.1 "Simulation"): it executes the
//! real Medea scheduler against simulated machines, "merely ignoring RPCs
//! and task execution". Time is in milliseconds. Node heartbeats drive
//! task allocation (as in YARN), the LRA scheduler runs at its configured
//! interval, and task/LRA completions release resources.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use medea_cluster::{ApplicationId, ContainerId, NodeId};
use medea_core::{
    LraDeployment, LraRequest, MedeaScheduler, NodeReport, RestartReport, TaskJobRequest,
};
use medea_journal::{MemoryStorage, Wal};
use medea_obs::{Counter, Gauge, MetricsRegistry};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// A scheduled simulation event.
#[derive(Debug, Clone)]
pub enum SimEvent {
    /// Submit an LRA to Medea.
    SubmitLra(LraRequest),
    /// Submit a task job whose tasks run for `duration` ticks each.
    SubmitTasks {
        /// The job.
        job: TaskJobRequest,
        /// Per-task runtime in ticks.
        duration: u64,
    },
    /// A node heartbeat (auto-rescheduled every heartbeat interval).
    Heartbeat(NodeId),
    /// A task container finishes.
    TaskComplete {
        /// Queue that owns the container.
        queue: String,
        /// The finishing container.
        container: ContainerId,
    },
    /// An LRA finishes and releases all containers and constraints.
    LraComplete(ApplicationId),
    /// A node becomes unavailable (failure, upgrade — §2.3). Containers
    /// stay in the bookkeeping and count as unavailable, matching the
    /// resilience experiments.
    NodeFail(NodeId),
    /// A failed node comes back.
    NodeRecover(NodeId),
    /// A node crashes: every container it hosted is released and the
    /// recovery pipeline re-enqueues the lost LRA containers
    /// ([`MedeaScheduler::node_lost`]). The stronger sibling of
    /// [`SimEvent::NodeFail`], which only flips availability.
    NodeCrash(NodeId),
    /// The ILP solver stalls for the next `cycles` scheduling cycles
    /// (injected fault; counts against the scheduler's circuit breaker).
    SolverStall {
        /// Number of scheduling cycles the stall lasts.
        cycles: u32,
    },
    /// The LRA scheduling interval fires.
    SchedulerTick,
    /// An in-flight LRA solve finishes: the solve latency charged at
    /// propose time has elapsed on the sim clock and the proposal is
    /// validated and committed against live state
    /// ([`PipelineMode::Async`] only). A sharded round proposes several
    /// solves per tick, each with its own ready event, identified by the
    /// driver-assigned `solve` handle.
    LraPlacementReady {
        /// Driver-assigned handle of the solve that completed.
        solve: u64,
    },
    /// The resource manager crashes (RM failover chaos): node ground
    /// truth is frozen at this instant, every in-flight solve dies with
    /// the process, and no event reaches the scheduler until the outage
    /// elapses and [`SimEvent::RmRestart`] re-registers the nodes and
    /// runs [`MedeaScheduler::restart`].
    RmCrash {
        /// Ticks the RM stays down before the restart completes.
        outage_ticks: u64,
        /// Per-container probability of dying during the outage (the
        /// node's re-registration then omits it — the anti-entropy
        /// divergence the restart must repair).
        loss_rate: f64,
    },
    /// The restarted resource manager comes back: nodes re-register
    /// with the ground truth captured at crash time (minus containers
    /// lost during the outage) and the scheduler runs its
    /// work-preserving recovery. Scheduled internally by
    /// [`SimEvent::RmCrash`].
    RmRestart,
}

/// How the LRA solve relates to the simulation clock (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PipelineMode {
    /// Compatibility mode: propose and commit happen inside one
    /// [`SimEvent::SchedulerTick`], and the solve latency *blocks* the
    /// simulated resource manager — every event due while the solve runs
    /// (heartbeats included) is handled only once it completes. This is
    /// the monolithic scheduler the paper argues against.
    #[default]
    Sync,
    /// Medea's pipeline: propose captures a snapshot at the tick, the
    /// solve latency elapses on the sim clock while heartbeats, task
    /// allocations, and chaos events keep interleaving, and a
    /// [`SimEvent::LraPlacementReady`] commits the proposal against live
    /// state (conflicts are resubmitted).
    Async,
}

/// Entry in the event queue, ordered by `(time, sequence)`.
#[derive(Debug)]
struct QueuedEvent {
    time: u64,
    seq: u64,
    event: SimEvent,
}

impl PartialEq for QueuedEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for QueuedEvent {}
impl PartialOrd for QueuedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueuedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Collected simulation measurements.
#[derive(Debug, Default, Clone)]
pub struct SimMetrics {
    /// Scheduling latency of every allocated task container, in ticks.
    pub task_latencies: Vec<u64>,
    /// Scheduling latency of every deployed LRA, in ticks.
    pub lra_latencies: Vec<u64>,
    /// Wall-clock time the LRA placement algorithm spent per batch.
    pub lra_algorithm_times: Vec<std::time::Duration>,
    /// Deployments in commit order.
    pub deployments: Vec<LraDeployment>,
}

/// Pre-resolved `sim.*` series, updated per handled event. Kept as
/// `Arc` handles so the hot event loop never touches the registry map.
#[derive(Debug)]
struct SimObs {
    events: Arc<Counter>,
    heartbeats: Arc<Counter>,
    lra_submissions: Arc<Counter>,
    task_submissions: Arc<Counter>,
    task_completions: Arc<Counter>,
    lra_completions: Arc<Counter>,
    node_failures: Arc<Counter>,
    scheduler_ticks: Arc<Counter>,
    chaos_node_crashes: Arc<Counter>,
    chaos_node_recoveries: Arc<Counter>,
    chaos_solver_stalls: Arc<Counter>,
    chaos_containers_killed: Arc<Counter>,
    placement_readies: Arc<Counter>,
    rm_crashes: Arc<Counter>,
    rm_restarts: Arc<Counter>,
    rm_containers_lost: Arc<Counter>,
    rm_events_deferred: Arc<Counter>,
    clock: Arc<Gauge>,
}

impl SimObs {
    fn new(registry: &MetricsRegistry) -> Self {
        SimObs {
            events: registry.counter("sim.events_total"),
            heartbeats: registry.counter("sim.heartbeats_total"),
            lra_submissions: registry.counter("sim.lra_submissions_total"),
            task_submissions: registry.counter("sim.task_submissions_total"),
            task_completions: registry.counter("sim.task_completions_total"),
            lra_completions: registry.counter("sim.lra_completions_total"),
            node_failures: registry.counter("sim.node_failures_total"),
            scheduler_ticks: registry.counter("sim.scheduler_ticks_total"),
            chaos_node_crashes: registry.counter("sim.chaos_node_crashes_total"),
            chaos_node_recoveries: registry.counter("sim.chaos_node_recoveries_total"),
            chaos_solver_stalls: registry.counter("sim.chaos_solver_stalls_total"),
            chaos_containers_killed: registry.counter("sim.chaos_containers_killed_total"),
            placement_readies: registry.counter("sim.placement_ready_total"),
            rm_crashes: registry.counter("sim.rm_crashes_total"),
            rm_restarts: registry.counter("sim.rm_restarts_total"),
            rm_containers_lost: registry.counter("sim.rm_containers_lost_total"),
            rm_events_deferred: registry.counter("sim.rm_events_deferred_total"),
            clock: registry.gauge("sim.clock_ticks"),
        }
    }
}

/// The simulator: an event queue around a [`MedeaScheduler`].
///
/// # Examples
///
/// ```
/// use medea_sim::SimDriver;
/// use medea_core::{LraAlgorithm, LraRequest, TaskJobRequest};
/// use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
///
/// let cluster = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
/// let mut sim = SimDriver::new(cluster, LraAlgorithm::NodeCandidates, 1_000);
/// sim.schedule(0, medea_sim::SimEvent::SubmitLra(LraRequest::uniform(
///     ApplicationId(1), 2, Resources::new(1024, 1), vec![Tag::new("svc")], vec![])));
/// sim.run_until(5_000);
/// assert_eq!(sim.metrics().deployments.len(), 1);
/// ```
pub struct SimDriver {
    medea: MedeaScheduler,
    queue: BinaryHeap<Reverse<QueuedEvent>>,
    now: u64,
    seq: u64,
    /// Node heartbeat period in ticks (default 1000 = 1 s, YARN-like).
    pub heartbeat_interval: u64,
    metrics: SimMetrics,
    heartbeats_started: bool,
    /// Task runtime per queue (set by the latest `SubmitTasks` per queue).
    queue_durations: std::collections::HashMap<String, u64>,
    default_task_duration: u64,
    /// How LRA solves relate to the sim clock (default [`PipelineMode::Sync`]).
    pipeline: PipelineMode,
    /// Solve latency charged per propose/commit pair.
    solve_latency: crate::SolveLatencyModel,
    /// Proposals awaiting their [`SimEvent::LraPlacementReady`] (async),
    /// keyed by the driver-assigned solve handle. Sharded rounds put
    /// several solves in flight at once; a new round starts only when the
    /// map has drained (the scheduler enforces the same gate). An ordered
    /// map: iteration feeds the determinism audit, and a hash map would
    /// make drain/debug order depend on hasher state.
    inflight: std::collections::BTreeMap<u64, medea_core::InflightSolve>,
    next_solve_id: u64,
    /// In [`PipelineMode::Sync`], the time the simulated resource manager
    /// is blocked until by the last synchronous solve; events due earlier
    /// are handled at this time instead.
    busy_until: u64,
    /// RM failover: tick until which the resource manager is down. While
    /// the RM is down every event except [`SimEvent::RmRestart`] is
    /// deferred to this tick (heartbeats queue up exactly as they would
    /// against a dead RM endpoint).
    rm_down_until: u64,
    /// Seed for sampling container loss during an RM outage (xor'd with
    /// the crash tick, so each outage draws a distinct but reproducible
    /// sequence).
    pub rm_loss_seed: u64,
    /// Node ground truth captured at RM crash time, delivered to
    /// [`MedeaScheduler::restart`] as the nodes' re-registration.
    rm_reports: Option<Vec<NodeReport>>,
    /// Report of the most recent RM restart (test/bench introspection).
    last_restart: Option<RestartReport>,
    obs: Option<SimObs>,
}

impl SimDriver {
    /// Creates a simulator; `lra_interval` is the LRA scheduling interval
    /// in ticks (the paper uses 10 s).
    pub fn new(
        cluster: medea_cluster::ClusterState,
        algorithm: medea_core::LraAlgorithm,
        lra_interval: u64,
    ) -> Self {
        let medea = MedeaScheduler::new(cluster, algorithm, lra_interval);
        let mut sim = SimDriver {
            medea,
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
            heartbeat_interval: 1_000,
            metrics: SimMetrics::default(),
            heartbeats_started: false,
            queue_durations: std::collections::HashMap::new(),
            default_task_duration: 1_000,
            pipeline: PipelineMode::default(),
            solve_latency: crate::SolveLatencyModel::instant(),
            inflight: std::collections::BTreeMap::new(),
            next_solve_id: 0,
            busy_until: 0,
            rm_down_until: 0,
            rm_loss_seed: 0x4D45444541, // "MEDEA" in ASCII
            rm_reports: None,
            last_restart: None,
            obs: None,
        };
        sim.schedule(0, SimEvent::SchedulerTick);
        sim
    }

    /// Wires a metrics registry into the simulator and the wrapped
    /// [`MedeaScheduler`] (which fans it out to the LRA scheduler's ILP
    /// path and the task scheduler), so one registry covers the
    /// `sim.*`, `core.*`, `task.*`, and `solver.*` series.
    pub fn set_metrics(&mut self, registry: Arc<MetricsRegistry>) {
        self.obs = Some(SimObs::new(&registry));
        self.medea.set_metrics(registry);
    }

    /// Builder-style [`SimDriver::set_metrics`].
    pub fn with_metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.set_metrics(registry);
        self
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Selects the placement pipeline mode (default [`PipelineMode::Sync`]).
    pub fn set_pipeline(&mut self, mode: PipelineMode) {
        self.pipeline = mode;
    }

    /// Builder-style [`SimDriver::set_pipeline`].
    pub fn with_pipeline(mut self, mode: PipelineMode) -> Self {
        self.set_pipeline(mode);
        self
    }

    /// The active pipeline mode.
    pub fn pipeline(&self) -> PipelineMode {
        self.pipeline
    }

    /// Sets the solve latency model charged per propose/commit pair.
    pub fn set_solve_latency(&mut self, model: crate::SolveLatencyModel) {
        self.solve_latency = model;
    }

    /// Builder-style [`SimDriver::set_solve_latency`].
    pub fn with_solve_latency(mut self, model: crate::SolveLatencyModel) -> Self {
        self.set_solve_latency(model);
        self
    }

    /// Whether any LRA solve is currently in flight (async pipeline).
    pub fn solve_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Number of LRA solves currently in flight (a sharded round keeps
    /// several concurrent solves).
    pub fn inflight_solves(&self) -> usize {
        self.inflight.len()
    }

    /// Attaches an in-memory write-ahead journal to the scheduler (with
    /// the given periodic checkpoint cadence in ticks; 0 = only the
    /// initial checkpoint) and returns the backing storage so tests can
    /// inspect or corrupt it. [`SimEvent::RmCrash`] works without a
    /// journal too — the restart then reconciles the surviving in-memory
    /// state — but only a journaled run exercises the restore path.
    pub fn enable_journal(&mut self, checkpoint_interval: u64) -> MemoryStorage {
        let storage = MemoryStorage::new();
        self.medea
            .attach_journal(Wal::new(storage.clone()), checkpoint_interval)
            .expect("in-memory journal attach cannot fail");
        storage
    }

    /// Report of the most recent RM restart, if any.
    pub fn last_restart(&self) -> Option<&RestartReport> {
        self.last_restart.as_ref()
    }

    /// Whether the simulated resource manager is currently down.
    pub fn rm_down(&self) -> bool {
        self.now < self.rm_down_until
    }

    /// The scheduler under simulation.
    pub fn medea(&self) -> &MedeaScheduler {
        &self.medea
    }

    /// Mutable access to the scheduler (failure injection, configuration).
    pub fn medea_mut(&mut self) -> &mut MedeaScheduler {
        &mut self.medea
    }

    /// Collected measurements.
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// Schedules an event at an absolute time (>= now).
    pub fn schedule(&mut self, time: u64, event: SimEvent) {
        let time = time.max(self.now);
        self.queue.push(Reverse(QueuedEvent {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Starts periodic heartbeats for every node, staggered across the
    /// heartbeat interval (as real node managers are).
    pub fn start_heartbeats(&mut self) {
        if self.heartbeats_started {
            return;
        }
        self.heartbeats_started = true;
        let nodes: Vec<NodeId> = self.medea.state().node_ids().collect();
        let n = nodes.len().max(1) as u64;
        for (i, node) in nodes.into_iter().enumerate() {
            let offset = (i as u64 * self.heartbeat_interval) / n;
            self.schedule(self.now + offset, SimEvent::Heartbeat(node));
        }
    }

    /// Schedules every event of a chaos schedule (see
    /// [`crate::ChaosSchedule`]).
    pub fn inject_chaos(&mut self, schedule: &crate::ChaosSchedule) {
        for (t, e) in &schedule.events {
            self.schedule(*t, e.clone());
        }
    }

    /// Runs all events up to and including `end`, advancing time.
    ///
    /// In [`PipelineMode::Sync`], events due while a synchronous solve
    /// blocked the resource manager are handled at the time the solve
    /// completes (`busy_until`) — this is how a monolithic tick inflates
    /// task-scheduling latency. Time never moves backwards and can end
    /// past `end` if a solve straddles the boundary.
    pub fn run_until(&mut self, end: u64) {
        loop {
            match self.queue.peek() {
                Some(Reverse(head)) if head.time <= end => {}
                _ => break,
            }
            let Some(Reverse(ev)) = self.queue.pop() else {
                break;
            };
            self.now = ev.time.max(self.busy_until).max(self.now);
            self.handle(ev.event);
        }
        self.now = self.now.max(end);
    }

    /// Runs until `safety_limit`, then reports whether the run actually
    /// drained: `true` when no non-periodic event remains queued and no
    /// LRA solve is in flight; `false` when the safety limit truncated
    /// outstanding work (periodic heartbeats and scheduler ticks
    /// reschedule themselves forever and do not count).
    #[must_use = "a false return means the run was truncated at the safety limit"]
    pub fn run_to_completion(&mut self, safety_limit: u64) -> bool {
        self.run_until(safety_limit);
        self.inflight.is_empty()
            && !self.queue.iter().any(|Reverse(q)| {
                !matches!(q.event, SimEvent::Heartbeat(_) | SimEvent::SchedulerTick)
            })
    }

    fn handle(&mut self, event: SimEvent) {
        // RM outage: the resource manager's endpoint is dead, so every
        // event that would reach it is redelivered once the restart
        // completes — before observability counting, because a deferred
        // event has not happened yet. RmRestart itself must get through.
        if self.now < self.rm_down_until && !matches!(event, SimEvent::RmRestart) {
            if let Some(obs) = &self.obs {
                obs.rm_events_deferred.inc();
            }
            let at = self.rm_down_until;
            self.schedule(at, event);
            return;
        }
        if let Some(obs) = &self.obs {
            obs.events.inc();
            obs.clock.set(self.now as i64);
            match &event {
                SimEvent::SubmitLra(_) => obs.lra_submissions.inc(),
                SimEvent::SubmitTasks { .. } => obs.task_submissions.inc(),
                SimEvent::Heartbeat(_) => obs.heartbeats.inc(),
                SimEvent::TaskComplete { .. } => obs.task_completions.inc(),
                SimEvent::LraComplete(_) => obs.lra_completions.inc(),
                SimEvent::NodeFail(_) => obs.node_failures.inc(),
                SimEvent::NodeRecover(_) => obs.chaos_node_recoveries.inc(),
                SimEvent::NodeCrash(_) => obs.chaos_node_crashes.inc(),
                SimEvent::SolverStall { .. } => obs.chaos_solver_stalls.inc(),
                SimEvent::SchedulerTick => obs.scheduler_ticks.inc(),
                SimEvent::LraPlacementReady { .. } => obs.placement_readies.inc(),
                SimEvent::RmCrash { .. } => obs.rm_crashes.inc(),
                SimEvent::RmRestart => obs.rm_restarts.inc(),
            }
        }
        match event {
            SimEvent::SubmitLra(req) => {
                // Validation failures surface as missing deployments, which
                // the experiment harness asserts on.
                let _ = self.medea.submit_lra(req, self.now);
            }
            SimEvent::SubmitTasks { job, duration } => {
                let queue = job.queue.clone();
                if self.medea.submit_tasks(job, self.now).is_ok() {
                    // Task runtimes are uniform per (queue, latest job); the
                    // heartbeat handler uses this to schedule completions.
                    self.queue_durations.insert(queue, duration);
                }
            }
            SimEvent::Heartbeat(node) => {
                let allocs = self.medea.heartbeat(node, self.now);
                for a in allocs {
                    self.metrics.task_latencies.push(a.latency);
                    let queue = "default".to_string();
                    let duration = self.duration_for_queue(&queue);
                    self.schedule(
                        self.now + duration,
                        SimEvent::TaskComplete {
                            queue,
                            container: a.container,
                        },
                    );
                }
                if self.heartbeats_started {
                    self.schedule(
                        self.now + self.heartbeat_interval,
                        SimEvent::Heartbeat(node),
                    );
                }
            }
            SimEvent::TaskComplete { queue, container } => {
                self.medea.complete_task(&queue, container);
            }
            SimEvent::LraComplete(app) => {
                self.medea.complete_lra(app);
            }
            SimEvent::NodeFail(node) => {
                let _ = self.medea.state_mut().set_available(node, false);
            }
            SimEvent::NodeRecover(node) => {
                // Also clears fault-domain marks if the node crashed.
                self.medea.node_recovered(node);
            }
            SimEvent::NodeCrash(node) => {
                let report = self.medea.node_lost(node, self.now);
                let killed = report.lra_containers_lost + report.task_containers_lost;
                if let Some(obs) = &self.obs {
                    obs.chaos_containers_killed.add(killed as u64);
                }
            }
            SimEvent::SolverStall { cycles } => {
                self.medea.inject_solver_stall(cycles);
            }
            SimEvent::SchedulerTick => {
                match self.pipeline {
                    PipelineMode::Sync => {
                        // The monolithic tick blocks the RM for the whole
                        // round: solves run back-to-back (one solver
                        // thread), each commits when its latency elapses,
                        // and every event due in between waits.
                        let mut at = self.now;
                        for solve in self.medea.propose_all(self.now) {
                            at += self
                                .solve_latency
                                .latency_ticks(solve.lras(), solve.containers());
                            self.busy_until = self.busy_until.max(at);
                            let deployed = self.medea.commit(at, solve);
                            self.record_deployments(deployed);
                        }
                    }
                    PipelineMode::Async => {
                        // At most one round in flight; a tick that fires
                        // mid-round is skipped (propose also guards this)
                        // and the queue waits for the next interval. A
                        // sharded round yields several solves, each with
                        // its own latency and ready event.
                        if self.inflight.is_empty() {
                            for solve in self.medea.propose_all(self.now) {
                                let lat = self
                                    .solve_latency
                                    .latency_ticks(solve.lras(), solve.containers());
                                let id = self.next_solve_id;
                                self.next_solve_id += 1;
                                self.inflight.insert(id, solve);
                                self.schedule(
                                    self.now + lat,
                                    SimEvent::LraPlacementReady { solve: id },
                                );
                            }
                        }
                    }
                }
                let interval = self.medea.interval.max(1);
                self.schedule(self.now + interval, SimEvent::SchedulerTick);
            }
            SimEvent::LraPlacementReady { solve } => {
                if let Some(solve) = self.inflight.remove(&solve) {
                    let deployed = self.medea.commit(self.now, solve);
                    self.record_deployments(deployed);
                }
            }
            SimEvent::RmCrash {
                outage_ticks,
                loss_rate,
            } => {
                // Freeze node ground truth at the instant of the crash.
                // Nothing mutates cluster state during the outage (every
                // event is deferred), so this is also what nodes report
                // when they re-register — minus the containers that die
                // while the RM is down, sampled here with a seed derived
                // from the crash tick for reproducibility.
                let mut rng = StdRng::seed_from_u64(self.rm_loss_seed ^ self.now);
                let mut lost = 0u64;
                let state = self.medea.state();
                let mut reports = Vec::new();
                for node in state.node_ids() {
                    let mut containers: Vec<ContainerId> = state
                        .containers_on(node)
                        .map(|c| c.to_vec())
                        .unwrap_or_default();
                    if loss_rate > 0.0 {
                        containers.retain(|_| {
                            if rng.random_range(0.0..1.0) < loss_rate {
                                lost += 1;
                                false
                            } else {
                                true
                            }
                        });
                    }
                    reports.push(NodeReport {
                        node,
                        available: state.is_available(node),
                        containers,
                    });
                }
                self.rm_reports = Some(reports);
                // In-flight solves die with the RM process; their stale
                // LraPlacementReady events no-op against the empty map
                // (and the scheduler refuses stale solve ids anyway).
                self.inflight.clear();
                self.rm_down_until = self.now + outage_ticks.max(1);
                if let Some(obs) = &self.obs {
                    obs.rm_containers_lost.add(lost);
                }
                let at = self.rm_down_until;
                self.schedule(at, SimEvent::RmRestart);
            }
            SimEvent::RmRestart => {
                self.rm_down_until = 0;
                // A restart with no preceding crash (manually scheduled)
                // re-registers nodes with exactly what the scheduler
                // believes — zero divergence — rather than treating the
                // whole cluster as silent.
                let reports = self.rm_reports.take().unwrap_or_else(|| {
                    let state = self.medea.state();
                    state
                        .node_ids()
                        .map(|node| NodeReport {
                            node,
                            available: state.is_available(node),
                            containers: state
                                .containers_on(node)
                                .map(|c| c.to_vec())
                                .unwrap_or_default(),
                        })
                        .collect()
                });
                let report = self
                    .medea
                    .restart(self.now, &reports)
                    .expect("journal restore failed at RM restart");
                assert!(
                    report.audit_error.is_none(),
                    "post-restart invariant audit failed: {:?}",
                    report.audit_error
                );
                self.last_restart = Some(report);
            }
        }
    }

    fn record_deployments(&mut self, deployed: Vec<LraDeployment>) {
        for d in deployed {
            self.metrics.lra_latencies.push(d.latency_ticks);
            self.metrics.lra_algorithm_times.push(d.algorithm_time);
            self.metrics.deployments.push(d);
        }
    }

    fn duration_for_queue(&self, queue: &str) -> u64 {
        self.queue_durations
            .get(queue)
            .copied()
            .unwrap_or(self.default_task_duration)
    }

    /// Sets the default task duration used when no job set one.
    pub fn set_default_task_duration(&mut self, ticks: u64) {
        self.default_task_duration = ticks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use medea_cluster::{ClusterState, Resources, Tag};
    use medea_core::LraAlgorithm;

    fn sim() -> SimDriver {
        let cluster = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
        SimDriver::new(cluster, LraAlgorithm::Serial, 1_000)
    }

    #[test]
    fn lra_deploys_at_interval() {
        let mut s = sim();
        let req = LraRequest::uniform(
            ApplicationId(1),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("a")],
            vec![],
        );
        s.schedule(100, SimEvent::SubmitLra(req));
        s.run_until(3_000);
        assert_eq!(s.metrics().deployments.len(), 1);
        // Submitted at 100, deployed at the next tick (1000): latency 900.
        assert_eq!(s.metrics().lra_latencies[0], 900);
    }

    #[test]
    fn tasks_allocate_on_heartbeats_and_complete() {
        let mut s = sim();
        s.set_default_task_duration(500);
        s.start_heartbeats();
        s.schedule(
            0,
            SimEvent::SubmitTasks {
                job: TaskJobRequest::new(ApplicationId(2), Resources::new(512, 1), 4),
                duration: 500,
            },
        );
        s.run_until(10_000);
        assert_eq!(s.metrics().task_latencies.len(), 4);
        // All tasks completed and released.
        assert_eq!(s.medea().state().num_containers(), 0);
    }

    #[test]
    fn lra_completion_releases() {
        let mut s = sim();
        let req = LraRequest::uniform(
            ApplicationId(3),
            2,
            Resources::new(1024, 1),
            vec![Tag::new("a")],
            vec![],
        );
        s.schedule(0, SimEvent::SubmitLra(req));
        s.schedule(5_000, SimEvent::LraComplete(ApplicationId(3)));
        s.run_until(10_000);
        assert_eq!(s.medea().state().num_containers(), 0);
    }

    #[test]
    fn node_failure_blocks_and_recovery_restores_allocation() {
        let cluster = ClusterState::homogeneous(1, Resources::new(8192, 8), 1);
        let mut s = SimDriver::new(cluster, LraAlgorithm::Serial, 1_000);
        s.start_heartbeats();
        s.schedule(0, SimEvent::NodeFail(medea_cluster::NodeId(0)));
        s.schedule(
            100,
            SimEvent::SubmitTasks {
                job: TaskJobRequest::new(ApplicationId(1), Resources::new(512, 1), 1),
                duration: 60_000,
            },
        );
        s.run_until(3_000);
        assert!(
            s.metrics().task_latencies.is_empty(),
            "failed node allocates nothing"
        );
        s.schedule(3_000, SimEvent::NodeRecover(medea_cluster::NodeId(0)));
        s.run_until(6_000);
        assert_eq!(s.metrics().task_latencies.len(), 1);
    }

    #[test]
    fn node_crash_releases_and_recovery_pipeline_replaces() {
        let mut s = sim();
        s.schedule(
            0,
            SimEvent::SubmitLra(LraRequest::uniform(
                ApplicationId(1),
                3,
                Resources::new(1024, 1),
                vec![Tag::new("svc")],
                vec![],
            )),
        );
        s.run_until(2_000);
        assert_eq!(s.metrics().deployments.len(), 1);
        let victim = s.metrics().deployments[0].nodes[0];
        let on_victim = s.metrics().deployments[0]
            .nodes
            .iter()
            .filter(|&&n| n == victim)
            .count();
        s.schedule(2_500, SimEvent::NodeCrash(victim));
        s.run_until(20_000);
        let r = s.medea().recovery_report();
        assert_eq!(r.containers_lost, on_victim);
        assert_eq!(r.containers_replaced, on_victim);
        assert!(r.accounted());
        // The replacement deployment is flagged as recovered.
        assert!(s.metrics().deployments.iter().any(|d| d.recovered));
        // The crashed node hosts nothing until it recovers.
        assert!(s.medea().state().containers_on(victim).unwrap().is_empty());
        s.schedule(20_500, SimEvent::NodeRecover(victim));
        s.run_until(21_000);
        assert!(s.medea().state().is_available(victim));
    }

    #[test]
    fn solver_stall_event_reaches_breaker() {
        let cluster = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
        let mut s = SimDriver::new(cluster, LraAlgorithm::Ilp, 1_000);
        s.schedule(0, SimEvent::SolverStall { cycles: 10 });
        for i in 0..4u64 {
            s.schedule(
                i * 1_000,
                SimEvent::SubmitLra(LraRequest::uniform(
                    ApplicationId(i + 1),
                    1,
                    Resources::new(512, 1),
                    vec![Tag::new("x")],
                    vec![],
                )),
            );
        }
        s.run_until(5_000);
        // Default threshold is 3 consecutive failures: the breaker is
        // open (or probing) by now, yet every LRA still deployed via the
        // degraded heuristic — no placement was lost to the stall.
        assert_ne!(s.medea().breaker_state(), medea_core::BreakerState::Closed);
        assert_eq!(s.metrics().deployments.len(), 4);
    }

    #[test]
    fn metrics_cover_sim_core_and_task_series() {
        let registry = MetricsRegistry::new();
        let mut s = sim().with_metrics(Arc::clone(&registry));
        s.start_heartbeats();
        s.schedule(
            0,
            SimEvent::SubmitLra(LraRequest::uniform(
                ApplicationId(1),
                2,
                Resources::new(1024, 1),
                vec![Tag::new("a")],
                vec![],
            )),
        );
        s.schedule(
            0,
            SimEvent::SubmitTasks {
                job: TaskJobRequest::new(ApplicationId(2), Resources::new(512, 1), 4),
                duration: 500,
            },
        );
        s.run_until(5_000);
        let snap = registry.snapshot();
        assert!(snap.counter("sim.events_total").unwrap() > 0);
        assert!(snap.counter("sim.heartbeats_total").unwrap() > 0);
        assert!(snap.counter("sim.scheduler_ticks_total").unwrap() > 0);
        assert!(snap.counter("core.cycles_total").unwrap() > 0);
        assert_eq!(snap.counter("core.lras_deployed_total"), Some(1));
        assert!(snap.counter("task.heartbeats_total").unwrap() > 0);
        assert_eq!(snap.counter("task.allocations_total"), Some(4));
        assert_eq!(snap.gauge("sim.clock_ticks"), Some(5_000));
    }

    #[test]
    fn time_advances_monotonically() {
        let mut s = sim();
        s.run_until(1_234);
        assert_eq!(s.now(), 1_234);
        s.run_until(2_000);
        assert_eq!(s.now(), 2_000);
    }
}
