//! Application performance model.
//!
//! Substitute for the paper's physical 400-node testbed (DESIGN.md §3,
//! substitution 2): application runtime is modelled as
//!
//! ```text
//! runtime = base × (1 + I + N + E) × noise
//! ```
//!
//! where, for an application whose workers sit on nodes `n` with per-node
//! worker counts `w_n`, spanning `S` nodes and `R` racks:
//!
//! - `I` — intra-node interference: workers collocated beyond isolation
//!   capacity contend for CPU caches, memory bandwidth, and I/O;
//!   convex in the collocation count:
//!   `I = ι · mean_n(w_n · (w_n − 1)^p) / mean(w)`.
//! - `N` — network/synchronization cost: saturating in the number of
//!   nodes and racks spanned: `N = ν_node (1 − 1/S) + ν_rack (R − 1)`.
//! - `E` — external interference: spanning more nodes raises the chance
//!   of landing next to a busy one (straggler effect; iterative jobs run
//!   at the pace of their slowest worker):
//!   `E = ε · u_ext · ln(1 + S)`.
//!
//! These three terms are exactly the effects the paper measures: affinity
//! trades `N` against `I` (Fig. 2a), anti-affinity removes `I` (Fig. 2b),
//! and cardinality balances all three with a load-dependent sweet spot
//! (Figs. 2c/2d). cgroups-style isolation removes the OS-manageable share
//! of `I`/`E` but not cache or memory-bandwidth contention (§2.2), which
//! is why it cannot replace anti-affinity.

use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, Tag};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};

/// Parameters of the performance model.
#[derive(Debug, Clone, Copy)]
pub struct PerfParams {
    /// `ι`: intra-node interference coefficient.
    pub intra_interference: f64,
    /// `p`: convexity exponent of collocation interference.
    pub interference_exponent: f64,
    /// `ν_node`: node-spread network cost (saturating).
    pub network_node: f64,
    /// `ν_rack`: per-extra-rack network cost.
    pub network_rack: f64,
    /// `ε`: external-interference (straggler) coefficient.
    pub external_interference: f64,
    /// I/O-bound interference coefficient (region servers contend for
    /// disk and network I/O much harder than compute workers; Fig. 2b).
    pub io_interference: f64,
    /// Fraction of `I` and `E` removable by OS-level isolation (cgroups);
    /// the remainder models cache/memory-bandwidth contention.
    pub isolable_share: f64,
    /// Multiplicative log-normal noise sigma.
    pub noise_sigma: f64,
}

impl Default for PerfParams {
    fn default() -> Self {
        PerfParams {
            intra_interference: 0.004,
            interference_exponent: 1.6,
            network_node: 0.2,
            network_rack: 0.25,
            external_interference: 0.55,
            io_interference: 0.15,
            isolable_share: 0.45,
            noise_sigma: 0.04,
        }
    }
}

impl PerfParams {
    /// Parameters for I/O-bound services (HBase region servers): much
    /// stronger collocation interference (disk and network contention)
    /// with a flatter exponent than the compute-bound default.
    pub fn io_bound() -> Self {
        PerfParams {
            intra_interference: 0.05,
            interference_exponent: 1.3,
            ..PerfParams::default()
        }
    }
}

/// A placement summary: what the model actually consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementProfile {
    /// Workers per occupied node.
    pub workers_per_node: Vec<u32>,
    /// Number of distinct racks spanned.
    pub racks: usize,
    /// Mean external (non-this-app) memory utilization of occupied nodes.
    pub external_utilization: f64,
}

impl PlacementProfile {
    /// Extracts the profile of an application's workers from live state.
    ///
    /// `workers_per_node` counts *all* containers carrying the worker tag
    /// on each node hosting at least one of the app's workers — the
    /// contention a worker experiences comes from every same-kind
    /// neighbour, same app or not, which is precisely why the paper's
    /// cardinality constraint (ii) is inter-application (§7.1).
    pub fn of_app(state: &ClusterState, app: ApplicationId, worker_tag: &Tag) -> Self {
        let mut per_node: std::collections::HashMap<medea_cluster::NodeId, u32> =
            std::collections::HashMap::new();
        for &cid in state.app_containers(app) {
            if let Ok(a) = state.allocation(cid) {
                if a.tags.contains(worker_tag) {
                    per_node.insert(a.node, state.gamma(a.node, worker_tag));
                }
            }
        }
        let mut racks: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut ext = 0.0;
        for &node in per_node.keys() {
            if let Ok(sets) = state.groups().sets_containing(&NodeGroupId::rack(), node) {
                racks.extend(sets);
            }
            // External utilization: total node utilization minus this
            // app's share on that node.
            let cap = state.node(node).map(|n| n.capacity).unwrap_or_default();
            let own: medea_cluster::Resources = state
                .containers_on(node)
                .unwrap_or(&[])
                .iter()
                .filter_map(|&c| state.allocation(c).ok())
                .filter(|a| a.app == app)
                .map(|a| a.resources)
                .sum();
            let util = state.memory_utilization(node) - own.memory_share(&cap);
            ext += util.max(0.0);
        }
        let n = per_node.len().max(1);
        PlacementProfile {
            workers_per_node: per_node.into_values().collect(),
            racks: racks.len().max(1),
            external_utilization: ext / n as f64,
        }
    }

    /// Synthetic profile: `total` workers packed `per_node` at a time
    /// (the §2.2 cardinality sweeps), with given rack span and external
    /// utilization.
    pub fn packed(total: u32, per_node: u32, racks: usize, external_utilization: f64) -> Self {
        let per_node = per_node.clamp(1, total.max(1));
        let full = (total / per_node) as usize;
        let rem = total % per_node;
        let mut workers_per_node = vec![per_node; full];
        if rem > 0 {
            workers_per_node.push(rem);
        }
        PlacementProfile {
            workers_per_node,
            racks,
            external_utilization,
        }
    }

    /// Number of nodes spanned.
    pub fn nodes(&self) -> usize {
        self.workers_per_node.len()
    }

    /// Total workers.
    pub fn total_workers(&self) -> u32 {
        self.workers_per_node.iter().sum()
    }
}

/// The performance model.
#[derive(Debug, Clone, Copy, Default)]
pub struct PerfModel {
    /// Model parameters.
    pub params: PerfParams,
    /// Whether cgroups-style isolation is enabled.
    pub cgroups: bool,
}

impl PerfModel {
    /// Creates a model with default parameters, no cgroups.
    pub fn new() -> Self {
        PerfModel::default()
    }

    /// Creates a model with [`PerfParams::io_bound`] parameters.
    pub fn io_bound() -> Self {
        PerfModel {
            params: PerfParams::io_bound(),
            cgroups: false,
        }
    }

    /// Enables cgroups-style OS isolation.
    pub fn with_cgroups(mut self) -> Self {
        self.cgroups = true;
        self
    }

    /// The slowdown factor `1 + I + N + E` for a placement (no noise).
    pub fn slowdown(&self, profile: &PlacementProfile) -> f64 {
        let p = &self.params;
        let total: f64 = profile.total_workers().max(1) as f64;
        let s = profile.nodes().max(1) as f64;

        // Intra-node interference, worker-weighted.
        let i_raw: f64 = profile
            .workers_per_node
            .iter()
            .map(|&w| w as f64 * ((w.saturating_sub(1)) as f64).powf(p.interference_exponent))
            .sum::<f64>()
            / total;
        // Network cost.
        let n_cost = p.network_node * (1.0 - 1.0 / s)
            + p.network_rack * (profile.racks.saturating_sub(1)) as f64;
        // External straggler interference.
        let e_raw = p.external_interference * profile.external_utilization * (1.0 + s).ln();

        let isolation = if self.cgroups { p.isolable_share } else { 0.0 };
        let i = p.intra_interference * i_raw * (1.0 - isolation);
        let e = e_raw * (1.0 - 0.5 * isolation);
        1.0 + i + n_cost + e
    }

    /// Runtime of a job with the given base duration and placement,
    /// with deterministic seeded noise.
    pub fn runtime(&self, base: f64, profile: &PlacementProfile, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let noise = lognormal(&mut rng, self.params.noise_sigma);
        base * self.slowdown(profile) * noise
    }

    /// YCSB-style throughput (Kops/s) of a store whose region servers have
    /// `collocated` same-role neighbours per node on average, under
    /// external batch utilization `batch_util` (Fig. 2b).
    ///
    /// Region servers are I/O-bound: collocation contends for disk and
    /// network bandwidth (the `io_interference` coefficient), of which
    /// cgroups can isolate only the OS-manageable share.
    pub fn ycsb_throughput(&self, base_kops: f64, collocated: u32, batch_util: f64) -> f64 {
        let p = &self.params;
        let isolation = if self.cgroups { p.isolable_share } else { 0.0 };
        let io = p.io_interference * (collocated as f64).powf(1.3) * (1.0 - isolation);
        let ext = p.external_interference * batch_util * 2.0f64.ln() * (1.0 - 0.5 * isolation);
        base_kops / (1.0 + io + ext)
    }

    /// Memcached lookup-latency samples for the §2.2 Storm pipeline
    /// (Fig. 2a): collocating Storm with Memcached removes the network
    /// round trip from the lookup path.
    pub fn lookup_latency_samples(&self, collocated: bool, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        let base_ms = if collocated { 28.0 } else { 130.0 };
        (0..n)
            .map(|_| base_ms * lognormal(&mut rng, 0.45))
            .collect()
    }
}

/// Deterministic model of ILP solve latency on the simulation clock.
///
/// The paper's premise for running the LRA scheduler off the critical
/// path (§5.3) is that constraint solves take real time — seconds at
/// cluster scale — during which the task scheduler must keep serving
/// heartbeats. The simulator charges this latency between
/// [propose](medea_core::MedeaScheduler::propose) and
/// [commit](medea_core::MedeaScheduler::commit): affine in the batch
/// size, in integer ticks, so fixed-seed runs stay bit-reproducible (no
/// wall-clock feeds back into simulated decisions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveLatencyModel {
    /// Fixed per-solve overhead in ticks (model build, warm start).
    pub base_ticks: u64,
    /// Marginal ticks per LRA in the batch.
    pub per_lra_ticks: u64,
    /// Marginal ticks per requested container in the batch.
    pub per_container_ticks: u64,
}

impl Default for SolveLatencyModel {
    fn default() -> Self {
        SolveLatencyModel::instant()
    }
}

impl SolveLatencyModel {
    /// Zero-latency model: commit lands on the same tick as propose.
    pub fn instant() -> Self {
        SolveLatencyModel {
            base_ticks: 0,
            per_lra_ticks: 0,
            per_container_ticks: 0,
        }
    }

    /// ILP-like latency: hundreds of milliseconds of fixed cost plus a
    /// per-LRA and per-container term, calibrated so a typical
    /// evaluation batch solves within (but a large fraction of) the
    /// paper's 10 s scheduling interval.
    pub fn ilp_like() -> Self {
        SolveLatencyModel {
            base_ticks: 400,
            per_lra_ticks: 150,
            per_container_ticks: 25,
        }
    }

    /// Fixed latency regardless of batch size (deadline-style solves).
    pub fn fixed(ticks: u64) -> Self {
        SolveLatencyModel {
            base_ticks: ticks,
            per_lra_ticks: 0,
            per_container_ticks: 0,
        }
    }

    /// Solve latency in ticks for a batch of `lras` LRAs requesting
    /// `containers` containers in total.
    pub fn latency_ticks(&self, lras: usize, containers: usize) -> u64 {
        self.base_ticks
            + self.per_lra_ticks * lras as u64
            + self.per_container_ticks * containers as u64
    }
}

/// Log-normal multiplicative noise with median 1.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    // Box-Muller from two uniforms.
    let u1: f64 = rng.random_range(1e-12..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep_optimum(external: f64, total: u32) -> u32 {
        let model = PerfModel::new();
        let mut best = (1u32, f64::INFINITY);
        for &c in &[1u32, 2, 4, 8, 16, 32] {
            if c > total {
                break;
            }
            let prof = PlacementProfile::packed(total, c, 1, external);
            let s = model.slowdown(&prof);
            if s < best.1 {
                best = (c, s);
            }
        }
        best.0
    }

    #[test]
    fn cardinality_sweet_spot_shifts_with_load() {
        // §2.2: "the optimal cardinality value is 16 for the highly
        // utilized cluster and 4 for the less utilized one" (TensorFlow,
        // 32 workers). The model must reproduce the *shift*: higher
        // external load favours more collocation.
        let low = sweep_optimum(0.05, 32);
        let high = sweep_optimum(0.70, 32);
        assert!(
            low < high,
            "low-util optimum {low} should be below high-util {high}"
        );
        assert!(
            low >= 2,
            "full anti-affinity should not be optimal at low load"
        );
        assert!(
            high <= 16,
            "full affinity should not be optimal at high load"
        );
    }

    #[test]
    fn extremes_are_suboptimal_under_load() {
        // Fig. 2d: at high utilization, cardinality 16 beats both 32
        // (affinity) and 1 (anti-affinity).
        let model = PerfModel::new();
        let s1 = model.slowdown(&PlacementProfile::packed(32, 1, 1, 0.7));
        let s16 = model.slowdown(&PlacementProfile::packed(32, 16, 1, 0.7));
        let s32 = model.slowdown(&PlacementProfile::packed(32, 32, 1, 0.7));
        assert!(s16 < s1, "16/node should beat full spread under load");
        assert!(s16 < s32, "16/node should beat full collocation");
    }

    #[test]
    fn anti_affinity_improves_throughput() {
        // Fig. 2b: collocated region servers lose ~1/3 throughput.
        let model = PerfModel::new();
        let spread = model.ycsb_throughput(60.0, 0, 0.6);
        let collocated = model.ycsb_throughput(60.0, 3, 0.6);
        assert!(collocated < spread * 0.9);
    }

    #[test]
    fn cgroups_help_but_do_not_match_anti_affinity() {
        // Fig. 2b: cgroups improve collocated throughput by ~20% but
        // cannot reach the anti-affinity placement.
        let plain = PerfModel::new();
        let iso = PerfModel::new().with_cgroups();
        let collocated_plain = plain.ycsb_throughput(60.0, 3, 0.6);
        let collocated_iso = iso.ycsb_throughput(60.0, 3, 0.6);
        let spread_plain = plain.ycsb_throughput(60.0, 0, 0.6);
        assert!(collocated_iso > collocated_plain * 1.05);
        assert!(collocated_iso < spread_plain);
    }

    #[test]
    fn collocation_removes_lookup_network_hop() {
        // Fig. 2a: mean lookup latency ~4.6x better when collocated.
        let model = PerfModel::new();
        let near = model.lookup_latency_samples(true, 2000, 1);
        let far = model.lookup_latency_samples(false, 2000, 1);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let ratio = mean(&far) / mean(&near);
        assert!(ratio > 3.5 && ratio < 6.0, "ratio {ratio}");
    }

    #[test]
    fn rack_span_costs() {
        let model = PerfModel::new();
        let one_rack = model.slowdown(&PlacementProfile::packed(10, 2, 1, 0.1));
        let three_racks = model.slowdown(&PlacementProfile::packed(10, 2, 3, 0.1));
        assert!(three_racks > one_rack + 0.3);
    }

    #[test]
    fn profile_extraction_from_state() {
        use medea_cluster::{ContainerRequest, ExecutionKind, NodeId, Resources};
        let mut state = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
        let app = ApplicationId(1);
        let w = Tag::new("w");
        for node in [0u32, 0, 1] {
            state
                .allocate(
                    app,
                    NodeId(node),
                    &ContainerRequest::new(Resources::new(1024, 1), [w.clone()]),
                    ExecutionKind::LongRunning,
                )
                .unwrap();
        }
        // A non-worker container must not count.
        state
            .allocate(
                app,
                NodeId(3),
                &ContainerRequest::new(Resources::new(1024, 1), [Tag::new("aux")]),
                ExecutionKind::LongRunning,
            )
            .unwrap();
        let prof = PlacementProfile::of_app(&state, app, &w);
        assert_eq!(prof.total_workers(), 3);
        assert_eq!(prof.nodes(), 2);
        let mut wpn = prof.workers_per_node.clone();
        wpn.sort();
        assert_eq!(wpn, vec![1, 2]);
        assert_eq!(prof.racks, 1);
    }

    #[test]
    fn runtime_noise_is_deterministic_per_seed() {
        let model = PerfModel::new();
        let prof = PlacementProfile::packed(8, 2, 1, 0.3);
        assert_eq!(
            model.runtime(100.0, &prof, 5),
            model.runtime(100.0, &prof, 5)
        );
        assert_ne!(
            model.runtime(100.0, &prof, 5),
            model.runtime(100.0, &prof, 6)
        );
    }
}
