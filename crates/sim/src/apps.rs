//! LRA templates: the applications of the paper's evaluation (§7.1) with
//! their container shapes and placement constraints.
//!
//! - **HBase**: ten 2 GB/1-core workers (region servers) plus a master, a
//!   thrift server, and a secondary master (1 GB/1 core each). Constraints:
//!   intra-app rack affinity for workers; at most two HBase workers per
//!   node (inter-application cardinality); master–thrift node affinity;
//!   master–secondary node anti-affinity.
//! - **TensorFlow**: eight 2 GB workers, two 1 GB parameter servers, one
//!   4 GB chief. Constraints: intra-app rack affinity; at most four TF
//!   workers per node.
//! - **Storm + Memcached** (the §2.2 motivating pipeline): five
//!   supervisors and one memcached instance, with intra-app node affinity
//!   for the supervisors and inter-app affinity to memcached.

use medea_cluster::{ApplicationId, NodeGroupId, Resources, Tag};
use medea_constraints::{Cardinality, PlacementConstraint, TagExpr};
use medea_core::LraRequest;

/// Maximum HBase workers per node (§7.1 constraint ii).
pub const HBASE_MAX_WORKERS_PER_NODE: u32 = 2;
/// Maximum TensorFlow workers per node (§7.1 constraint ii).
pub const TF_MAX_WORKERS_PER_NODE: u32 = 4;

/// Tag helpers for the workload templates.
fn t(s: &str) -> Tag {
    Tag::new(s)
}

/// Like [`hbase_instance`] but with a custom inter-application
/// workers-per-node cap, used by sweeps that must stay satisfiable at
/// high cluster utilization (a 2-per-node cap bounds worker memory at
/// 2 x 2 GB per 16 GB node, i.e. 25% of the cluster).
pub fn hbase_like(app: ApplicationId, workers: usize, cap_per_node: u32) -> LraRequest {
    let mut req = hbase_instance(app, workers);
    req = with_cardinality_limit(req, "hb_rs", cap_per_node);
    req
}

/// Builds an HBase instance request with the paper's constraints.
///
/// `workers` is 10 in the paper's simulator workload (§7.1).
pub fn hbase_instance(app: ApplicationId, workers: usize) -> LraRequest {
    let app_tag = Tag::app_id(app);
    let mut containers = Vec::new();
    let worker_res = Resources::new(2048, 1);
    let aux_res = Resources::new(1024, 1);
    for _ in 0..workers {
        containers.push(medea_cluster::ContainerRequest::new(
            worker_res,
            [t("hb"), t("hb_rs")],
        ));
    }
    containers.push(medea_cluster::ContainerRequest::new(
        aux_res,
        [t("hb"), t("hb_m")],
    ));
    containers.push(medea_cluster::ContainerRequest::new(
        aux_res,
        [t("hb"), t("hb_thrift")],
    ));
    containers.push(medea_cluster::ContainerRequest::new(
        aux_res,
        [t("hb"), t("hb_sec")],
    ));

    let constraints = vec![
        // (i) Intra-app rack affinity: all workers of this instance on the
        // same rack.
        PlacementConstraint::affinity(
            TagExpr::and([t("hb_rs"), app_tag.clone()]),
            TagExpr::and([t("hb_rs"), app_tag.clone()]),
            NodeGroupId::rack(),
        ),
        // (ii) Inter-app cardinality: no more than two HBase workers per
        // node (counting *other* workers: max = limit - 1).
        PlacementConstraint::new(
            t("hb_rs"),
            t("hb_rs"),
            Cardinality::at_most(HBASE_MAX_WORKERS_PER_NODE - 1),
            NodeGroupId::node(),
        ),
        // (iii) Master-Thrift node affinity.
        PlacementConstraint::affinity(
            TagExpr::and([t("hb_m"), app_tag.clone()]),
            TagExpr::and([t("hb_thrift"), app_tag.clone()]),
            NodeGroupId::node(),
        ),
        // (iii) Master-Secondary node anti-affinity.
        PlacementConstraint::anti_affinity(
            TagExpr::and([t("hb_m"), app_tag.clone()]),
            TagExpr::and([t("hb_sec"), app_tag]),
            NodeGroupId::node(),
        ),
    ];
    LraRequest::new(app, containers, constraints)
}

/// Builds a TensorFlow instance: 8 workers, 2 parameter servers, 1 chief.
pub fn tensorflow_instance(app: ApplicationId) -> LraRequest {
    tensorflow_instance_sized(app, 8, 2)
}

/// TensorFlow with a custom worker/PS count (used by the §2.2 cardinality
/// sweeps that run 32 workers).
pub fn tensorflow_instance_sized(app: ApplicationId, workers: usize, ps: usize) -> LraRequest {
    let app_tag = Tag::app_id(app);
    let mut containers = Vec::new();
    for _ in 0..workers {
        containers.push(medea_cluster::ContainerRequest::new(
            Resources::new(2048, 1),
            [t("tf"), t("tf_w")],
        ));
    }
    for _ in 0..ps {
        containers.push(medea_cluster::ContainerRequest::new(
            Resources::new(1024, 1),
            [t("tf"), t("tf_ps")],
        ));
    }
    containers.push(medea_cluster::ContainerRequest::new(
        Resources::new(4096, 1),
        [t("tf"), t("tf_chief")],
    ));
    let constraints = vec![
        PlacementConstraint::affinity(
            TagExpr::and([t("tf_w"), app_tag.clone()]),
            TagExpr::and([t("tf_w"), app_tag]),
            NodeGroupId::rack(),
        ),
        PlacementConstraint::new(
            t("tf_w"),
            t("tf_w"),
            Cardinality::at_most(TF_MAX_WORKERS_PER_NODE - 1),
            NodeGroupId::node(),
        ),
    ];
    LraRequest::new(app, containers, constraints)
}

/// The cardinality-sweep variant used by Figs. 2c/2d: `max_per_node`
/// workers allowed per node instead of the defaults.
pub fn with_cardinality_limit(
    mut req: LraRequest,
    worker_tag: &str,
    max_per_node: u32,
) -> LraRequest {
    for c in &mut req.constraints {
        let is_card = c.subject == TagExpr::tag(t(worker_tag)) && c.group == NodeGroupId::node();
        if is_card {
            c.expr =
                medea_constraints::TagConstraintExpr::leaf(medea_constraints::TagConstraint::new(
                    t(worker_tag),
                    Cardinality::at_most(max_per_node.saturating_sub(1)),
                ));
        }
    }
    req
}

/// Storm topology: five supervisors (§2.2 experiment).
///
/// `affinity` selects the §2.2 placement policy under test.
pub fn storm_instance(app: ApplicationId, affinity: StormAffinity) -> LraRequest {
    let app_tag = Tag::app_id(app);
    let containers = (0..5)
        .map(|_| {
            medea_cluster::ContainerRequest::new(
                Resources::new(2048, 1),
                [t("storm"), t("storm_sup")],
            )
        })
        .collect();
    let mut constraints = Vec::new();
    match affinity {
        StormAffinity::None => {}
        StormAffinity::IntraOnly => {
            constraints.push(PlacementConstraint::affinity(
                TagExpr::and([t("storm_sup"), app_tag.clone()]),
                TagExpr::and([t("storm_sup"), app_tag]),
                NodeGroupId::node(),
            ));
        }
        StormAffinity::IntraInter => {
            constraints.push(PlacementConstraint::affinity(
                TagExpr::and([t("storm_sup"), app_tag.clone()]),
                TagExpr::and([t("storm_sup"), app_tag]),
                NodeGroupId::node(),
            ));
            // Caf = {storm, {mem, 1, inf}, node}: collocate with memcached.
            constraints.push(PlacementConstraint::affinity(
                t("storm_sup"),
                t("mem"),
                NodeGroupId::node(),
            ));
        }
    }
    LraRequest::new(app, containers, constraints)
}

/// The §2.2 Storm placement policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StormAffinity {
    /// No constraints.
    None,
    /// Storm supervisors collocated with each other only.
    IntraOnly,
    /// Supervisors collocated with each other *and* with Memcached.
    IntraInter,
}

/// A single-container Memcached instance (two million user profiles in
/// the §2.2 experiment).
pub fn memcached_instance(app: ApplicationId) -> LraRequest {
    LraRequest::new(
        app,
        vec![medea_cluster::ContainerRequest::new(
            Resources::new(4096, 2),
            [t("mem")],
        )],
        vec![],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hbase_shape_matches_paper() {
        let r = hbase_instance(ApplicationId(1), 10);
        assert_eq!(r.num_containers(), 13); // 10 workers + master/thrift/sec
        assert_eq!(r.constraints.len(), 4);
        let workers = r
            .containers
            .iter()
            .filter(|c| c.tags.contains(&Tag::new("hb_rs")))
            .count();
        assert_eq!(workers, 10);
        assert!(r
            .containers
            .iter()
            .all(|c| c.tags.contains(&Tag::new("hb"))));
        // Worker shape <2 GB, 1 CPU> per §7.1.
        assert_eq!(r.containers[0].resources, Resources::new(2048, 1));
    }

    #[test]
    fn tensorflow_shape_matches_paper() {
        let r = tensorflow_instance(ApplicationId(2));
        assert_eq!(r.num_containers(), 11); // 8 + 2 + 1
        let chief = r
            .containers
            .iter()
            .find(|c| c.tags.contains(&Tag::new("tf_chief")))
            .unwrap();
        assert_eq!(chief.resources, Resources::new(4096, 1));
    }

    #[test]
    fn cardinality_override_rewrites_limit() {
        let r = tensorflow_instance_sized(ApplicationId(3), 32, 2);
        let r = with_cardinality_limit(r, "tf_w", 16);
        let card = r
            .constraints
            .iter()
            .find(|c| c.group == NodeGroupId::node())
            .unwrap();
        let leaf = card.expr.leaves().next().unwrap();
        assert_eq!(leaf.cardinality, Cardinality::at_most(15));
    }

    #[test]
    fn storm_affinity_variants() {
        assert!(storm_instance(ApplicationId(1), StormAffinity::None)
            .constraints
            .is_empty());
        assert_eq!(
            storm_instance(ApplicationId(1), StormAffinity::IntraOnly)
                .constraints
                .len(),
            1
        );
        assert_eq!(
            storm_instance(ApplicationId(1), StormAffinity::IntraInter)
                .constraints
                .len(),
            2
        );
    }
}
