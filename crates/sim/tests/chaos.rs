//! Chaos regression tests: seeded fault injection must be fully
//! deterministic, and the recovery pipeline must account for every
//! killed container — re-placed or explicitly unplaceable, never
//! silently lost.

use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, Resources, Tag};
use medea_core::LraAlgorithm;
use medea_obs::MetricsRegistry;
use medea_sim::{
    su_partition, ChaosConfig, ChaosSchedule, FailureParams, PipelineMode, SimDriver, SimEvent,
    SolveLatencyModel, UnavailabilityTrace,
};
use std::sync::Arc;

const TICKS_PER_HOUR: u64 = 3_600;
const HOURS: usize = 24;

/// Synchronous-pipeline chaos run (the pre-pipeline behavior).
fn run_chaos(seed: u64, algorithm: LraAlgorithm) -> SimDriver {
    run_chaos_with(
        seed,
        algorithm,
        PipelineMode::Sync,
        SolveLatencyModel::instant(),
    )
}

/// Builds a small cluster (4 SUs × 8 nodes, SUs registered as a node
/// group) with a chaos schedule derived from a seeded trace, runs the
/// whole horizon under the given placement pipeline, and returns the
/// driver.
fn run_chaos_with(
    seed: u64,
    algorithm: LraAlgorithm,
    mode: PipelineMode,
    latency: SolveLatencyModel,
) -> SimDriver {
    let sus = 4usize;
    let nodes_per_su = 8usize;
    let mut cluster =
        ClusterState::homogeneous(sus * nodes_per_su, Resources::new(16 * 1024, 16), sus);
    let su_sets = su_partition(sus * nodes_per_su, sus);
    cluster.register_group(
        NodeGroupId::service_unit(),
        su_sets.iter().map(|s| s.to_vec()).collect(),
    );

    let mut sim = SimDriver::new(cluster, algorithm, 30)
        .with_pipeline(mode)
        .with_solve_latency(latency);
    // 6 LRAs × 8 containers with node anti-affinity (spread).
    for app in 1..=6u64 {
        let tag = format!("svc{app}");
        sim.schedule(
            app * 5,
            SimEvent::SubmitLra(medea_core::LraRequest::uniform(
                ApplicationId(app),
                8,
                Resources::new(2048, 2),
                vec![Tag::new(tag.clone())],
                vec![medea_constraints::PlacementConstraint::anti_affinity(
                    tag.as_str(),
                    tag.as_str(),
                    NodeGroupId::node(),
                )],
            )),
        );
    }

    let trace = UnavailabilityTrace::generate(
        &FailureParams {
            service_units: sus,
            hours: HOURS,
            spike_probability: 0.03,
            ..FailureParams::default()
        },
        seed,
    );
    let chaos = ChaosSchedule::from_trace(
        &trace,
        &su_sets,
        &ChaosConfig {
            seed,
            ticks_per_hour: TICKS_PER_HOUR,
            flapping_nodes: 1,
            solver_stall_probability: 0.25,
            ..ChaosConfig::default()
        },
    );
    assert!(chaos.crashes() > 0, "chaos run needs crashes to be a test");
    sim.inject_chaos(&chaos);

    // Run past the trace end so end-of-trace recoveries and backed-off
    // retries drain.
    sim.run_until(HOURS as u64 * TICKS_PER_HOUR + 50_000);
    sim
}

/// Deterministic digest of the post-run cluster state.
fn state_digest(sim: &SimDriver) -> String {
    let state = sim.medea().state();
    let mut per_node: Vec<String> = Vec::new();
    for node in state.node_ids() {
        let mut apps: Vec<(u64, usize)> = {
            let mut m = std::collections::BTreeMap::new();
            for c in state.containers_on(node).unwrap() {
                let a = state.allocation(*c).unwrap().app.0;
                *m.entry(a).or_insert(0usize) += 1;
            }
            m.into_iter().collect()
        };
        apps.sort();
        per_node.push(format!(
            "{}:{}:{:?}",
            node.0,
            state.is_available(node),
            apps
        ));
    }
    format!(
        "{per_node:?}|deployed={} lost={} replaced={} unplaceable={}",
        sim.metrics().deployments.len(),
        sim.medea().recovery_report().containers_lost,
        sim.medea().recovery_report().containers_replaced,
        sim.medea().recovery_report().containers_unplaceable,
    )
}

#[test]
fn same_seed_identical_events_and_post_recovery_state() {
    let a = run_chaos(11, LraAlgorithm::NodeCandidates);
    let b = run_chaos(11, LraAlgorithm::NodeCandidates);
    assert_eq!(state_digest(&a), state_digest(&b));

    // The event schedules themselves are identical too.
    let trace = UnavailabilityTrace::generate(
        &FailureParams {
            service_units: 4,
            hours: HOURS,
            spike_probability: 0.03,
            ..FailureParams::default()
        },
        11,
    );
    let sus = su_partition(32, 4);
    let cfg = ChaosConfig {
        seed: 11,
        ticks_per_hour: TICKS_PER_HOUR,
        flapping_nodes: 1,
        solver_stall_probability: 0.25,
        ..ChaosConfig::default()
    };
    let s1 = ChaosSchedule::from_trace(&trace, &sus, &cfg);
    let s2 = ChaosSchedule::from_trace(&trace, &sus, &cfg);
    assert_eq!(format!("{:?}", s1.events), format!("{:?}", s2.events));
}

#[test]
fn every_killed_lra_container_is_accounted_for() {
    for seed in [3u64, 17, 99] {
        let sim = run_chaos(seed, LraAlgorithm::NodeCandidates);
        let r = sim.medea().recovery_report();
        assert!(
            r.accounted(),
            "seed {seed}: lost {} != replaced {} + unplaceable {} + pending {}",
            r.containers_lost,
            r.containers_replaced,
            r.containers_unplaceable,
            r.containers_pending
        );
        assert!(r.containers_lost > 0, "seed {seed}: chaos killed nothing");
        assert!(
            r.replacement_ratio() >= 0.95,
            "seed {seed}: replacement ratio {} below 95%",
            r.replacement_ratio()
        );
    }
}

#[test]
fn async_pipeline_same_seed_is_byte_identical() {
    // Solve latency of 20 on a 30-tick interval keeps a solve in flight
    // two thirds of the time, so crashes routinely land mid-solve.
    let lat = SolveLatencyModel::fixed(20);
    let a = run_chaos_with(11, LraAlgorithm::NodeCandidates, PipelineMode::Async, lat);
    let b = run_chaos_with(11, LraAlgorithm::NodeCandidates, PipelineMode::Async, lat);
    assert_eq!(state_digest(&a), state_digest(&b));
}

#[test]
fn async_pipeline_accounts_for_mid_solve_crashes() {
    for seed in [3u64, 17, 99] {
        let sim = run_chaos_with(
            seed,
            LraAlgorithm::NodeCandidates,
            PipelineMode::Async,
            SolveLatencyModel::fixed(20),
        );
        assert!(!sim.solve_inflight(), "seed {seed}: tail must drain");
        let r = sim.medea().recovery_report();
        assert!(
            r.accounted(),
            "seed {seed}: lost {} != replaced {} + unplaceable {} + pending {}",
            r.containers_lost,
            r.containers_replaced,
            r.containers_unplaceable,
            r.containers_pending
        );
        assert!(r.containers_lost > 0, "seed {seed}: chaos killed nothing");
        assert!(
            r.replacement_ratio() >= 0.95,
            "seed {seed}: replacement ratio {} below 95%",
            r.replacement_ratio()
        );
    }
}

#[test]
fn chaos_run_with_ilp_emits_recovery_metrics() {
    let registry = MetricsRegistry::new();
    let sus = su_partition(16, 2);
    let mut cluster = ClusterState::homogeneous(16, Resources::new(16 * 1024, 16), 2);
    cluster.register_group(
        NodeGroupId::service_unit(),
        sus.iter().map(|s| s.to_vec()).collect(),
    );
    let mut sim =
        SimDriver::new(cluster, LraAlgorithm::Ilp, 30).with_metrics(Arc::clone(&registry));
    for app in 1..=3u64 {
        sim.schedule(
            app,
            SimEvent::SubmitLra(medea_core::LraRequest::uniform(
                ApplicationId(app),
                6,
                Resources::new(2048, 2),
                vec![Tag::new(format!("s{app}"))],
                vec![],
            )),
        );
    }
    let trace = UnavailabilityTrace::generate(
        &FailureParams {
            service_units: 2,
            hours: 6,
            spike_probability: 0.1,
            ..FailureParams::default()
        },
        5,
    );
    let chaos = ChaosSchedule::from_trace(
        &trace,
        &sus,
        &ChaosConfig {
            seed: 5,
            ticks_per_hour: TICKS_PER_HOUR,
            baseline_crash_probability: 0.05,
            solver_stall_probability: 1.0,
            ..ChaosConfig::default()
        },
    );
    assert!(chaos.crashes() > 0 && chaos.stalls() > 0);
    sim.inject_chaos(&chaos);
    sim.run_until(6 * TICKS_PER_HOUR + 50_000);

    let snap = registry.snapshot();
    let lost = snap.counter("core.recovery_containers_lost_total").unwrap();
    let replaced = snap.counter("core.recovery_replaced_total").unwrap();
    assert!(lost > 0, "chaos must kill LRA containers");
    assert!(replaced > 0, "recovery must re-place containers");
    assert!(snap.counter("sim.chaos_node_crashes_total").unwrap() > 0);
    assert!(snap.counter("sim.chaos_solver_stalls_total").unwrap() > 0);
    assert!(snap.counter("core.solver_stalls_total").unwrap() > 0);
    // The latency histogram recorded every successful recovery.
    let json = registry.snapshot_json();
    assert!(json.contains("core.recovery_latency_ticks"));
    assert!(json.contains("core.breaker_state"));
    // No silent loss even under ILP + stalls.
    assert!(sim.medea().recovery_report().accounted());
}
