//! Chaos × index interplay: the incremental index layer must stay
//! coherent through the fault-injection pipeline. The smoke scenario
//! from the chaos suite is replayed stepwise, pausing just after every
//! `NodeCrash`/`NodeRecover` event to assert the state invariants:
//!
//! - no stale index entries — postings, free orderings, and γ_𝒮 caches
//!   all match a from-scratch recomputation
//!   ([`ClusterState::check_index_consistency`]);
//! - recovery accounting balances — every container lost to a crash is
//!   replaced, declared unplaceable, or still pending, never silently
//!   dropped.

use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, Resources, Tag};
use medea_core::LraAlgorithm;
use medea_sim::{
    su_partition, ChaosConfig, ChaosSchedule, FailureParams, PipelineMode, SimDriver, SimEvent,
    SolveLatencyModel, UnavailabilityTrace,
};

const TICKS_PER_HOUR: u64 = 3_600;
const HOURS: usize = 12;

/// The chaos smoke scenario under the synchronous pipeline.
fn build_scenario(seed: u64) -> (SimDriver, ChaosSchedule) {
    build_scenario_with(seed, PipelineMode::Sync, SolveLatencyModel::instant())
}

/// The chaos smoke scenario: 4 service units × 8 nodes, 6 spread LRAs,
/// seeded crash/recovery schedule derived from an unavailability trace.
fn build_scenario_with(
    seed: u64,
    mode: PipelineMode,
    latency: SolveLatencyModel,
) -> (SimDriver, ChaosSchedule) {
    let sus = 4usize;
    let nodes_per_su = 8usize;
    let mut cluster =
        ClusterState::homogeneous(sus * nodes_per_su, Resources::new(16 * 1024, 16), sus);
    let su_sets = su_partition(sus * nodes_per_su, sus);
    cluster.register_group(
        NodeGroupId::service_unit(),
        su_sets.iter().map(|s| s.to_vec()).collect(),
    );

    let mut sim = SimDriver::new(cluster, LraAlgorithm::NodeCandidates, 30)
        .with_pipeline(mode)
        .with_solve_latency(latency);
    for app in 1..=6u64 {
        let tag = format!("svc{app}");
        sim.schedule(
            app * 5,
            SimEvent::SubmitLra(medea_core::LraRequest::uniform(
                ApplicationId(app),
                8,
                Resources::new(2048, 2),
                vec![Tag::new(tag.clone())],
                vec![medea_constraints::PlacementConstraint::anti_affinity(
                    tag.as_str(),
                    tag.as_str(),
                    NodeGroupId::node(),
                )],
            )),
        );
    }

    let trace = UnavailabilityTrace::generate(
        &FailureParams {
            service_units: sus,
            hours: HOURS,
            spike_probability: 0.03,
            ..FailureParams::default()
        },
        seed,
    );
    let chaos = ChaosSchedule::from_trace(
        &trace,
        &su_sets,
        &ChaosConfig {
            seed,
            ticks_per_hour: TICKS_PER_HOUR,
            flapping_nodes: 1,
            ..ChaosConfig::default()
        },
    );
    assert!(chaos.crashes() > 0, "scenario needs crashes to be a test");
    (sim, chaos)
}

/// Full-scan check that every svc/appid tag posting matches the node
/// tag multisets — stale entries for crashed nodes would surface here
/// (on top of the structural consistency check).
fn assert_no_stale_tag_entries(state: &ClusterState) {
    let mut tags: Vec<Tag> = (1..=6u64).map(|a| Tag::new(format!("svc{a}"))).collect();
    tags.extend((1..=6u64).map(|a| Tag::app_id(ApplicationId(a))));
    for tag in &tags {
        let indexed = state.nodes_with_tag(tag);
        let scanned: Vec<_> = state
            .node_ids()
            .filter(|&n| state.gamma(n, tag) > 0)
            .collect();
        assert_eq!(indexed, scanned, "stale postings for tag {tag}");
    }
}

#[test]
fn index_stays_consistent_across_every_crash_and_recovery() {
    for seed in [3u64, 11, 17] {
        let (mut sim, chaos) = build_scenario(seed);

        // Checkpoint just after every crash/recovery event (dedup keeps
        // the run-until sequence strictly advancing).
        let mut checkpoints: Vec<u64> = chaos
            .events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::NodeCrash(_) | SimEvent::NodeRecover(_)))
            .map(|&(t, _)| t + 1)
            .collect();
        checkpoints.sort_unstable();
        checkpoints.dedup();
        assert!(
            checkpoints.len() >= 2,
            "seed {seed}: need both crashes and recoveries"
        );
        sim.inject_chaos(&chaos);

        for t in checkpoints {
            sim.run_until(t);
            let state = sim.medea().state();
            state
                .check_index_consistency()
                .unwrap_or_else(|e| panic!("seed {seed} tick {t}: {e}"));
            assert_no_stale_tag_entries(state);
            let r = sim.medea().recovery_report();
            assert!(
                r.accounted(),
                "seed {seed} tick {t}: lost {} != replaced {} + unplaceable {} + pending {}",
                r.containers_lost,
                r.containers_replaced,
                r.containers_unplaceable,
                r.containers_pending
            );
        }

        // Drain the tail: backed-off retries and end-of-trace recoveries.
        sim.run_until(HOURS as u64 * TICKS_PER_HOUR + 50_000);
        let state = sim.medea().state();
        state.check_index_consistency().unwrap();
        assert_no_stale_tag_entries(state);
        let r = sim.medea().recovery_report();
        assert!(r.accounted(), "seed {seed}: final accounting unbalanced");
        assert!(r.containers_lost > 0, "seed {seed}: chaos killed nothing");
    }
}

#[test]
fn index_stays_consistent_with_async_pipeline_and_mid_solve_crashes() {
    // Solve latency 20 on a 30-tick interval: most crash/recovery events
    // land while a solve is in flight, so commit-time invalidation and
    // the index maintenance paths interleave maximally.
    for seed in [3u64, 11] {
        let (mut sim, chaos) =
            build_scenario_with(seed, PipelineMode::Async, SolveLatencyModel::fixed(20));
        let mut checkpoints: Vec<u64> = chaos
            .events
            .iter()
            .filter(|(_, e)| matches!(e, SimEvent::NodeCrash(_) | SimEvent::NodeRecover(_)))
            .map(|&(t, _)| t + 1)
            .collect();
        checkpoints.sort_unstable();
        checkpoints.dedup();
        sim.inject_chaos(&chaos);

        for t in checkpoints {
            sim.run_until(t);
            let state = sim.medea().state();
            state
                .check_index_consistency()
                .unwrap_or_else(|e| panic!("seed {seed} tick {t} (async): {e}"));
            assert_no_stale_tag_entries(state);
            // The accounting invariant must hold even while a solve is
            // in flight (its recovery containers count as pending).
            let r = sim.medea().recovery_report();
            assert!(
                r.accounted(),
                "seed {seed} tick {t} (async, inflight={}): lost {} != {} + {} + {}",
                sim.solve_inflight(),
                r.containers_lost,
                r.containers_replaced,
                r.containers_unplaceable,
                r.containers_pending
            );
        }

        sim.run_until(HOURS as u64 * TICKS_PER_HOUR + 50_000);
        let state = sim.medea().state();
        state.check_index_consistency().unwrap();
        assert_no_stale_tag_entries(state);
        let r = sim.medea().recovery_report();
        assert!(r.accounted(), "seed {seed}: final async accounting");
        assert!(r.containers_lost > 0, "seed {seed}: chaos killed nothing");
    }
}
