//! RM failover differential gate (32 seeds).
//!
//! **Zero-loss determinism:** a mid-round RM crash that loses no
//! containers must be *invisible* in placement space. The crash kills
//! the in-flight solves, the journal rebuilds cluster state exactly,
//! the batches re-enter the queue as §5.4 resubmissions, and — because
//! nothing was committed and nothing else mutated the cluster — the
//! re-solve sees the very state the dead solve saw. A deterministic
//! placement algorithm therefore reproduces the no-crash placements
//! bit for bit (latencies differ; node assignments must not).
//!
//! **Lossy reconciliation:** with a per-container loss rate during the
//! outage, node re-registrations diverge from journal-derived state.
//! Anti-entropy must repair all of it: phantoms released, lost LRA
//! containers routed through recovery, the no-silent-loss ledger
//! balanced, and the state↔index↔γ invariant audit clean.

use std::collections::BTreeMap;

use medea_cluster::{ApplicationId, ClusterState, Resources, Tag};
use medea_core::LraAlgorithm;
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use medea_sim::{PipelineMode, SimDriver, SimEvent, SolveLatencyModel};

const SEEDS: u64 = 32;
const NODES: usize = 16;

/// A seeded LRA-only workload: every submission lands before the first
/// scheduler tick, so both runs see identical batch composition (the
/// differential isolates the crash, not batching drift).
fn submit_workload(sim: &mut SimDriver, seed: u64) {
    let mut rng = StdRng::seed_from_u64(0xFA110E4 ^ seed);
    let apps = rng.random_range(4..9u64);
    for app in 1..=apps {
        let containers = rng.random_range(1..4usize);
        let mem = rng.random_range(512..2048u64);
        let tag = format!("svc{}", rng.random_range(0..3u32));
        sim.schedule(
            rng.random_range(0..900u64),
            SimEvent::SubmitLra(medea_core::LraRequest::uniform(
                ApplicationId(app),
                containers,
                Resources::new(mem, 1),
                vec![Tag::new(tag)],
                vec![],
            )),
        );
    }
}

fn driver(seed: u64, journaled: bool) -> SimDriver {
    let cluster = ClusterState::homogeneous(NODES, Resources::new(16 * 1024, 16), 4);
    // No sharding here: `Any`-routed entries are round-robined across
    // shards in queue order, and a crash requeues them in solve-id
    // order — a legitimately different partition. The zero-loss
    // differential therefore runs unsharded (determinism.rs covers
    // sharded rounds).
    let mut sim = SimDriver::new(cluster, LraAlgorithm::NodeCandidates, 1_000)
        .with_pipeline(PipelineMode::Async)
        .with_solve_latency(SolveLatencyModel::fixed(500));
    if journaled {
        sim.enable_journal(0);
    }
    submit_workload(&mut sim, seed);
    sim
}

/// Final placement map: app → sorted hosting nodes (a multiset — one
/// entry per container).
fn placements(sim: &SimDriver) -> BTreeMap<u64, Vec<u32>> {
    let mut out: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
    for a in sim.medea().state().allocations() {
        out.entry(a.app.0).or_default().push(a.node.0);
    }
    for nodes in out.values_mut() {
        nodes.sort_unstable();
    }
    out
}

#[test]
fn zero_loss_failover_is_placement_invisible_32_seeds() {
    for seed in 0..SEEDS {
        // Baseline: no crash.
        let mut base = driver(seed, false);
        assert!(
            base.run_to_completion(60_000),
            "seed {seed}: base truncated"
        );
        let want = placements(&base);
        assert!(!want.is_empty(), "seed {seed}: workload must deploy");

        // Crash mid-solve (solves start at tick 1000, commit at 1500;
        // the crash at 1100 catches the whole sharded round in flight),
        // zero container loss, 3-interval outage.
        let mut crashed = driver(seed, true);
        crashed.schedule(
            1_100,
            SimEvent::RmCrash {
                outage_ticks: 3_000,
                loss_rate: 0.0,
            },
        );
        assert!(
            crashed.run_to_completion(60_000),
            "seed {seed}: crash run truncated"
        );
        let restart = crashed
            .last_restart()
            .unwrap_or_else(|| panic!("seed {seed}: restart must have run"));
        assert!(restart.restored_from_journal, "seed {seed}");
        assert_eq!(restart.phantom_containers_released, 0, "seed {seed}");
        assert!(restart.audit_error.is_none(), "seed {seed}");
        assert_eq!(
            placements(&crashed),
            want,
            "seed {seed}: zero-loss failover changed placements"
        );
        // Zero-loss: the recovery ledger never opened.
        assert_eq!(crashed.medea().recovery_report().containers_lost, 0);
        assert!(crashed.medea().audit().is_ok(), "seed {seed}");
    }
}

#[test]
fn lossy_failover_repairs_all_divergence_32_seeds() {
    for seed in 0..SEEDS {
        let mut sim = driver(seed, true);
        // Let the workload deploy first, then crash with real container
        // loss during the outage.
        sim.run_until(5_000);
        let deployed_containers = sim.medea().state().num_containers();
        sim.schedule(
            5_100,
            SimEvent::RmCrash {
                outage_ticks: 4_000,
                loss_rate: 0.35,
            },
        );
        assert!(sim.run_to_completion(120_000), "seed {seed}: run truncated");
        let restart = sim.last_restart().expect("restart must have run");
        assert!(restart.restored_from_journal, "seed {seed}");
        assert!(restart.audit_error.is_none(), "seed {seed}");
        assert_eq!(
            restart.phantom_containers_released,
            restart.lost_lra_containers + restart.lost_task_containers,
            "seed {seed}: every phantom is classified"
        );
        if deployed_containers > 0 && restart.phantom_containers_released == 0 {
            // Statistically possible at 35% only for tiny deployments;
            // the differential still holds, just vacuously for repair.
            continue;
        }

        // Anti-entropy accounting: every container the outage killed is
        // replaced, explicitly unplaceable, or pending — and after the
        // drained run, nothing is left pending unless it is backing off
        // toward an attempt that the accounting already shows.
        let r = sim.medea().recovery_report();
        assert_eq!(
            r.containers_lost, restart.lost_lra_containers,
            "seed {seed}: ledger opened exactly for phantom LRA losses"
        );
        assert!(r.accounted(), "seed {seed}: {r:?}");
        // Divergence is repaired: journal-derived state and node ground
        // truth agree again, and the rebuilt index/γ caches are sound.
        sim.medea()
            .audit()
            .unwrap_or_else(|e| panic!("seed {seed}: post-repair audit: {e}"));
        sim.medea()
            .state()
            .check_allocation_consistency()
            .unwrap_or_else(|e| panic!("seed {seed}: allocations: {e}"));
    }
}
