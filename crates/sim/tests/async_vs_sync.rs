//! Differential gate for the asynchronous placement pipeline.
//!
//! With **zero concurrent task load** the live cluster cannot drift
//! while a solve is in flight, so the async pipeline must produce
//! *exactly* the placements of the synchronous compatibility mode — the
//! snapshot the solver sees is the state the commit lands on. 32 fixed
//! seeds sweep batch shapes and constraint mixes. On top of that,
//! same-seed async runs must be byte-identical: the pipeline introduces
//! no hidden nondeterminism (no wall clock feeds simulated decisions).

use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, NodeId, Resources, Tag};
use medea_constraints::PlacementConstraint;
use medea_core::{LraAlgorithm, LraRequest};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use medea_sim::{PipelineMode, SimDriver, SimEvent, SolveLatencyModel};

const INTERVAL: u64 = 10_000;
const HORIZON: u64 = 300_000;

/// A seeded LRA-only workload: 10 apps with random sizes, submission
/// times, and a mix of spread/cardinality constraints. No task jobs, no
/// heartbeats — nothing mutates the cluster between propose and commit.
fn run(seed: u64, mode: PipelineMode) -> SimDriver {
    let mut rng = StdRng::seed_from_u64(seed);
    let cluster = ClusterState::homogeneous(12, Resources::new(16 * 1024, 16), 2);
    let mut sim = SimDriver::new(cluster, LraAlgorithm::NodeCandidates, INTERVAL)
        .with_pipeline(mode)
        // Latency below the interval: in sync mode the solve blocks the
        // (idle) RM, in async it overlaps; placements must match anyway.
        .with_solve_latency(SolveLatencyModel::ilp_like());
    for app in 1..=10u64 {
        let tag = format!("svc{app}");
        let count = rng.random_range(1..6usize);
        let mem = 1024 * rng.random_range(1..4u64);
        let t = rng.random_range(0..(HORIZON / 2));
        let constraints = match rng.random_range(0..3u32) {
            0 => vec![],
            1 => vec![PlacementConstraint::anti_affinity(
                tag.as_str(),
                tag.as_str(),
                NodeGroupId::node(),
            )],
            _ => vec![PlacementConstraint::cardinality(
                tag.as_str(),
                tag.as_str(),
                0,
                2,
                NodeGroupId::rack(),
            )],
        };
        sim.schedule(
            t,
            SimEvent::SubmitLra(LraRequest::uniform(
                ApplicationId(app),
                count,
                Resources::new(mem, 1),
                vec![Tag::new(tag)],
                constraints,
            )),
        );
    }
    assert!(
        sim.run_to_completion(HORIZON),
        "seed {seed} {mode:?}: run truncated at the safety limit"
    );
    sim
}

/// Placements as comparable data: per app, the sorted node list.
fn placements(sim: &SimDriver) -> Vec<(u64, Vec<u32>)> {
    let mut out: Vec<(u64, Vec<u32>)> = sim
        .metrics()
        .deployments
        .iter()
        .map(|d| {
            let mut nodes: Vec<u32> = d.nodes.iter().map(|n| n.0).collect();
            nodes.sort_unstable();
            (d.app.0, nodes)
        })
        .collect();
    out.sort();
    out
}

/// Byte-exact digest of a run: every deployment in commit order with
/// nodes and containers, plus the final per-node cluster layout.
fn digest(sim: &SimDriver) -> String {
    let mut s = String::new();
    for d in &sim.metrics().deployments {
        s.push_str(&format!(
            "app={} lat={} rec={} nodes={:?} containers={:?};",
            d.app.0,
            d.latency_ticks,
            d.recovered,
            d.nodes.iter().map(|n| n.0).collect::<Vec<_>>(),
            d.containers,
        ));
    }
    let state = sim.medea().state();
    for node in state.node_ids() {
        let mut apps: Vec<u64> = state
            .containers_on(node)
            .unwrap()
            .iter()
            .map(|&c| state.allocation(c).unwrap().app.0)
            .collect();
        apps.sort_unstable();
        s.push_str(&format!("n{}={apps:?};", node.0));
    }
    s.push_str(&format!(
        "conflicts={} unplaced={} epoch={}",
        sim.medea().stats().commit_conflicts,
        sim.medea().stats().lras_unplaced,
        state.epoch(),
    ));
    s
}

#[test]
fn async_equals_sync_without_concurrent_load_32_seeds() {
    for seed in 0..32u64 {
        let sync = run(seed, PipelineMode::Sync);
        let async_ = run(seed, PipelineMode::Async);
        assert_eq!(
            placements(&sync),
            placements(&async_),
            "seed {seed}: async pipeline diverged from sync with no load"
        );
        assert_eq!(
            sync.medea().stats().commit_conflicts,
            0,
            "seed {seed}: sync mode cannot conflict"
        );
        assert_eq!(
            async_.medea().stats().commit_conflicts,
            0,
            "seed {seed}: nothing mutated mid-solve, so no conflicts"
        );
    }
}

#[test]
fn async_same_seed_runs_are_byte_identical() {
    for seed in [0u64, 7, 19, 31] {
        let a = run(seed, PipelineMode::Async);
        let b = run(seed, PipelineMode::Async);
        assert_eq!(digest(&a), digest(&b), "seed {seed}: nondeterminism");
    }
}

#[test]
fn async_deployment_latency_includes_solve_time() {
    // One LRA submitted before the first tick: sync commits at
    // tick + latency with the RM blocked; async commits at the
    // LraPlacementReady event. Both must charge the solve latency into
    // the deployment latency — the pre-pipeline code omitted it.
    let lat = SolveLatencyModel::fixed(2_500);
    for mode in [PipelineMode::Sync, PipelineMode::Async] {
        let cluster = ClusterState::homogeneous(4, Resources::new(8192, 8), 2);
        let mut sim = SimDriver::new(cluster, LraAlgorithm::NodeCandidates, INTERVAL)
            .with_pipeline(mode)
            .with_solve_latency(lat);
        sim.schedule(
            0,
            SimEvent::SubmitLra(LraRequest::uniform(
                ApplicationId(1),
                2,
                Resources::new(1024, 1),
                vec![Tag::new("a")],
                vec![],
            )),
        );
        assert!(sim.run_to_completion(HORIZON));
        let m = sim.metrics();
        assert_eq!(m.deployments.len(), 1, "{mode:?}");
        // The tick at t=0 precedes the submission (it was queued first),
        // so the LRA is proposed at the next interval (10 000) and
        // committed 2 500 ticks later: latency = 10 000 + 2 500.
        assert_eq!(m.lra_latencies[0], 12_500, "{mode:?}");
        assert_eq!(m.deployments[0].nodes.len(), 2);
    }
}

#[test]
fn run_to_completion_reports_truncation() {
    let cluster = ClusterState::homogeneous(2, Resources::new(8192, 8), 1);
    let mut sim = SimDriver::new(cluster, LraAlgorithm::Serial, 1_000);
    sim.schedule(
        50_000,
        SimEvent::SubmitLra(LraRequest::uniform(
            ApplicationId(1),
            1,
            Resources::new(1024, 1),
            vec![Tag::new("late")],
            vec![],
        )),
    );
    // Safety limit before the submission: truncated.
    assert!(!sim.run_to_completion(10_000), "late event must report");
    // Extending past it drains.
    assert!(sim.run_to_completion(60_000));
    assert_eq!(sim.metrics().deployments.len(), 1);
    let _ = sim.medea().state().node(NodeId(0));
}
