//! S1: simulator determinism with concurrent in-flight solves.
//!
//! A sharded asynchronous round keeps several solves in flight at
//! once; the driver used to track them in a `HashMap`, so the commit
//! order of same-tick completions depended on hasher seed and metrics
//! could drift between identical runs. With the `BTreeMap` swap, two
//! runs of the same seed must produce byte-identical metrics.

use medea_cluster::{ApplicationId, ClusterState, NodeGroupId, Resources, ShardConfig, Tag};
use medea_constraints::{PlacementConstraint, TagExpr};
use medea_core::{LraAlgorithm, LraRequest};
use medea_rand::rngs::StdRng;
use medea_rand::{RngExt, SeedableRng};
use medea_sim::{PipelineMode, SimDriver, SimEvent, SolveLatencyModel};

const NODES: usize = 32;
const RACKS: usize = 4;

fn build(seed: u64) -> SimDriver {
    let cluster = ClusterState::homogeneous(NODES, Resources::new(32 * 1024, 32), RACKS);
    let mut sim = SimDriver::new(cluster, LraAlgorithm::NodeCandidates, 1_000)
        .with_pipeline(PipelineMode::Async)
        .with_solve_latency(SolveLatencyModel::fixed(700));
    sim.medea_mut()
        .set_sharding(ShardConfig::with_shards(RACKS));
    let mut rng = StdRng::seed_from_u64(0xDE7E_12A1 ^ seed);
    for app in 1..=24u64 {
        let tag = format!("svc{}", app % 5);
        let mut constraints = Vec::new();
        // Mix pinned and Any-routed entries: intra-app rack affinity
        // pins an entry to the shard owning its placement, exercising
        // both routing arms of the sharded round.
        if app % 3 == 0 {
            constraints.push(PlacementConstraint::affinity(
                TagExpr::and([Tag::app_id(ApplicationId(app))]),
                Tag::new(tag.clone()),
                NodeGroupId::rack(),
            ));
        }
        sim.schedule(
            rng.random_range(0..3_500u64),
            SimEvent::SubmitLra(LraRequest::uniform(
                ApplicationId(app),
                rng.random_range(1..4usize),
                Resources::new(rng.random_range(512..2048u64), 1),
                vec![Tag::new(tag)],
                constraints,
            )),
        );
    }
    sim
}

/// Full run transcript: every metric the driver and scheduler expose.
fn transcript(seed: u64) -> (String, usize) {
    let mut sim = build(seed);
    // Step to a mid-round instant and record the concurrency high-water
    // mark: a sharded async round must actually hold several solves in
    // flight for this suite to test what it claims.
    let mut max_inflight = 0;
    for t in 1..=12 {
        sim.run_until(t * 500);
        max_inflight = max_inflight.max(sim.inflight_solves());
    }
    assert!(sim.run_to_completion(120_000), "run truncated");
    let m = sim.metrics();
    // Everything simulation-domain goes in; `lra_algorithm_times` stays
    // out because it is wall-clock (a Duration measured on the host),
    // nondeterministic by definition. LraDeployment carries one such
    // field too, so deployments are projected to their logical parts.
    let deployments: Vec<String> = m
        .deployments
        .iter()
        .map(|d| {
            format!(
                "{:?}:{:?}:{:?}:{}:{}",
                d.app, d.containers, d.nodes, d.latency_ticks, d.recovered
            )
        })
        .collect();
    (
        format!(
            "{:?}|{:?}|{:?}|{:?}|{}",
            m.task_latencies,
            m.lra_latencies,
            deployments,
            sim.medea().stats(),
            sim.medea().state().digest()
        ),
        max_inflight,
    )
}

#[test]
fn same_seed_runs_are_byte_identical_with_concurrent_solves() {
    for seed in [0u64, 7, 42] {
        let (a, inflight_a) = transcript(seed);
        let (b, inflight_b) = transcript(seed);
        assert!(
            inflight_a >= 3,
            "seed {seed}: expected >=3 concurrent in-flight solves, saw {inflight_a}"
        );
        assert_eq!(inflight_a, inflight_b, "seed {seed}: concurrency drifted");
        assert_eq!(a, b, "seed {seed}: same-seed metrics diverged");
    }
}

#[test]
fn different_seeds_actually_vary_the_workload() {
    // Guards the suite against a degenerate workload generator: if every
    // seed produced the same trace, the byte-identity test above would
    // pass vacuously.
    let (a, _) = transcript(1);
    let (b, _) = transcript(2);
    assert_ne!(a, b, "seeded workloads must differ");
}
