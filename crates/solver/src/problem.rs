//! Problem definition for linear and mixed-integer linear programs.
//!
//! A [`Problem`] is built incrementally: variables are added with
//! [`Problem::add_var`] (returning a [`VarId`] handle), linear constraints
//! with [`Problem::add_constraint`], and the objective sense is fixed at
//! construction time. The resulting problem is consumed by
//! [`crate::simplex::Simplex`] (LP relaxation) or [`crate::milp::Milp`]
//! (exact mixed-integer solve).

use std::fmt;

/// Handle to a decision variable inside a [`Problem`].
///
/// `VarId`s are only meaningful for the problem that created them; using a
/// handle with a different problem is detected and reported as
/// [`ProblemError::UnknownVariable`] where possible (index out of range).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Returns the dense index of this variable within its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Handle to a linear constraint inside a [`Problem`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Returns the dense index of this constraint within its problem.
    pub fn index(self) -> usize {
        self.0
    }
}

/// Integrality class of a decision variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued variable.
    Continuous,
    /// Integer-valued variable.
    Integer,
    /// Binary variable; shorthand for an integer variable in `[0, 1]`.
    Binary,
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Row value must be less than or equal to the right-hand side.
    Le,
    /// Row value must equal the right-hand side.
    Eq,
    /// Row value must be greater than or equal to the right-hand side.
    Ge,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cmp::Le => write!(f, "<="),
            Cmp::Eq => write!(f, "=="),
            Cmp::Ge => write!(f, ">="),
        }
    }
}

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// Minimize the objective function.
    Minimize,
    /// Maximize the objective function.
    Maximize,
}

/// A decision variable: bounds, objective coefficient, and integrality.
#[derive(Debug, Clone)]
pub struct Variable {
    /// Lower bound (finite; MILP variables in Medea are all bounded below).
    pub lower: f64,
    /// Upper bound; may be `f64::INFINITY`.
    pub upper: f64,
    /// Objective coefficient.
    pub cost: f64,
    /// Integrality class.
    pub kind: VarKind,
    /// Diagnostic name (not required to be unique).
    pub name: String,
}

impl Variable {
    /// Returns `true` if the variable must take integer values.
    pub fn is_integral(&self) -> bool {
        matches!(self.kind, VarKind::Integer | VarKind::Binary)
    }
}

/// A linear constraint `sum(coeff_i * x_i) cmp rhs`.
#[derive(Debug, Clone)]
pub struct Constraint {
    /// Sparse row: `(variable, coefficient)` pairs with distinct variables.
    pub terms: Vec<(VarId, f64)>,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side.
    pub rhs: f64,
}

/// Errors raised while building or validating a [`Problem`].
#[derive(Debug, Clone, PartialEq)]
pub enum ProblemError {
    /// A variable handle does not belong to this problem.
    UnknownVariable(VarId),
    /// A variable was declared with `lower > upper`.
    InvalidBounds {
        /// Offending variable.
        var: VarId,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// A coefficient, bound, or right-hand side is NaN.
    NotANumber,
    /// A lower bound of `-inf` was used (unsupported by the solver).
    UnboundedBelow(VarId),
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::UnknownVariable(v) => {
                write!(f, "variable #{} does not belong to this problem", v.0)
            }
            ProblemError::InvalidBounds { var, lower, upper } => write!(
                f,
                "variable #{} has invalid bounds [{lower}, {upper}]",
                var.0
            ),
            ProblemError::NotANumber => write!(f, "NaN coefficient, bound, or right-hand side"),
            ProblemError::UnboundedBelow(v) => write!(
                f,
                "variable #{} has lower bound -inf, which the solver does not support",
                v.0
            ),
        }
    }
}

impl std::error::Error for ProblemError {}

/// A linear or mixed-integer linear program.
///
/// # Examples
///
/// ```
/// use medea_solver::{Problem, VarKind, Cmp, Milp};
///
/// // maximize x + 2y  s.t.  x + y <= 4, x, y in {0..3}
/// let mut p = Problem::maximize();
/// let x = p.add_var(VarKind::Integer, 0.0, 3.0, 1.0, "x");
/// let y = p.add_var(VarKind::Integer, 0.0, 3.0, 2.0, "y");
/// p.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
/// let sol = Milp::new(&p).solve().unwrap();
/// assert_eq!(sol.objective.round() as i64, 7);
/// ```
#[derive(Debug, Clone)]
pub struct Problem {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
}

impl Problem {
    /// Creates an empty minimization problem.
    pub fn minimize() -> Self {
        Self::new(Sense::Minimize)
    }

    /// Creates an empty maximization problem.
    pub fn maximize() -> Self {
        Self::new(Sense::Maximize)
    }

    /// Creates an empty problem with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Problem {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
        }
    }

    /// Returns the optimization sense.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Adds a variable and returns its handle.
    ///
    /// For [`VarKind::Binary`], the caller-supplied bounds are intersected
    /// with `[0, 1]`.
    pub fn add_var(
        &mut self,
        kind: VarKind,
        lower: f64,
        upper: f64,
        cost: f64,
        name: impl Into<String>,
    ) -> VarId {
        let (lower, upper) = match kind {
            VarKind::Binary => (lower.max(0.0), upper.min(1.0)),
            _ => (lower, upper),
        };
        self.vars.push(Variable {
            lower,
            upper,
            cost,
            kind,
            name: name.into(),
        });
        VarId(self.vars.len() - 1)
    }

    /// Adds a binary variable with the given objective coefficient.
    pub fn add_binary(&mut self, cost: f64, name: impl Into<String>) -> VarId {
        self.add_var(VarKind::Binary, 0.0, 1.0, cost, name)
    }

    /// Adds a continuous variable in `[0, +inf)`.
    pub fn add_nonneg(&mut self, cost: f64, name: impl Into<String>) -> VarId {
        self.add_var(VarKind::Continuous, 0.0, f64::INFINITY, cost, name)
    }

    /// Adds a linear constraint; duplicate variables in `terms` are summed.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) -> ConstraintId {
        let mut merged: Vec<(VarId, f64)> = Vec::new();
        for (v, c) in terms {
            if let Some(slot) = merged.iter_mut().find(|(mv, _)| *mv == v) {
                slot.1 += c;
            } else {
                merged.push((v, c));
            }
        }
        merged.retain(|&(_, c)| c != 0.0);
        self.constraints.push(Constraint {
            terms: merged,
            cmp,
            rhs,
        });
        ConstraintId(self.constraints.len() - 1)
    }

    /// Returns the variable record behind a handle.
    pub fn var(&self, id: VarId) -> &Variable {
        &self.vars[id.0]
    }

    /// Returns all variables in insertion order.
    pub fn vars(&self) -> &[Variable] {
        &self.vars
    }

    /// Returns all constraints in insertion order.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Overrides the bounds of an existing variable.
    ///
    /// Used by branch and bound to impose branching decisions.
    pub fn set_bounds(&mut self, id: VarId, lower: f64, upper: f64) {
        self.vars[id.0].lower = lower;
        self.vars[id.0].upper = upper;
    }

    /// Overrides the objective coefficient of an existing variable.
    pub fn set_cost(&mut self, id: VarId, cost: f64) {
        self.vars[id.0].cost = cost;
    }

    /// Validates variable bounds, handles, and numeric sanity.
    ///
    /// The solvers call this before starting; it is public so that problem
    /// builders can fail fast.
    pub fn validate(&self) -> Result<(), ProblemError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower.is_nan() || v.upper.is_nan() || v.cost.is_nan() {
                return Err(ProblemError::NotANumber);
            }
            if v.lower == f64::NEG_INFINITY {
                return Err(ProblemError::UnboundedBelow(VarId(i)));
            }
            if v.lower > v.upper {
                return Err(ProblemError::InvalidBounds {
                    var: VarId(i),
                    lower: v.lower,
                    upper: v.upper,
                });
            }
        }
        for c in &self.constraints {
            if c.rhs.is_nan() {
                return Err(ProblemError::NotANumber);
            }
            for &(v, coeff) in &c.terms {
                if coeff.is_nan() {
                    return Err(ProblemError::NotANumber);
                }
                if v.0 >= self.vars.len() {
                    return Err(ProblemError::UnknownVariable(v));
                }
            }
        }
        Ok(())
    }

    /// Hashes the structural skeleton of the problem: sense, variable
    /// count, and per-row comparison operator and sparsity pattern —
    /// everything a [`crate::Basis`] snapshot depends on, and nothing it
    /// does not (coefficients, bounds, and right-hand sides may drift
    /// between scheduling rounds without invalidating a warm start).
    ///
    /// Two problems with equal skeleton hashes accept each other's basis
    /// snapshots; a stale snapshot that slips through a hash collision is
    /// still handled safely by the solver's cold-start fallback.
    pub fn skeleton_hash(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        matches!(self.sense, Sense::Minimize).hash(&mut h);
        self.vars.len().hash(&mut h);
        self.constraints.len().hash(&mut h);
        for c in &self.constraints {
            let cmp: u8 = match c.cmp {
                Cmp::Le => 0,
                Cmp::Eq => 1,
                Cmp::Ge => 2,
            };
            cmp.hash(&mut h);
            c.terms.len().hash(&mut h);
            for &(v, _) in &c.terms {
                v.0.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Evaluates the objective at a point given as a dense vector.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, &xi)| v.cost * xi).sum()
    }

    /// Checks primal feasibility of a dense point within tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.vars.len() {
            return false;
        }
        for (v, &xi) in self.vars.iter().zip(x) {
            if xi < v.lower - tol || xi > v.upper + tol {
                return false;
            }
            if v.is_integral() && (xi - xi.round()).abs() > tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, coeff)| coeff * x[v.0]).sum();
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
                Cmp::Ge => lhs >= c.rhs - tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_bounds_are_clamped() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Binary, -3.0, 9.0, 1.0, "x");
        assert_eq!(p.var(x).lower, 0.0);
        assert_eq!(p.var(x).upper, 1.0);
    }

    #[test]
    fn duplicate_terms_are_merged() {
        let mut p = Problem::minimize();
        let x = p.add_binary(1.0, "x");
        let c = p.add_constraint(vec![(x, 1.0), (x, 2.0)], Cmp::Le, 4.0);
        assert_eq!(p.constraints()[c.index()].terms, vec![(x, 3.0)]);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut p = Problem::minimize();
        let x = p.add_binary(1.0, "x");
        let y = p.add_binary(1.0, "y");
        let c = p.add_constraint(vec![(x, 0.0), (y, 2.0)], Cmp::Le, 4.0);
        assert_eq!(p.constraints()[c.index()].terms, vec![(y, 2.0)]);
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Continuous, 2.0, 1.0, 0.0, "x");
        assert_eq!(
            p.validate(),
            Err(ProblemError::InvalidBounds {
                var: x,
                lower: 2.0,
                upper: 1.0
            })
        );
    }

    #[test]
    fn validate_rejects_nan() {
        let mut p = Problem::minimize();
        p.add_var(VarKind::Continuous, 0.0, 1.0, f64::NAN, "x");
        assert_eq!(p.validate(), Err(ProblemError::NotANumber));
    }

    #[test]
    fn validate_rejects_minus_infinity_lower() {
        let mut p = Problem::minimize();
        let x = p.add_var(VarKind::Continuous, f64::NEG_INFINITY, 1.0, 0.0, "x");
        assert_eq!(p.validate(), Err(ProblemError::UnboundedBelow(x)));
    }

    #[test]
    fn feasibility_checks_integrality() {
        let mut p = Problem::minimize();
        p.add_var(VarKind::Integer, 0.0, 5.0, 1.0, "x");
        assert!(p.is_feasible(&[2.0], 1e-9));
        assert!(!p.is_feasible(&[2.5], 1e-9));
    }

    #[test]
    fn skeleton_hash_ignores_numerics_but_not_structure() {
        let build = |rhs: f64, coeff: f64| {
            let mut p = Problem::maximize();
            let x = p.add_binary(1.0, "x");
            let y = p.add_binary(2.0, "y");
            p.add_constraint(vec![(x, coeff), (y, 1.0)], Cmp::Le, rhs);
            p
        };
        // Same skeleton: only rhs/coefficients differ.
        assert_eq!(
            build(4.0, 1.0).skeleton_hash(),
            build(9.0, 3.0).skeleton_hash()
        );
        // Different row operator or sparsity pattern changes the hash.
        let mut q = Problem::maximize();
        let x = q.add_binary(1.0, "x");
        let y = q.add_binary(2.0, "y");
        q.add_constraint(vec![(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        assert_ne!(build(4.0, 1.0).skeleton_hash(), q.skeleton_hash());
        let mut r = Problem::maximize();
        let x = r.add_binary(1.0, "x");
        r.add_binary(2.0, "y");
        r.add_constraint(vec![(x, 1.0)], Cmp::Le, 4.0);
        assert_ne!(build(4.0, 1.0).skeleton_hash(), r.skeleton_hash());
    }

    #[test]
    fn feasibility_checks_rows() {
        let mut p = Problem::minimize();
        let x = p.add_nonneg(1.0, "x");
        p.add_constraint(vec![(x, 2.0)], Cmp::Ge, 4.0);
        assert!(!p.is_feasible(&[1.0], 1e-9));
        assert!(p.is_feasible(&[2.0], 1e-9));
    }
}
